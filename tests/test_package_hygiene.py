"""Package-level hygiene: import safety, docstrings, export consistency."""

import importlib
import pkgutil

import pytest

import repro

ALL_MODULES = [m.name for m in pkgutil.walk_packages(repro.__path__, "repro.")]


class TestPackageHygiene:
    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_module_imports_cleanly(self, module_name):
        importlib.import_module(module_name)

    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_module_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), (
                f"{module_name}.__all__ lists {name!r} which does not exist")

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_top_level_exports_work(self):
        from repro import (PAPER_MODELS, TrainingConfig, create_model,
                           load_dataset, run_experiment)
        assert len(PAPER_MODELS) == 8

    def test_public_functions_have_docstrings(self):
        """Every name exported by repro.core and repro.datasets is
        documented."""
        import inspect
        for package in (repro.core, repro.datasets, repro.models, repro.nn):
            for name in package.__all__:
                obj = getattr(package, name)
                if inspect.isfunction(obj) or inspect.isclass(obj):
                    assert obj.__doc__, (
                        f"{package.__name__}.{name} lacks a docstring")
