"""Package-level hygiene: import safety, docstrings, export consistency,
and docs/api.md staying in sync with the public module tree."""

import importlib
import pkgutil
from pathlib import Path

import pytest

import repro

ALL_MODULES = [m.name for m in pkgutil.walk_packages(repro.__path__, "repro.")]

PUBLIC_MODULES = [name for name in ALL_MODULES
                  if not any(part.startswith("_") for part in name.split("."))]

DOCS_API = Path(__file__).resolve().parent.parent / "docs" / "api.md"


class TestPackageHygiene:
    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_module_imports_cleanly(self, module_name):
        importlib.import_module(module_name)

    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_module_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), (
                f"{module_name}.__all__ lists {name!r} which does not exist")

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_top_level_exports_work(self):
        from repro import (PAPER_MODELS, TrainingConfig, create_model,
                           load_dataset, run_experiment)
        assert len(PAPER_MODELS) == 8

    def test_public_functions_have_docstrings(self):
        """Every name exported by repro.core and repro.datasets is
        documented."""
        import inspect
        for package in (repro.core, repro.datasets, repro.models, repro.nn,
                        repro.obs):
            for name in package.__all__:
                obj = getattr(package, name)
                if inspect.isfunction(obj) or inspect.isclass(obj):
                    assert obj.__doc__, (
                        f"{package.__name__}.{name} lacks a docstring")


class TestDocsSync:
    """docs/api.md must cover the public module tree — doc drift is a
    tier-1 failure, not a chore for later."""

    def test_docs_api_exists(self):
        assert DOCS_API.is_file()

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_module_mentioned_in_docs_api(self, module_name):
        assert module_name in DOCS_API.read_text(encoding="utf-8"), (
            f"{module_name} is not mentioned in docs/api.md — add it to "
            "the module index (every public module must be documented)")

    def test_no_stale_modules_in_index(self):
        """Module-index lines must not reference modules that no longer
        exist (the reverse direction of drift)."""
        import re
        text = DOCS_API.read_text(encoding="utf-8")
        documented = re.findall(r"`(repro(?:\.[a-z_0-9]+)+)`", text)
        known = set(PUBLIC_MODULES) | {"repro"}
        stale = [name for name in documented if name not in known]
        assert not stale, (f"docs/api.md mentions modules that do not "
                           f"exist: {sorted(set(stale))}")
