"""BenchmarkMatrix orchestration and caching."""

import numpy as np
import pytest

from repro.core import BenchmarkMatrix, TrainingConfig

FAST = TrainingConfig(epochs=1, max_batches_per_epoch=2)


@pytest.fixture
def matrix():
    return BenchmarkMatrix(scale="ci", config=FAST, repeats=1)


class TestMatrix:
    def test_dataset_cached(self, matrix):
        a = matrix.dataset("pemsd8")
        b = matrix.dataset("pemsd8")
        assert a is b

    def test_cell_trains_and_caches(self, matrix):
        cell = matrix.cell("linear", "pemsd8")
        assert cell.model_name == "linear"
        assert matrix.cell("linear", "pemsd8") is cell

    def test_cells_order_matches_models(self, matrix):
        cells = matrix.cells(["linear", "last-value"], "pemsd8")
        assert [c.model_name for c in cells] == ["linear", "last-value"]

    def test_runs_available(self, matrix):
        runs = matrix.runs("linear", "pemsd8")
        assert len(runs) == 1
        assert runs[0].seed == 0

    def test_all_cells(self, matrix):
        matrix.cell("linear", "pemsd8")
        matrix.cell("last-value", "pemsd8")
        assert len(matrix.all_cells()) == 2


class TestDiskCache:
    def test_second_matrix_loads_from_disk(self, tmp_path):
        first = BenchmarkMatrix(scale="ci", config=FAST, repeats=1,
                                cache_dir=tmp_path)
        cell = first.cell("linear", "pemsd8")
        assert list(tmp_path.glob("*.json"))

        second = BenchmarkMatrix(scale="ci", config=FAST, repeats=1,
                                 cache_dir=tmp_path)
        restored = second.cell("linear", "pemsd8")
        assert (restored.full[15]["mae"].mean
                == pytest.approx(cell.full[15]["mae"].mean))

    def test_config_change_invalidates(self, tmp_path):
        first = BenchmarkMatrix(scale="ci", config=FAST, repeats=1,
                                cache_dir=tmp_path)
        first.cell("linear", "pemsd8")
        files_before = set(tmp_path.glob("*.json"))

        other_config = TrainingConfig(epochs=2, max_batches_per_epoch=2)
        second = BenchmarkMatrix(scale="ci", config=other_config, repeats=1,
                                 cache_dir=tmp_path)
        second.cell("linear", "pemsd8")
        files_after = set(tmp_path.glob("*.json"))
        assert len(files_after) == len(files_before) + 1

    def test_runs_retrain_after_restore(self, tmp_path):
        first = BenchmarkMatrix(scale="ci", config=FAST, repeats=1,
                                cache_dir=tmp_path)
        first.cell("linear", "pemsd8")
        second = BenchmarkMatrix(scale="ci", config=FAST, repeats=1,
                                 cache_dir=tmp_path)
        second.cell("linear", "pemsd8")      # from disk; no raw runs
        runs = second.runs("linear", "pemsd8")
        assert len(runs) == 1
        assert np.isfinite(runs[0].evaluation.full[15].mae)
