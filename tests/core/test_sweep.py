"""Hyper-parameter grid sweep."""

import pytest

from repro.core import TrainingConfig, grid_sweep

FAST = TrainingConfig(epochs=1, max_batches_per_epoch=3)


class TestGridSweep:
    def test_sweeps_all_points(self, ci_dataset):
        results = grid_sweep("stg2seq", ci_dataset,
                             {"channels": [4, 8], "long_layers": [1, 2]},
                             config=FAST)
        assert len(results) == 4
        tried = {tuple(sorted(r.hparams.items())) for r in results}
        assert len(tried) == 4

    def test_sorted_by_validation_mae(self, ci_dataset):
        results = grid_sweep("stg2seq", ci_dataset, {"channels": [4, 8]},
                             config=FAST)
        assert results[0].val_mae <= results[1].val_mae

    def test_empty_grid_raises(self, ci_dataset):
        with pytest.raises(ValueError):
            grid_sweep("linear", ci_dataset, {}, config=FAST)

    def test_exposes_test_metric(self, ci_dataset):
        results = grid_sweep("stg2seq", ci_dataset, {"channels": [4]},
                             config=FAST)
        assert results[0].test_mae_15 > 0
