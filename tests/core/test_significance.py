"""Statistical comparison utilities."""

import numpy as np
import pytest

from repro.core import compare_models, welch_test, win_matrix
from .test_results import make_run


class TestWelchTest:
    def test_identical_samples_not_significant(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 1, 30)
        t, p = welch_test(a, a)
        assert p > 0.9

    def test_clearly_different_samples_significant(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 0.1, 30)
        b = rng.normal(5, 0.1, 30)
        t, p = welch_test(a, b)
        assert p < 1e-6
        assert abs(t) > 10

    def test_too_few_samples(self):
        t, p = welch_test(np.array([1.0]), np.array([2.0, 3.0]))
        assert np.isnan(t)
        assert p == 1.0

    def test_both_constant_equal(self):
        t, p = welch_test(np.array([2.0, 2.0]), np.array([2.0, 2.0]))
        assert p == 1.0

    def test_both_constant_different(self):
        t, p = welch_test(np.array([2.0, 2.0]), np.array([3.0, 3.0]))
        assert p == 0.0


class TestCompareModels:
    def _runs(self, name, maes):
        return [make_run(model=name, seed=i, mae15=m)
                for i, m in enumerate(maes)]

    def test_better_model_identified(self):
        a = self._runs("good", [1.0, 1.1, 0.9])
        b = self._runs("bad", [3.0, 3.2, 2.8])
        comparison = compare_models(a, b)
        assert comparison.better == "good"
        assert comparison.significant()

    def test_means_recorded(self):
        a = self._runs("a", [2.0, 4.0])
        b = self._runs("b", [3.0, 5.0])
        comparison = compare_models(a, b)
        # full[15] mae = mae15 + 0.5 in make_run
        assert comparison.mean_a == pytest.approx(3.5)
        assert comparison.mean_b == pytest.approx(4.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            compare_models([], self._runs("b", [1.0]))

    def test_horizon_selection(self):
        a = self._runs("a", [1.0, 1.2])
        b = self._runs("b", [1.0, 1.2])
        comparison = compare_models(a, b, minutes=60)
        assert comparison.mean_a == comparison.mean_b


class TestWinMatrix:
    def test_all_pairs_present(self):
        runs = {name: [make_run(model=name, seed=s, mae15=2.0 + s * 0.1)
                       for s in range(2)]
                for name in ("a", "b", "c")}
        matrix = win_matrix(runs)
        assert set(matrix) == {("a", "b"), ("a", "c"), ("b", "c")}
        for (a, b), comparison in matrix.items():
            assert comparison.model_a == a
            assert comparison.model_b == b
