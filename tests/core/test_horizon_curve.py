"""Per-step horizon error curves."""

import numpy as np
import pytest

from repro.core import curve_steepness, horizon_curve, render_curves


@pytest.fixture
def data():
    rng = np.random.default_rng(0)
    target = rng.uniform(40, 60, size=(20, 12, 3))
    # error grows linearly with horizon step
    noise = (np.arange(1, 13)[None, :, None]
             * rng.choice([-1.0, 1.0], size=(20, 12, 3)) * 0.5)
    return target + noise, target


class TestHorizonCurve:
    def test_shape(self, data):
        prediction, target = data
        curve = horizon_curve(prediction, target)
        assert curve.shape == (12,)

    def test_growing_error_detected(self, data):
        prediction, target = data
        curve = horizon_curve(prediction, target)
        assert curve[0] == pytest.approx(0.5)
        assert curve[-1] == pytest.approx(6.0)
        assert np.all(np.diff(curve) > 0)

    def test_metric_selection(self, data):
        prediction, target = data
        mae_curve = horizon_curve(prediction, target, "mae")
        rmse_curve = horizon_curve(prediction, target, "rmse")
        assert np.all(rmse_curve >= mae_curve - 1e-12)

    def test_unknown_metric(self, data):
        with pytest.raises(ValueError, match="unknown metric"):
            horizon_curve(*data, metric="r2")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            horizon_curve(np.zeros((2, 12, 3)), np.zeros((2, 12, 4)))

    def test_mask_restricts(self, data):
        prediction, target = data
        mask = np.zeros(prediction.shape, dtype=bool)
        mask[:, :, 0] = True
        masked = horizon_curve(prediction, target, mask=mask)
        assert np.isfinite(masked).all()


class TestCurveSteepness:
    def test_flat_curve_ratio_one(self):
        assert curve_steepness(np.full(12, 2.0)) == pytest.approx(1.0)

    def test_doubling(self):
        assert curve_steepness(np.array([1.0, 1.5, 2.0])) == pytest.approx(2.0)

    def test_zero_start_nan(self):
        assert np.isnan(curve_steepness(np.array([0.0, 1.0])))

    def test_too_short(self):
        with pytest.raises(ValueError):
            curve_steepness(np.array([1.0]))


class TestRenderCurves:
    def test_contains_models_and_ratios(self, data):
        prediction, target = data
        curve = horizon_curve(prediction, target)
        text = render_curves({"dcrnn": curve, "gman": curve * 0.5})
        assert "dcrnn" in text and "gman" in text
        assert "x" in text
        assert len(text.splitlines()) == 3

    def test_empty(self):
        assert render_curves({}) == ""
