"""Rolling-origin cross-validation."""

import numpy as np
import pytest

from repro.core import (TrainingConfig, rolling_origin_evaluate,
                        rolling_origin_folds)

FAST = TrainingConfig(epochs=1, max_batches_per_epoch=2)


class TestRollingOriginFolds:
    def test_fold_count(self, ci_dataset):
        folds = rolling_origin_folds(ci_dataset, n_folds=3)
        assert len(folds) == 3
        assert [f.index for f in folds] == [0, 1, 2]

    def test_training_region_expands(self, ci_dataset):
        folds = rolling_origin_folds(ci_dataset, n_folds=3)
        trains = [f.train_steps for f in folds]
        assert trains == sorted(trains)
        assert trains[0] < trains[-1]

    def test_test_blocks_follow_training(self, ci_dataset):
        folds = rolling_origin_folds(ci_dataset, n_folds=2)
        for fold in folds:
            test = fold.dataset.supervised.test
            # every test window starts at/after the training region
            assert test.start_index.min() >= fold.train_steps - (
                fold.dataset.supervised.config.horizon)

    def test_folds_share_underlying_series(self, ci_dataset):
        folds = rolling_origin_folds(ci_dataset, n_folds=2)
        prefix = folds[0].dataset.supervised.series
        np.testing.assert_array_equal(
            prefix, ci_dataset.supervised.series[:len(prefix)])

    def test_validation_exists_per_fold(self, ci_dataset):
        for fold in rolling_origin_folds(ci_dataset, n_folds=2):
            assert fold.dataset.supervised.val.num_samples > 0

    def test_too_many_folds_rejected(self, ci_dataset):
        with pytest.raises(ValueError, match="too short"):
            rolling_origin_folds(ci_dataset, n_folds=100)

    def test_parameter_validation(self, ci_dataset):
        with pytest.raises(ValueError):
            rolling_origin_folds(ci_dataset, n_folds=0)
        with pytest.raises(ValueError):
            rolling_origin_folds(ci_dataset, min_train_fraction=1.5)


class TestRollingOriginEvaluate:
    def test_one_result_per_fold(self, ci_dataset):
        results = rolling_origin_evaluate("linear", ci_dataset, FAST,
                                          n_folds=2)
        assert len(results) == 2
        for result in results:
            assert np.isfinite(result.evaluation.full[15].mae)

    def test_folds_measure_different_periods(self, ci_dataset):
        results = rolling_origin_evaluate("linear", ci_dataset, FAST,
                                          n_folds=2)
        maes = [r.evaluation.full[15].mae for r in results]
        assert maes[0] != pytest.approx(maes[1])
