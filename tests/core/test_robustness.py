"""Eval-time robustness probes."""

import numpy as np
import pytest

from repro.core import (TrainingConfig, add_noise, drop_sensors,
                        robustness_probe, stale_feed, train_model)
from repro.models import create_model


@pytest.fixture(scope="module")
def trained(ci_dataset):
    model = create_model("stg2seq", ci_dataset.num_nodes,
                         ci_dataset.adjacency, seed=0)
    train_model(model, ci_dataset,
                TrainingConfig(epochs=2, max_batches_per_epoch=8))
    return model


class TestCorruptions:
    def test_drop_sensors_zeroes_traffic_only(self, ci_dataset, rng):
        x = ci_dataset.supervised.test.x[:4]
        corrupted = drop_sensors(0.5).apply(x, np.random.default_rng(0))
        # time feature untouched
        np.testing.assert_array_equal(corrupted[:, :, :, 1], x[:, :, :, 1])
        # roughly half the sensors zeroed per sample
        zeroed = (corrupted[:, :, :, 0] == 0).all(axis=1).sum(axis=1)
        assert np.all(zeroed >= x.shape[2] // 2 - 1)

    def test_drop_zero_fraction_is_identity(self, ci_dataset):
        x = ci_dataset.supervised.test.x[:4]
        out = drop_sensors(0.0).apply(x, np.random.default_rng(0))
        np.testing.assert_array_equal(out, x)

    def test_drop_does_not_mutate_input(self, ci_dataset):
        x = ci_dataset.supervised.test.x[:4]
        original = x.copy()
        drop_sensors(0.5).apply(x, np.random.default_rng(0))
        np.testing.assert_array_equal(x, original)

    def test_noise_changes_only_traffic(self, ci_dataset):
        x = ci_dataset.supervised.test.x[:4]
        out = add_noise(0.5).apply(x, np.random.default_rng(0))
        assert not np.array_equal(out[:, :, :, 0], x[:, :, :, 0])
        np.testing.assert_array_equal(out[:, :, :, 1], x[:, :, :, 1])

    def test_stale_feed_freezes_tail(self, ci_dataset):
        x = ci_dataset.supervised.test.x[:4]
        out = stale_feed(4).apply(x, np.random.default_rng(0))
        frozen_value = out[:, -5, :, 0]
        for k in range(1, 5):
            np.testing.assert_array_equal(out[:, -k, :, 0], frozen_value)
        np.testing.assert_array_equal(out[:, :-4], x[:, :-4])

    def test_validation(self):
        with pytest.raises(ValueError):
            drop_sensors(1.5)
        with pytest.raises(ValueError):
            add_noise(-1.0)
        with pytest.raises(ValueError):
            stale_feed(0)


class TestProbe:
    def test_includes_clean_baseline(self, trained, ci_dataset):
        results = robustness_probe(trained, ci_dataset, [add_noise(0.1)])
        assert set(results) == {"clean", "noise0.1"}

    def test_corruption_degrades_accuracy(self, trained, ci_dataset):
        results = robustness_probe(trained, ci_dataset,
                                   [drop_sensors(0.5), add_noise(1.0)])
        clean = results["clean"][15].mae
        assert results["drop50%"][15].mae > clean
        assert results["noise1"][15].mae > clean

    def test_probe_is_deterministic(self, trained, ci_dataset):
        a = robustness_probe(trained, ci_dataset, [add_noise(0.3)], seed=1)
        b = robustness_probe(trained, ci_dataset, [add_noise(0.3)], seed=1)
        assert a["noise0.3"][15].mae == b["noise0.3"][15].mae

    def test_stale_feed_hurts_short_horizon_most(self, trained, ci_dataset):
        """Freezing the latest readings hides exactly the information the
        shortest horizon depends on."""
        results = robustness_probe(trained, ci_dataset, [stale_feed(6)])
        clean = results["clean"]
        stale = results["stale6"]
        degradation_15 = stale[15].mae - clean[15].mae
        degradation_60 = stale[60].mae - clean[60].mae
        assert degradation_15 > 0
        assert degradation_15 >= degradation_60 - 0.5
