"""Recurring vs non-recurring interval classification."""

import numpy as np
import pytest

from repro.core import classify_intervals, evaluate_patterns
from repro.core.patterns import STEPS_PER_DAY


def make_series(num_days=5, nodes=2, seed=0):
    """Flat nights + identical daily rush dip + one one-off incident."""
    rng = np.random.default_rng(seed)
    total = num_days * STEPS_PER_DAY
    series = np.full((total, nodes), 60.0)
    slot = np.arange(total) % STEPS_PER_DAY
    rush = (slot >= 96) & (slot < 108)                 # same window every day
    series[rush] -= 25.0                               # recurring dip
    series += rng.normal(0, 0.3, size=series.shape)
    incident = slice(3 * STEPS_PER_DAY + 180, 3 * STEPS_PER_DAY + 190)
    series[incident, 0] -= 30.0                        # one-off incident
    return series, incident


class TestClassifyIntervals:
    def test_partition_is_exact(self):
        series, _ = make_series()
        masks = classify_intervals(series)
        np.testing.assert_array_equal(
            masks.recurring | masks.non_recurring, masks.difficult)
        assert not (masks.recurring & masks.non_recurring).any()

    def test_rush_hour_classified_recurring(self):
        series, _ = make_series()
        masks = classify_intervals(series)
        slot = np.arange(len(series)) % STEPS_PER_DAY
        rush_edge = (slot >= 95) & (slot <= 97)        # dip onset: volatile
        hard_at_rush = masks.difficult[rush_edge]
        recurring_at_rush = masks.recurring[rush_edge]
        assert hard_at_rush.any()
        # the vast majority of difficult rush-onset cells recur daily
        assert recurring_at_rush.sum() >= 0.7 * hard_at_rush.sum()

    def test_incident_classified_non_recurring(self):
        series, incident = make_series()
        masks = classify_intervals(series)
        onset = incident.start
        assert masks.difficult[onset:onset + 6, 0].any()
        flagged = masks.non_recurring[onset:onset + 6, 0]
        recurring = masks.recurring[onset:onset + 6, 0]
        assert flagged.sum() >= recurring.sum()

    def test_single_day_all_non_recurring(self):
        rng = np.random.default_rng(1)
        series = rng.normal(60, 5, size=(STEPS_PER_DAY, 3))
        masks = classify_intervals(series)
        assert not masks.recurring.any()
        np.testing.assert_array_equal(masks.non_recurring, masks.difficult)

    def test_recurring_fraction_bounds(self):
        series, _ = make_series()
        masks = classify_intervals(series)
        assert 0.0 <= masks.recurring_fraction <= 1.0


class TestEvaluatePatterns:
    def test_returns_all_classes(self):
        series, _ = make_series(num_days=3, nodes=2)
        masks = classify_intervals(series)
        horizon = 12
        starts = np.arange(0, 50)
        prediction = np.stack([series[s:s + horizon] for s in starts])
        target = prediction + 1.0
        result = evaluate_patterns(prediction, target, masks, starts)
        assert set(result) == {"difficult", "recurring", "non_recurring"}
        # perfect-offset prediction: MAE 1 wherever any cells are valid
        for label in result:
            value = result[label][15].mae
            assert np.isnan(value) or value == pytest.approx(1.0)
