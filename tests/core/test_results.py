"""Result aggregation and JSON persistence."""

import numpy as np
import pytest

from repro.core import aggregate_runs, load_results, save_results
from repro.core.experiment import (EvaluationResult, RunResult,
                                   TrainingHistory)
from repro.core.metrics import HorizonMetrics


def make_run(model="m", dataset="d", seed=0, mae15=2.0, hard15=3.0):
    full = {m: HorizonMetrics(mae=mae15 + m / 30, rmse=mae15 * 1.5,
                              mape=mae15 * 4) for m in (15, 30, 60)}
    difficult = {m: HorizonMetrics(mae=hard15 + m / 30, rmse=hard15 * 1.5,
                                   mape=hard15 * 4) for m in (15, 30, 60)}
    history = TrainingHistory(train_losses=[1.0, 0.5], val_maes=[2.0, 1.5],
                              epoch_seconds=[1.0, 1.2], best_epoch=1)
    evaluation = EvaluationResult(full=full, difficult=difficult,
                                  inference_seconds=0.5, num_parameters=1000)
    return RunResult(model_name=model, dataset_name=dataset, seed=seed,
                     history=history, evaluation=evaluation)


class TestAggregateRuns:
    def test_mean_and_std(self):
        runs = [make_run(seed=0, mae15=2.0), make_run(seed=1, mae15=4.0)]
        agg = aggregate_runs(runs)
        assert agg.full[15]["mae"].mean == pytest.approx(3.5)
        assert agg.full[15]["mae"].std == pytest.approx(1.0)
        assert agg.num_repeats == 2

    def test_degradation_aggregated(self):
        runs = [make_run(mae15=2.0, hard15=3.0)]
        agg = aggregate_runs(runs)
        # degradation at 15m: (3.5 - 2.5) / 2.5 = 40%
        assert agg.degradation[15].mean == pytest.approx(40.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            aggregate_runs([])

    def test_mixed_cells_rejected(self):
        with pytest.raises(ValueError, match="mix"):
            aggregate_runs([make_run(model="a"), make_run(model="b")])

    def test_nan_values_skipped(self):
        runs = [make_run(mae15=2.0), make_run(mae15=float("nan"))]
        agg = aggregate_runs(runs)
        assert agg.full[15]["mae"].mean == pytest.approx(2.5)

    def test_metric_accessor(self):
        agg = aggregate_runs([make_run(mae15=2.0, hard15=5.0)])
        assert agg.metric(15, "mae").mean == pytest.approx(2.5)
        assert agg.metric(15, "mae", difficult=True).mean == pytest.approx(5.5)

    def test_summary_str(self):
        agg = aggregate_runs([make_run()])
        assert "±" in str(agg.full[15]["mae"])


class TestJSONRoundTrip:
    def test_roundtrip(self, tmp_path):
        results = [aggregate_runs([make_run(seed=s, mae15=2.0 + s)
                                   for s in range(3)]),
                   aggregate_runs([make_run(model="other", mae15=9.0)])]
        path = tmp_path / "results.json"
        save_results(results, path)
        loaded = load_results(path)
        assert len(loaded) == 2
        assert loaded[0].model_name == "m"
        assert loaded[0].full[15]["mae"].mean == pytest.approx(
            results[0].full[15]["mae"].mean)
        assert loaded[0].degradation[30].mean == pytest.approx(
            results[0].degradation[30].mean)
        assert loaded[1].num_parameters == 1000

    def test_horizon_keys_are_ints_after_load(self, tmp_path):
        path = tmp_path / "results.json"
        save_results([aggregate_runs([make_run()])], path)
        loaded = load_results(path)
        assert all(isinstance(k, int) for k in loaded[0].full)
