"""Prediction export round trip."""

import numpy as np
import pytest

from repro.core import (TrainingConfig, export_predictions, load_predictions,
                        predictions_to_csv, train_model)
from repro.models import create_model


@pytest.fixture(scope="module")
def exported(tmp_path_factory, ci_dataset):
    model = create_model("linear", ci_dataset.num_nodes,
                         ci_dataset.adjacency, seed=0)
    train_model(model, ci_dataset,
                TrainingConfig(epochs=1, max_batches_per_epoch=2))
    path = tmp_path_factory.mktemp("export") / "predictions.npz"
    export_predictions(model, ci_dataset, path)
    return path, model, ci_dataset


class TestExport:
    def test_roundtrip_shapes(self, exported):
        path, model, dataset = exported
        prediction, target, start_index, meta = load_predictions(path)
        split = dataset.supervised.test
        assert prediction.shape == split.y.shape
        np.testing.assert_array_equal(target, split.y)
        np.testing.assert_array_equal(start_index, split.start_index)

    def test_metadata(self, exported):
        path, model, dataset = exported
        _, _, _, meta = load_predictions(path)
        assert meta["model"] == "linear"
        assert meta["dataset"] == "metr-la"
        assert meta["horizon"] == 12
        assert meta["inference_seconds"] > 0

    def test_predictions_in_original_units(self, exported):
        path, _, _ = exported
        prediction, _, _, _ = load_predictions(path)
        assert prediction.mean() > 5.0      # mph, not z-scores

    def test_csv_flattening(self, exported, tmp_path):
        path, _, dataset = exported
        csv_path = tmp_path / "step1.csv"
        predictions_to_csv(path, csv_path, horizon_step=0)
        lines = csv_path.read_text().splitlines()
        split = dataset.supervised.test
        assert lines[0] == "series_position,sensor,prediction,target"
        assert len(lines) == 1 + split.num_samples * dataset.num_nodes
        first = lines[1].split(",")
        assert int(first[0]) == split.start_index[0]
        assert float(first[3]) == pytest.approx(split.y[0, 0, 0])

    def test_csv_step_validated(self, exported, tmp_path):
        path, _, _ = exported
        with pytest.raises(ValueError):
            predictions_to_csv(path, tmp_path / "x.csv", horizon_step=99)
