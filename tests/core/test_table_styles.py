"""format_table output styles."""

import pytest

from repro.core import format_table

HEADERS = ["model", "MAE"]
ROWS = [["graph-wavenet", "1.92"], ["gman", "1.99"]]


class TestStyles:
    def test_plain_default(self):
        text = format_table(HEADERS, ROWS)
        assert "graph-wavenet" in text
        assert "|" not in text

    def test_markdown(self):
        text = format_table(HEADERS, ROWS, style="markdown")
        lines = text.splitlines()
        assert lines[0].startswith("| model")
        assert set(lines[1]) <= {"|", "-"}
        assert len(lines) == 4

    def test_markdown_columns_aligned(self):
        text = format_table(HEADERS, ROWS, style="markdown")
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1

    def test_csv(self):
        text = format_table(HEADERS, ROWS, style="csv")
        assert text.splitlines()[0] == "model,MAE"
        assert text.splitlines()[1] == "graph-wavenet,1.92"

    def test_csv_quotes_commas(self):
        text = format_table(["a"], [["x,y"]], style="csv")
        assert '"x,y"' in text

    def test_unknown_style(self):
        with pytest.raises(ValueError, match="unknown style"):
            format_table(HEADERS, ROWS, style="latex")

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(HEADERS, [["only-one"]])
