"""Difficult-interval extraction: moving std, masks, alignment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (difficult_mask, interval_segments, moving_std,
                        prediction_mask)


def naive_moving_std(series, window):
    total, nodes = series.shape
    out = np.empty_like(series)
    for t in range(total):
        lo = max(0, t - window + 1)
        out[t] = series[lo:t + 1].std(axis=0)
    return out


class TestMovingStd:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        series = rng.normal(size=(50, 3)) * 10
        np.testing.assert_allclose(moving_std(series, 6),
                                   naive_moving_std(series, 6), atol=1e-8)

    def test_constant_series_zero_std(self):
        series = np.full((30, 2), 7.0)
        np.testing.assert_allclose(moving_std(series), 0.0, atol=1e-10)

    def test_step_change_spikes_std(self):
        series = np.zeros((40, 1))
        series[20:] = 10.0
        vol = moving_std(series, window=6)
        assert vol[:19].max() == 0.0
        assert vol[20] > 1.0

    def test_input_validation(self):
        with pytest.raises(ValueError, match=r"\(T, N\)"):
            moving_std(np.zeros(10))
        with pytest.raises(ValueError, match="window"):
            moving_std(np.zeros((10, 2)), window=1)

    @given(arrays(np.float64, st.tuples(st.integers(8, 40), st.integers(1, 4)),
                  elements=st.floats(-50, 50, allow_nan=False)))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_naive(self, series):
        # atol 1e-5: the cumsum formulation carries ~1e-6 cancellation noise
        # in adversarial mixes of large and zero values — immaterial for the
        # quantile thresholds this feeds, but above 1e-6.
        np.testing.assert_allclose(moving_std(series, 5),
                                   naive_moving_std(series, 5), atol=1e-5)


class TestDifficultMask:
    def test_upper_quartile_fraction(self):
        rng = np.random.default_rng(1)
        series = rng.normal(size=(400, 5))
        mask = difficult_mask(series, quantile=0.75)
        fraction = mask.mean(axis=0)
        # roughly 25% of each node's steps are difficult
        assert np.all(fraction > 0.15)
        assert np.all(fraction < 0.40)

    def test_per_node_thresholds(self):
        # Node 0 is flat, node 1 is volatile: both still contribute ~25%.
        rng = np.random.default_rng(2)
        series = np.stack([rng.normal(0, 0.01, 400),
                           rng.normal(0, 10.0, 400)], axis=1)
        mask = difficult_mask(series)
        assert 0.1 < mask[:, 0].mean() < 0.45
        assert 0.1 < mask[:, 1].mean() < 0.45

    def test_incident_region_flagged(self):
        series = np.full((200, 1), 60.0)
        series[100:110, 0] = 10.0               # abrupt collapse
        mask = difficult_mask(series)
        assert mask[100:110].any()

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            difficult_mask(np.zeros((50, 2)), quantile=1.5)


class TestPredictionMask:
    def test_alignment(self):
        mask = np.zeros((30, 2), dtype=bool)
        mask[15, 0] = True
        start_index = np.array([10, 14])
        aligned = prediction_mask(mask, start_index, horizon=4)
        assert aligned.shape == (2, 4, 2)
        # sample 0 covers series steps 10..13: no flags
        assert not aligned[0].any()
        # sample 1 covers 14..17: step 15 is offset 1
        assert aligned[1, 1, 0]
        assert not aligned[1, 1, 1]

    def test_out_of_range_raises(self):
        mask = np.zeros((10, 1), dtype=bool)
        with pytest.raises(ValueError, match="past the series end"):
            prediction_mask(mask, np.array([8]), horizon=4)

    def test_full_coverage_roundtrip(self):
        rng = np.random.default_rng(3)
        mask = rng.random((20, 3)) < 0.5
        starts = np.arange(0, 8)
        aligned = prediction_mask(mask, starts, horizon=12)
        for s, start in enumerate(starts):
            np.testing.assert_array_equal(aligned[s], mask[start:start + 12])


class TestIntervalSegments:
    def test_basic_runs(self):
        mask = np.array([False, True, True, False, True])
        assert interval_segments(mask) == [(1, 3), (4, 5)]

    def test_all_true(self):
        assert interval_segments(np.array([True, True])) == [(0, 2)]

    def test_all_false(self):
        assert interval_segments(np.array([False, False])) == []

    def test_starts_true(self):
        assert interval_segments(np.array([True, False, True])) == [(0, 1), (2, 3)]

    def test_requires_1d(self):
        with pytest.raises(ValueError):
            interval_segments(np.zeros((3, 2), dtype=bool))

    @given(arrays(np.bool_, st.integers(1, 50)))
    @settings(max_examples=30, deadline=None)
    def test_property_segments_reconstruct_mask(self, mask):
        segments = interval_segments(mask)
        rebuilt = np.zeros_like(mask)
        for start, stop in segments:
            assert start < stop
            rebuilt[start:stop] = True
        np.testing.assert_array_equal(rebuilt, mask)
