"""Cross-dataset ranking and Friedman analysis."""

import numpy as np
import pytest

from repro.core import aggregate_runs, friedman_test, leaderboard, rank_models
from .test_results import make_run


def matrix_results(performance: dict[str, dict[str, float]]):
    """Build AggregateResults from {model: {dataset: mae15}}."""
    results = []
    for model, per_dataset in performance.items():
        for dataset, mae15 in per_dataset.items():
            results.append(aggregate_runs(
                [make_run(model=model, dataset=dataset, seed=s, mae15=mae15)
                 for s in range(2)]))
    return results


PERFORMANCE = {
    "winner": {"d1": 1.0, "d2": 1.2, "d3": 0.9},
    "middle": {"d1": 2.0, "d2": 2.2, "d3": 1.9},
    "loser": {"d1": 3.0, "d2": 3.2, "d3": 2.9},
}


class TestRankModels:
    def test_rank_one_is_best(self):
        table = rank_models(matrix_results(PERFORMANCE))
        ranks = table.average_rank()
        assert ranks["winner"] == pytest.approx(1.0)
        assert ranks["loser"] == pytest.approx(3.0)
        assert table.winner() == "winner"

    def test_rank_shape(self):
        table = rank_models(matrix_results(PERFORMANCE))
        assert table.ranks.shape == (3, 3)
        assert sorted(table.datasets) == ["d1", "d2", "d3"]

    def test_ties_share_rank(self):
        results = matrix_results({"a": {"d1": 1.0}, "b": {"d1": 1.0}})
        table = rank_models(results)
        assert table.ranks[0].tolist() == [1.5, 1.5]

    def test_missing_cell_raises(self):
        results = matrix_results({"a": {"d1": 1.0, "d2": 2.0},
                                  "b": {"d1": 1.0}})
        with pytest.raises(ValueError, match="missing cell"):
            rank_models(results)

    def test_difficult_ranks_differ(self):
        performance = {"a": {"d1": 1.0}, "b": {"d1": 2.0}}
        results = []
        # b better on hard intervals despite worse on average
        results.append(aggregate_runs(
            [make_run(model="a", dataset="d1", mae15=1.0, hard15=9.0)]))
        results.append(aggregate_runs(
            [make_run(model="b", dataset="d1", mae15=2.0, hard15=3.0)]))
        full = rank_models(results)
        hard = rank_models(results, difficult=True)
        assert full.winner() == "a"
        assert hard.winner() == "b"


class TestFriedman:
    def test_consistent_rankings_low_p(self):
        # 5 datasets, perfectly consistent ordering -> strong signal
        performance = {
            "a": {f"d{i}": 1.0 + 0.01 * i for i in range(5)},
            "b": {f"d{i}": 2.0 + 0.01 * i for i in range(5)},
            "c": {f"d{i}": 3.0 + 0.01 * i for i in range(5)},
        }
        table = rank_models(matrix_results(performance))
        statistic, p_value = friedman_test(table)
        assert p_value < 0.05

    def test_degenerate_returns_nan(self):
        table = rank_models(matrix_results({"a": {"d1": 1.0},
                                            "b": {"d1": 2.0}}))
        statistic, p_value = friedman_test(table)
        assert np.isnan(statistic)
        assert p_value == 1.0


class TestLeaderboard:
    def test_sorted_by_overall_rank(self):
        text = leaderboard(matrix_results(PERFORMANCE))
        lines = text.splitlines()
        winner_line = next(i for i, l in enumerate(lines) if "winner" in l)
        loser_line = next(i for i, l in enumerate(lines) if "loser" in l)
        assert winner_line < loser_line

    def test_contains_friedman(self):
        text = leaderboard(matrix_results(PERFORMANCE))
        assert "Friedman" in text
