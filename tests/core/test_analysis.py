"""Error-volatility analysis (the paper's Sec. VI observation)."""

import numpy as np
import pytest

from repro.core import (error_volatility_correlation, per_sensor_errors,
                        volatility_profile)


@pytest.fixture
def synthetic():
    """A world where errors provably scale with local volatility."""
    rng = np.random.default_rng(0)
    total, nodes = 400, 3
    series = np.full((total, nodes), 50.0)
    # volatile middle third
    series[150:250] += rng.normal(0, 8.0, size=(100, nodes))
    starts = np.arange(0, total - 12)
    target = np.stack([series[s:s + 12] for s in starts])
    # model error proportional to local variation
    noise = np.diff(np.concatenate([series[:1], series]), axis=0)
    error = np.stack([np.abs(noise[s:s + 12]) for s in starts])
    prediction = target + error * rng.choice([-1, 1], size=error.shape)
    return prediction, target, series, starts


class TestCorrelation:
    def test_positive_when_errors_track_volatility(self, synthetic):
        prediction, target, series, starts = synthetic
        r, p = error_volatility_correlation(prediction, target, series,
                                            starts)
        assert r > 0.3
        assert p < 1e-6

    def test_zero_for_constant_errors(self):
        rng = np.random.default_rng(1)
        series = rng.normal(50, 5, size=(300, 2))
        starts = np.arange(0, 280)
        target = np.stack([series[s:s + 12] for s in starts])
        prediction = target + 1.0          # constant error everywhere
        r, p = error_volatility_correlation(prediction, target, series,
                                            starts)
        assert np.isnan(r) or abs(r) < 0.1

    def test_degenerate_inputs(self):
        series = np.full((100, 1), 5.0)
        starts = np.arange(0, 80)
        target = np.stack([series[s:s + 12] for s in starts])
        r, p = error_volatility_correlation(target, target, series, starts)
        assert np.isnan(r)
        assert p == 1.0

    def test_shape_mismatch(self, synthetic):
        prediction, target, series, starts = synthetic
        with pytest.raises(ValueError):
            error_volatility_correlation(prediction[:, :6], target, series,
                                         starts)


class TestVolatilityProfile:
    def test_monotone_profile_for_tracking_errors(self, synthetic):
        prediction, target, series, starts = synthetic
        profile = volatility_profile(prediction, target, series, starts,
                                     bins=4)
        valid = profile.counts > 0
        values = profile.mean_error[valid]
        assert values[-1] > values[0]      # errors grow with volatility

    def test_counts_sum_to_pairs(self, synthetic):
        prediction, target, series, starts = synthetic
        profile = volatility_profile(prediction, target, series, starts,
                                     bins=5)
        assert profile.counts.sum() > 0
        assert len(profile.mean_error) == 5

    def test_render(self, synthetic):
        prediction, target, series, starts = synthetic
        text = volatility_profile(prediction, target, series, starts).render()
        assert "volatility bin" in text

    def test_bins_validated(self, synthetic):
        prediction, target, series, starts = synthetic
        with pytest.raises(ValueError):
            volatility_profile(prediction, target, series, starts, bins=0)


class TestPerSensorErrors:
    def test_shapes_and_values(self):
        prediction = np.zeros((10, 12, 3))
        target = np.ones((10, 12, 3))
        target[:, :, 2] = 5.0
        errors = per_sensor_errors(prediction, target)
        np.testing.assert_allclose(errors, [1.0, 1.0, 5.0])

    def test_null_targets_excluded(self):
        prediction = np.zeros((4, 12, 2))
        target = np.ones((4, 12, 2))
        target[:2, 0, 0] = 0.0             # missing readings
        errors = per_sensor_errors(prediction, target)
        assert errors[0] == pytest.approx(1.0)

    def test_all_null_sensor_is_nan(self):
        prediction = np.zeros((4, 12, 1))
        target = np.zeros((4, 12, 1))
        errors = per_sensor_errors(prediction, target)
        assert np.isnan(errors[0])
