"""Terminal visualisation helpers."""

import numpy as np
import pytest

from repro.core import ascii_chart, horizon_bars, sparkline


class TestSparkline:
    def test_monotone_series_monotone_glyphs(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert line == "▁▂▃▄▅▆▇█"

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_downsampling(self):
        line = sparkline(np.arange(100), width=10)
        assert len(line) == 10
        assert line[0] == "▁" and line[-1] == "█"

    def test_short_series_not_padded(self):
        assert len(sparkline([1, 2], width=10)) == 2

    def test_nan_rendered_as_space(self):
        line = sparkline([1.0, float("nan"), 3.0])
        assert line[1] == " "

    def test_all_nan(self):
        assert sparkline([float("nan")] * 3) == "   "

    def test_requires_1d(self):
        with pytest.raises(ValueError):
            sparkline(np.zeros((2, 2)))


class TestAsciiChart:
    def test_labels_and_ranges(self):
        text = ascii_chart({"speed": np.array([10.0, 50.0]),
                            "flow": np.array([0.0, 1.0])})
        assert "speed" in text
        assert "[10.00, 50.00]" in text
        assert len(text.splitlines()) == 2

    def test_empty(self):
        assert ascii_chart({}) == ""

    def test_labels_aligned(self):
        text = ascii_chart({"a": np.ones(3), "longer": np.ones(3)})
        lines = text.splitlines()
        assert lines[0].index("▁") == lines[1].index("▁")


class TestHorizonBars:
    def test_renders_all_rows(self):
        text = horizon_bars({"m1": {15: 1.0, 30: 2.0}, "m2": {15: 4.0}})
        assert len(text.splitlines()) == 3
        assert "m1" in text and "m2" in text

    def test_largest_value_fills_width(self):
        text = horizon_bars({"m": {15: 2.0, 60: 4.0}}, width=10)
        lines = text.splitlines()
        assert lines[1].count("█") == 10
        assert lines[0].count("█") == 5

    def test_empty(self):
        assert horizon_bars({}) == ""

    def test_values_printed(self):
        text = horizon_bars({"m": {15: 1.234}})
        assert "1.234" in text
