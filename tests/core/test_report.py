"""Report rendering: the paper-style text tables."""

import numpy as np
import pytest

from repro.core import (fig1_table, fig2_table, fig3_series, format_table,
                        table3)
from .test_results import make_run
from repro.core import aggregate_runs


@pytest.fixture
def results():
    return [aggregate_runs([make_run(model="graph-wavenet", dataset="metr-la",
                                     mae15=2.0, hard15=3.0)]),
            aggregate_runs([make_run(model="stgcn", dataset="metr-la",
                                     mae15=4.0, hard15=7.0)])]


class TestFormatTable:
    def test_aligned_columns(self):
        text = format_table(["a", "long_header"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:2])

    def test_contains_cells(self):
        text = format_table(["x"], [["hello"]])
        assert "hello" in text


class TestFig1Table:
    def test_contains_models_and_metrics(self, results):
        text = fig1_table(results, "metr-la")
        assert "graph-wavenet" in text
        assert "stgcn" in text
        assert "MAE@15m" in text
        assert "MAPE@60m" in text

    def test_unknown_dataset_raises(self, results):
        with pytest.raises(ValueError):
            fig1_table(results, "nope")

    def test_metric_subset(self, results):
        text = fig1_table(results, "metr-la", metrics=("mae",))
        assert "RMSE" not in text


class TestTable3:
    def test_columns(self, results):
        text = table3(results, "metr-la")
        assert "train s/epoch" in text
        assert "# params" in text
        assert "1.0k" in text        # 1000 parameters

    def test_unknown_dataset_raises(self, results):
        with pytest.raises(ValueError):
            table3(results, "nope")


class TestFig2Table:
    def test_degradation_sign_rendered(self, results):
        text = fig2_table(results, "metr-la")
        assert "hardMAE@15m" in text
        assert "+" in text           # positive degradation percentage

    def test_both_models_present(self, results):
        text = fig2_table(results, "metr-la")
        assert "graph-wavenet" in text and "stgcn" in text


class TestFig3Series:
    def test_renders_trace(self):
        truth = np.linspace(60, 20, 24)
        prediction = truth + 1.0
        text = fig3_series(truth, prediction, [(5, 10)], road=7)
        assert "road 7" in text
        assert "MAE=1.00" in text
        assert "*" in text           # difficult-interval marker

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            fig3_series(np.zeros(5), np.zeros(6), [], road=0)

    def test_subsampling_respects_max_points(self):
        truth = np.zeros(1000)
        text = fig3_series(truth, truth, [], road=0, max_points=10)
        assert len(text.splitlines()) < 120
