"""Experiment runner: training loop, prediction, evaluation protocol."""

import numpy as np
import pytest

from repro.core import (TrainingConfig, evaluate_model, predict,
                        run_experiment, train_model)
from repro.models import create_model

FAST = TrainingConfig(epochs=2, batch_size=32, max_batches_per_epoch=4,
                      learning_rate=0.01)


@pytest.fixture(scope="module")
def trained(ci_dataset):
    model = create_model("linear", ci_dataset.num_nodes, ci_dataset.adjacency,
                         seed=0)
    history = train_model(model, ci_dataset, FAST, seed=0)
    return model, history


class TestTrainModel:
    def test_history_lengths(self, trained):
        _, history = trained
        assert len(history.train_losses) == 2
        assert len(history.val_maes) == 2
        assert len(history.epoch_seconds) == 2

    def test_loss_decreases_over_training(self, ci_dataset):
        model = create_model("linear", ci_dataset.num_nodes,
                             ci_dataset.adjacency, seed=0)
        config = TrainingConfig(epochs=4, max_batches_per_epoch=8,
                                learning_rate=0.05)
        history = train_model(model, ci_dataset, config, seed=0)
        assert history.train_losses[-1] < history.train_losses[0]

    def test_best_epoch_tracked(self, trained):
        _, history = trained
        best = history.best_epoch
        assert history.val_maes[best] == min(history.val_maes)

    def test_baselines_skip_training(self, ci_dataset):
        model = create_model("last-value", ci_dataset.num_nodes,
                             ci_dataset.adjacency)
        history = train_model(model, ci_dataset, FAST)
        assert history.train_losses == []

    def test_early_stopping(self, ci_dataset):
        model = create_model("linear", ci_dataset.num_nodes,
                             ci_dataset.adjacency, seed=0)
        config = TrainingConfig(epochs=50, max_batches_per_epoch=2,
                                learning_rate=0.3, patience=1)
        history = train_model(model, ci_dataset, config, seed=0)
        assert len(history.train_losses) < 50

    def test_restores_best_weights(self, ci_dataset):
        """After training, validation MAE equals the best epoch's value."""
        from repro.core import mae
        model = create_model("linear", ci_dataset.num_nodes,
                             ci_dataset.adjacency, seed=0)
        config = TrainingConfig(epochs=3, max_batches_per_epoch=6,
                                learning_rate=0.05)
        history = train_model(model, ci_dataset, config, seed=0)
        prediction, _ = predict(model, ci_dataset.supervised.val,
                                ci_dataset.supervised.scaler)
        final_val = mae(prediction, ci_dataset.supervised.val.y)
        assert final_val == pytest.approx(min(history.val_maes), rel=1e-9)

    def test_train_time_per_epoch(self, trained):
        _, history = trained
        assert history.train_time_per_epoch > 0

    @pytest.mark.parametrize("schedule", ["step", "exponential", "cosine"])
    def test_lr_schedules_run(self, ci_dataset, schedule):
        model = create_model("linear", ci_dataset.num_nodes,
                             ci_dataset.adjacency, seed=0)
        config = TrainingConfig(epochs=3, max_batches_per_epoch=2,
                                lr_schedule=schedule)
        history = train_model(model, ci_dataset, config, seed=0)
        assert len(history.train_losses) == 3

    def test_unknown_schedule_rejected(self, ci_dataset):
        model = create_model("linear", ci_dataset.num_nodes,
                             ci_dataset.adjacency, seed=0)
        config = TrainingConfig(epochs=1, lr_schedule="warmup")
        with pytest.raises(ValueError, match="unknown lr_schedule"):
            train_model(model, ci_dataset, config)

    def test_verbose_output_identical_to_legacy_print(self, ci_dataset,
                                                      capsys):
        """verbose=True (now an event-bus console sink) keeps the exact
        per-epoch lines the old bare print produced."""
        model = create_model("linear", ci_dataset.num_nodes,
                             ci_dataset.adjacency, seed=0)
        config = TrainingConfig(epochs=2, max_batches_per_epoch=4,
                                verbose=True)
        history = train_model(model, ci_dataset, config, seed=0)
        out = capsys.readouterr().out
        expected = "".join(
            f"  epoch {epoch + 1}/{config.epochs} "
            f"loss={history.train_losses[epoch]:.4f} "
            f"val_mae={history.val_maes[epoch]:.4f} "
            f"({history.epoch_seconds[epoch]:.1f}s)\n"
            for epoch in range(config.epochs))
        assert out == expected

    def test_quiet_by_default(self, ci_dataset, capsys):
        model = create_model("linear", ci_dataset.num_nodes,
                             ci_dataset.adjacency, seed=0)
        train_model(model, ci_dataset, FAST, seed=0)
        assert capsys.readouterr().out == ""


class TestPredict:
    def test_shapes_and_units(self, trained, ci_dataset):
        model, _ = trained
        prediction, elapsed = predict(model, ci_dataset.supervised.test,
                                      ci_dataset.supervised.scaler)
        split = ci_dataset.supervised.test
        assert prediction.shape == split.y.shape
        assert elapsed > 0
        # predictions are in original (mph) units, not z-scores
        assert prediction.mean() > 5.0

    def test_deterministic(self, trained, ci_dataset):
        model, _ = trained
        a, _ = predict(model, ci_dataset.supervised.test,
                       ci_dataset.supervised.scaler)
        b, _ = predict(model, ci_dataset.supervised.test,
                       ci_dataset.supervised.scaler)
        np.testing.assert_array_equal(a, b)

    def test_sets_eval_mode(self, trained, ci_dataset):
        model, _ = trained
        model.train()
        predict(model, ci_dataset.supervised.test, ci_dataset.supervised.scaler)
        assert not model.training


class TestEvaluateModel:
    def test_produces_all_horizons(self, trained, ci_dataset):
        model, _ = trained
        result = evaluate_model(model, ci_dataset)
        assert set(result.full) == {15, 30, 60}
        assert set(result.difficult) == {15, 30, 60}

    def test_metrics_finite(self, trained, ci_dataset):
        model, _ = trained
        result = evaluate_model(model, ci_dataset)
        for minutes in (15, 30, 60):
            assert np.isfinite(result.full[minutes].mae)
            assert np.isfinite(result.difficult[minutes].mae)

    def test_difficult_worse_than_full(self, trained, ci_dataset):
        """The paper's core Sec. V-B finding: errors rise on hard intervals."""
        model, _ = trained
        result = evaluate_model(model, ci_dataset)
        assert result.difficult[15].mae > result.full[15].mae

    def test_degradation_positive(self, trained, ci_dataset):
        model, _ = trained
        result = evaluate_model(model, ci_dataset)
        assert result.degradation(15) > 0

    def test_param_count_matches_model(self, trained, ci_dataset):
        model, _ = trained
        result = evaluate_model(model, ci_dataset)
        assert result.num_parameters == model.num_parameters()


class TestRunExperiment:
    def test_end_to_end(self, ci_dataset):
        result = run_experiment("linear", ci_dataset, FAST, seed=0)
        assert result.model_name == "linear"
        assert result.dataset_name == "metr-la"
        assert result.evaluation.full[15].mae > 0

    def test_seed_reproducibility(self, ci_dataset):
        a = run_experiment("linear", ci_dataset, FAST, seed=1)
        b = run_experiment("linear", ci_dataset, FAST, seed=1)
        assert (a.evaluation.full[15].mae
                == pytest.approx(b.evaluation.full[15].mae, rel=1e-9))

    def test_model_hparams_forwarded(self, ci_dataset):
        result = run_experiment("stg2seq", ci_dataset, FAST, seed=0,
                                channels=8)
        assert result.evaluation.num_parameters > 0
