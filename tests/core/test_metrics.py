"""Metrics: formulas, masking, horizon slicing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import HORIZON_STEPS, evaluate_horizons, mae, mape, rmse


class TestMAE:
    def test_formula(self):
        assert mae(np.array([1.0, 3.0]), np.array([2.0, 5.0]),
                   null_value=None) == pytest.approx(1.5)

    def test_ignores_null_targets(self):
        assert mae(np.array([1.0, 100.0]), np.array([2.0, 0.0])) == 1.0

    def test_all_null_returns_nan(self):
        assert np.isnan(mae(np.array([1.0]), np.array([0.0])))

    def test_mask_restricts(self):
        prediction = np.array([1.0, 10.0])
        target = np.array([2.0, 20.0])
        assert mae(prediction, target, mask=np.array([True, False])) == 1.0
        assert mae(prediction, target, mask=np.array([False, True])) == 10.0

    def test_perfect_prediction(self):
        data = np.array([1.0, 2.0, 3.0])
        assert mae(data, data, null_value=None) == 0.0


class TestRMSE:
    def test_formula(self):
        value = rmse(np.array([0.0, 0.0]), np.array([3.0, 4.0]),
                     null_value=None)
        assert value == pytest.approx(np.sqrt(12.5))

    def test_rmse_at_least_mae(self):
        rng = np.random.default_rng(0)
        prediction = rng.normal(size=100)
        target = rng.normal(size=100)
        assert (rmse(prediction, target, null_value=None)
                >= mae(prediction, target, null_value=None))


class TestMAPE:
    def test_formula_in_percent(self):
        value = mape(np.array([110.0]), np.array([100.0]), null_value=None)
        assert value == pytest.approx(10.0)

    def test_excludes_zero_targets_even_without_null(self):
        value = mape(np.array([1.0, 5.0]), np.array([0.0, 10.0]),
                     null_value=None)
        assert value == pytest.approx(50.0)

    def test_symmetric_inputs(self):
        assert mape(np.array([90.0]), np.array([100.0])) == pytest.approx(10.0)


class TestEvaluateHorizons:
    def test_paper_horizon_steps(self):
        assert HORIZON_STEPS == {15: 3, 30: 6, 60: 12}

    def test_slices_correct_step(self):
        prediction = np.zeros((2, 12, 3))
        target = np.ones((2, 12, 3))
        target[:, 2] = 5.0             # step 3 <-> 15 minutes
        result = evaluate_horizons(prediction, target, null_value=None)
        assert result[15].mae == pytest.approx(5.0)
        assert result[30].mae == pytest.approx(1.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            evaluate_horizons(np.zeros((2, 12, 3)), np.zeros((2, 12, 4)))

    def test_horizon_beyond_forecast_raises(self):
        with pytest.raises(ValueError, match="exceeds"):
            evaluate_horizons(np.zeros((2, 6, 3)), np.zeros((2, 6, 3)))

    def test_custom_horizons(self):
        prediction = np.zeros((1, 4, 2))
        target = np.ones((1, 4, 2))
        result = evaluate_horizons(prediction, target, null_value=None,
                                   horizons={5: 1, 20: 4})
        assert set(result) == {5, 20}

    def test_mask_applied_per_step(self):
        prediction = np.zeros((1, 12, 2))
        target = np.ones((1, 12, 2))
        target[0, 2, 0] = 10.0
        mask = np.zeros((1, 12, 2), dtype=bool)
        mask[0, 2, 0] = True
        result = evaluate_horizons(prediction, target, null_value=None,
                                   mask=mask)
        assert result[15].mae == pytest.approx(10.0)
        assert np.isnan(result[30].mae)       # nothing valid at step 6

    def test_metrics_dataclass_dict(self):
        prediction = np.zeros((1, 12, 2))
        target = np.ones((1, 12, 2))
        result = evaluate_horizons(prediction, target, null_value=None)
        d = result[15].as_dict()
        assert set(d) == {"mae", "rmse", "mape"}


class TestMetricProperties:
    @given(arrays(np.float64, st.integers(1, 30),
                  elements=st.floats(1, 100, allow_nan=False)))
    @settings(max_examples=30, deadline=None)
    def test_mae_nonnegative_and_zero_iff_equal(self, target):
        assert mae(target, target, null_value=None) == 0.0
        shifted = target + 1.0
        assert mae(shifted, target, null_value=None) == pytest.approx(1.0)

    @given(arrays(np.float64, st.integers(2, 30),
                  elements=st.floats(1, 100, allow_nan=False)),
           st.floats(0.1, 10))
    @settings(max_examples=30, deadline=None)
    def test_mae_scale_equivariance(self, target, scale):
        prediction = target + 1.0
        a = mae(prediction * scale, target * scale, null_value=None)
        b = mae(prediction, target, null_value=None) * scale
        assert a == pytest.approx(b, rel=1e-9)

    @given(arrays(np.float64, st.integers(2, 30),
                  elements=st.floats(1, 100, allow_nan=False)),
           st.floats(0.1, 10))
    @settings(max_examples=30, deadline=None)
    def test_mape_scale_invariance(self, target, scale):
        prediction = target * 1.1
        a = mape(prediction * scale, target * scale, null_value=None)
        b = mape(prediction, target, null_value=None)
        assert a == pytest.approx(b, rel=1e-9)
