"""The perf-regression gate: record checks, tolerances, CLI exit codes."""

import copy
import json
from pathlib import Path

import pytest

from repro.obs import (EventBus, MemorySink, check_records, find_baselines,
                       load_bench_record)
from repro.obs.gate import BENCH_SUITES, DEFAULT_TOLERANCE

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def make_record(suite="kernels", mode="full", cases=None):
    cases = cases if cases is not None else {"conv": 4.0, "gru": 1.5}
    return {
        "suite": suite, "mode": mode, "numpy": "2.4.6",
        "timings": [
            {"name": name, "reference_seconds": speedup,
             "fast_seconds": 1.0, "speedup": speedup, "meta": {}}
            for name, speedup in cases.items()],
    }


class TestCheckRecords:
    def test_identical_records_pass(self):
        record = make_record()
        report = check_records(record, record)
        assert report.passed
        assert all(f.status == "ok" for f in report.findings)

    def test_decay_within_tolerance_is_ok(self):
        baseline = make_record(cases={"conv": 4.0})
        current = make_record(cases={"conv": 4.0 * (1 - DEFAULT_TOLERANCE)
                                     + 0.01})
        assert check_records(current, baseline).passed

    def test_regression_fails(self):
        baseline = make_record(cases={"conv": 4.0})
        current = make_record(cases={"conv": 2.0})
        report = check_records(current, baseline)
        assert not report.passed
        (finding,) = report.failures
        assert finding.status == "regression"
        assert finding.case == "conv"
        assert "below floor" in finding.detail

    def test_improvement_is_flagged_not_failed(self):
        baseline = make_record(cases={"conv": 2.0})
        current = make_record(cases={"conv": 4.0})
        report = check_records(current, baseline)
        assert report.passed
        assert report.findings[0].status == "improved"

    def test_tolerance_is_configurable(self):
        baseline = make_record(cases={"conv": 4.0})
        current = make_record(cases={"conv": 3.5})
        assert check_records(current, baseline).passed
        assert not check_records(current, baseline, tolerance=0.05).passed

    def test_missing_case_fails(self):
        baseline = make_record(cases={"conv": 4.0, "gru": 1.5})
        current = make_record(cases={"conv": 4.0})
        report = check_records(current, baseline)
        (finding,) = report.failures
        assert finding.status == "missing_case"
        assert finding.case == "gru"

    def test_new_case_is_informational(self):
        baseline = make_record(cases={"conv": 4.0})
        current = make_record(cases={"conv": 4.0, "fresh": 9.0})
        report = check_records(current, baseline)
        assert report.passed
        assert any(f.status == "new_case" and f.case == "fresh"
                   for f in report.findings)

    def test_mode_mismatch_skips(self):
        report = check_records(make_record(mode="quick"),
                               make_record(mode="full"))
        assert report.skipped and report.passed
        assert "mode mismatch" in report.skipped
        assert "SKIPPED" in report.render()

    def test_suite_mismatch_skips(self):
        report = check_records(make_record(suite="optim"),
                               make_record(suite="kernels"))
        assert report.skipped and report.passed

    def test_overhead_case_uses_absolute_budget(self):
        def overhead_record(pct):
            record = make_record(suite="obs", cases={"traced": 0.99})
            record["timings"][0]["meta"] = {"overhead_pct": pct}
            return record

        baseline = overhead_record(1.5)
        assert check_records(overhead_record(1.9), baseline).passed
        report = check_records(overhead_record(2.5), baseline)
        (finding,) = report.failures
        assert finding.status == "over_budget"
        # a big speedup drop would normally regress; budget rules instead
        shrunk = overhead_record(1.9)
        shrunk["timings"][0]["speedup"] = 0.1
        assert check_records(shrunk, baseline).passed

    def test_render_table(self):
        report = check_records(make_record(cases={"conv": 2.0}),
                               make_record(cases={"conv": 4.0}))
        text = report.render()
        assert "bench check [kernels @ full]" in text
        assert "FAIL: 1 regression(s)" in text
        assert "conv" in text


class TestRecordIO:
    def test_load_valid_record(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(make_record()))
        assert load_bench_record(path)["suite"] == "kernels"

    def test_load_rejects_missing_keys(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"suite": "kernels"}))
        with pytest.raises(ValueError, match="missing key"):
            load_bench_record(path)

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("not json")
        with pytest.raises(ValueError, match="cannot read"):
            load_bench_record(path)

    def test_find_baselines(self, tmp_path):
        (tmp_path / "BENCH_kernels.json").write_text("{}")
        (tmp_path / "BENCH_obs.json").write_text("{}")
        found = find_baselines(tmp_path)
        assert set(found) == {"kernels", "obs"}

    def test_repo_ships_all_four_baselines(self):
        found = find_baselines(REPO_ROOT)
        assert set(found) == set(BENCH_SUITES)
        for suite, path in found.items():
            record = load_bench_record(path)
            assert record["suite"] == suite
            assert record["mode"] == "full"
            assert record["timings"]


class TestCommittedBaselines:
    """Tier-1 smoke for the gate itself: the committed baselines must
    self-check clean, and a doctored regression must exit non-zero."""

    def test_committed_baselines_pass_self_check(self):
        for suite, path in find_baselines(REPO_ROOT).items():
            record = load_bench_record(path)
            report = check_records(record, record)
            assert report.passed, f"{suite}: {report.render()}"
            assert not report.skipped

    def test_committed_obs_overhead_within_budget(self):
        record = load_bench_record(REPO_ROOT / "BENCH_obs.json")
        (case,) = [t for t in record["timings"]
                   if t["name"] == "traced_train_step"]
        assert case["meta"]["overhead_pct"] <= 2.0

    def test_cli_passes_on_committed_baseline(self, capsys):
        from repro.cli import main

        baseline = str(REPO_ROOT / "BENCH_kernels.json")
        rc = main(["bench", "check", "--current", baseline,
                   "--baseline", baseline])
        assert rc == 0
        assert "PASS" in capsys.readouterr().out

    def test_cli_fails_on_doctored_regression(self, tmp_path, capsys):
        from repro.cli import main

        baseline_path = REPO_ROOT / "BENCH_kernels.json"
        doctored = copy.deepcopy(load_bench_record(baseline_path))
        worst = doctored["timings"][0]
        worst["speedup"] = worst["speedup"] / 10.0
        doctored_path = tmp_path / "BENCH_kernels.json"
        doctored_path.write_text(json.dumps(doctored))

        rc = main(["bench", "check", "--current", str(doctored_path),
                   "--baseline", str(baseline_path)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "regression" in out

    def test_cli_rejects_half_specified_comparison(self, capsys):
        from repro.cli import main

        rc = main(["bench", "check",
                   "--current", str(REPO_ROOT / "BENCH_kernels.json")])
        assert rc == 2

    def test_cli_errors_on_missing_baseline_dir(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["bench", "check", "--root", str(tmp_path)])
        assert rc == 2
        assert "no BENCH_" in capsys.readouterr().err


class TestRunAndCheck:
    def test_fresh_obs_quick_run_skips_against_full_baseline(self):
        """run_and_check with an explicit quick mode produces a skipped
        (mode-mismatch) report rather than a bogus verdict."""
        from repro.obs import run_and_check

        report = run_and_check("obs", REPO_ROOT / "BENCH_obs.json",
                               mode="quick", bus=EventBus([MemorySink()]))
        assert report.skipped and report.passed

    def test_unknown_suite_raises(self):
        from repro.obs.gate import run_suite

        with pytest.raises(ValueError, match="unknown bench suite"):
            run_suite("nope", "quick")
