"""Metrics registry: instruments, snapshots, scoping, live wiring."""

import json
import math

import pytest

from repro.core import TrainingConfig
from repro.obs import (EventBus, Histogram, MemorySink, MetricsRegistry,
                       get_registry, registry_scope)


class TestInstruments:
    def test_counter_increments(self):
        counter = MetricsRegistry().counter("hits")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_counter_rejects_decrease(self):
        counter = MetricsRegistry().counter("hits")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("rss_mb")
        gauge.set(100.0)
        gauge.add(-25.0)
        assert gauge.value == 75.0

    def test_histogram_buckets_observations(self):
        hist = Histogram("lat", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            hist.observe(value)
        assert hist.counts == [1, 1, 1, 1]     # one in the +inf bucket
        assert hist.count == 4
        assert hist.mean == pytest.approx(5.555 / 4)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram("bad", buckets=(1.0, 0.5))

    def test_histogram_quantiles(self):
        hist = Histogram("lat", buckets=(0.01, 0.1, 1.0))
        for _ in range(9):
            hist.observe(0.005)
        hist.observe(0.5)
        assert hist.quantile(0.5) == 0.01
        assert hist.quantile(1.0) == 1.0
        assert math.isnan(Histogram("empty").quantile(0.5))
        with pytest.raises(ValueError, match="outside"):
            hist.quantile(1.5)


class TestRegistry:
    def test_create_or_fetch_shares_instruments(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_histogram_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(0.1, 1.0))
        with pytest.raises(ValueError, match="different buckets"):
            registry.histogram("lat", buckets=(0.5, 1.0))

    def test_ratio(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.counter("misses").inc(1)
        assert registry.ratio("hits", "misses") == pytest.approx(0.75)
        assert math.isnan(registry.ratio("never", "touched"))

    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("n").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(0.1,)).observe(0.05)
        snap = registry.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["counters"] == {"n": 2}
        assert snap["histograms"]["h"]["count"] == 1

    def test_publish_emits_metrics_event(self):
        sink = MemorySink()
        registry = MetricsRegistry()
        registry.counter("n").inc()
        event = registry.publish("end-of-fit", bus=EventBus([sink]))
        assert sink.events == [event]
        assert event.kind == "metrics"
        assert event.label == "end-of-fit"
        assert event.counters == {"n": 1}

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        registry.reset()
        assert registry.snapshot()["counters"] == {}


class TestAmbientScope:
    def test_scope_swaps_and_restores(self):
        outer = get_registry()
        with registry_scope() as inner:
            assert get_registry() is inner
            assert inner is not outer
        assert get_registry() is outer

    def test_scope_accepts_explicit_registry(self):
        mine = MetricsRegistry()
        with registry_scope(mine) as got:
            assert got is mine
            assert get_registry() is mine


class TestLiveWiring:
    """The stack's built-in instruments fill in during real work."""

    def test_engine_fit_updates_batch_metrics(self, ci_dataset):
        from repro.models import create_model
        from repro.train import Engine

        config = TrainingConfig(epochs=2, batch_size=32,
                                max_batches_per_epoch=3, learning_rate=0.01)
        model = create_model("linear", ci_dataset.num_nodes,
                             ci_dataset.adjacency, seed=0)
        with registry_scope() as registry:
            Engine(config).fit(model, ci_dataset, seed=0)
            assert registry.counter("train/batches").value == 6
            hist = registry.histogram("train/batch_seconds")
            assert hist.count == 6
            assert hist.mean > 0

    def test_grad_clip_rate(self, ci_dataset):
        from repro.models import create_model
        from repro.train import Engine

        config = TrainingConfig(epochs=1, batch_size=32,
                                max_batches_per_epoch=3, learning_rate=0.01,
                                grad_clip=1e-9)      # always rescales
        model = create_model("linear", ci_dataset.num_nodes,
                             ci_dataset.adjacency, seed=0)
        with registry_scope() as registry:
            Engine(config).fit(model, ci_dataset, seed=0)
            assert registry.ratio("train/grad_clip_steps",
                                  "train/grad_clip_checks") > 0
            assert registry.counter("train/grad_clip_checks").value == 3
            assert registry.counter("train/grad_clip_steps").value == 3

    def test_cache_hit_ratio(self, tmp_path, monkeypatch):
        from repro.datasets import load_dataset

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        with registry_scope() as registry:
            load_dataset("pemsd8", scale="ci")        # cold: miss
            load_dataset("pemsd8", scale="ci")        # warm: hit
            assert registry.counter("data/cache_misses").value == 1
            assert registry.counter("data/cache_hits").value == 1
            assert registry.ratio("data/cache_hits",
                                  "data/cache_misses") == pytest.approx(0.5)

    def test_loader_gather_metrics(self, ci_dataset):
        from repro.datasets import DataLoader

        with registry_scope() as registry:
            loader = DataLoader(ci_dataset.supervised.train, batch_size=32,
                                seed=0)
            batches = sum(1 for _ in loader)
            assert registry.counter("data/batches").value == batches
            assert registry.histogram("data/gather_seconds").count == batches
