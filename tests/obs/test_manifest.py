"""Run-manifest completeness and round-trips."""

import numpy as np
import pytest

import repro
from repro.core import TrainingConfig
from repro.obs import (RunManifest, build_manifest, normalize_ru_maxrss,
                       peak_rss_kb, read_manifest, write_manifest)
from repro.obs.manifest import MANIFEST_SCHEMA_VERSION, REQUIRED_FIELDS


@pytest.fixture
def manifest():
    return build_manifest(model="stgcn", dataset="metr-la", seed=7,
                          config=TrainingConfig(epochs=2),
                          num_parameters=4242, wall_seconds=1.25,
                          best_epoch=1, best_val_mae=3.5, test_mae_15=4.0)


class TestBuildManifest:
    def test_identity_fields(self, manifest):
        assert manifest.model == "stgcn"
        assert manifest.dataset == "metr-la"
        assert manifest.seed == 7
        assert manifest.num_parameters == 4242
        assert manifest.wall_seconds == 1.25

    def test_config_is_flattened_dataclass(self, manifest):
        assert manifest.config["epochs"] == 2
        assert manifest.config["batch_size"] == 32

    def test_config_accepts_plain_dict(self):
        built = build_manifest(model="m", dataset="d", seed=0,
                               config={"epochs": 9}, num_parameters=1,
                               wall_seconds=0.1)
        assert built.config == {"epochs": 9}

    def test_environment_fields(self, manifest):
        assert manifest.repro_version == repro.__version__
        assert manifest.numpy_version == np.__version__
        assert manifest.python_version.count(".") == 2
        assert manifest.created_unix > 0
        assert manifest.schema_version == MANIFEST_SCHEMA_VERSION

    def test_peak_rss_recorded_on_linux(self, manifest):
        assert manifest.peak_rss_kb == pytest.approx(peak_rss_kb(), rel=0.5)
        assert manifest.peak_rss_kb > 0


class TestNormalizeRuMaxrss:
    """``ru_maxrss`` units are platform-defined: KiB on Linux/BSD, bytes
    on macOS — manifests must normalise to KiB either way."""

    def test_linux_reading_is_already_kib(self):
        assert normalize_ru_maxrss(123_456, system="Linux") == 123_456

    def test_darwin_reading_is_bytes(self):
        assert normalize_ru_maxrss(123_456 * 1024, system="Darwin") == 123_456

    def test_darwin_floors_partial_kib(self):
        assert normalize_ru_maxrss(2048 + 1023, system="Darwin") == 2

    def test_unknown_systems_fall_back_to_kib(self):
        assert normalize_ru_maxrss(77, system="FreeBSD") == 77

    def test_defaults_to_current_platform(self):
        import platform
        expected = (normalize_ru_maxrss(4096, system=platform.system()))
        assert normalize_ru_maxrss(4096) == expected

    def test_result_is_int(self):
        assert isinstance(normalize_ru_maxrss(1024.0, system="Darwin"), int)


class TestManifestIO:
    def test_round_trip(self, tmp_path, manifest):
        path = write_manifest(tmp_path / "run.json", manifest)
        assert read_manifest(path) == manifest

    def test_required_fields_present_on_disk(self, tmp_path, manifest):
        import json
        path = write_manifest(tmp_path / "run.json", manifest)
        payload = json.loads(path.read_text())
        for field in REQUIRED_FIELDS:
            assert field in payload

    def test_missing_required_field_rejected(self, tmp_path, manifest):
        import json
        path = write_manifest(tmp_path / "run.json", manifest)
        payload = json.loads(path.read_text())
        del payload["seed"]
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="missing required fields"):
            read_manifest(path)

    def test_unknown_keys_survive_in_extra(self):
        payload = build_manifest(model="m", dataset="d", seed=0,
                                 config={}, num_parameters=1,
                                 wall_seconds=0.1).to_dict()
        payload["future_field"] = [1, 2, 3]
        restored = RunManifest.from_dict(payload)
        assert restored.extra["future_field"] == [1, 2, 3]
