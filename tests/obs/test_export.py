"""Chrome-tracing export: schema shape, span/instant mapping, file I/O."""

import json

import pytest

from repro.obs import (BatchEnd, EpochEnd, EventBus, JSONLSink, MemorySink,
                       chrome_trace, span, write_chrome_trace)

#: Keys the Trace Event spec requires on every phase we emit.
REQUIRED_BY_PHASE = {
    "X": {"name", "cat", "ph", "ts", "dur", "pid", "tid"},
    "i": {"name", "cat", "ph", "ts", "pid", "tid", "s"},
    "M": {"name", "ph", "pid", "tid", "args"},
}


def traced_events():
    sink = MemorySink()
    bus = EventBus([sink])
    with span("train/epoch", bus=bus, epoch=1):
        with span("train/batch", bus=bus, batch=1):
            pass
        bus.emit(BatchEnd(epoch=1, batch=1, loss=0.5))
    bus.emit(EpochEnd(epoch=1, total_epochs=1, train_loss=0.5, val_mae=3.0,
                      seconds=1.0))
    return sink.events


class TestChromeTrace:
    def test_schema_validates(self):
        payload = chrome_trace(traced_events())
        assert json.loads(json.dumps(payload)) == payload   # JSON-safe
        assert payload["displayTimeUnit"] == "ms"
        assert isinstance(payload["traceEvents"], list)
        for entry in payload["traceEvents"]:
            required = REQUIRED_BY_PHASE[entry["ph"]]
            assert required <= set(entry), (
                f"{entry['ph']!r} entry missing {required - set(entry)}")
            if entry["ph"] != "M":
                assert isinstance(entry["ts"], (int, float))

    def test_spans_become_complete_slices(self):
        payload = chrome_trace(traced_events())
        slices = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in slices}
        assert set(by_name) == {"train/epoch", "train/batch"}
        batch = by_name["train/batch"]
        assert batch["cat"] == "train"
        assert batch["dur"] >= 0
        assert batch["args"]["batch"] == 1
        assert batch["args"]["status"] == "ok"
        # microseconds: the batch opens at/after the epoch opens
        assert batch["ts"] >= by_name["train/epoch"]["ts"]

    def test_other_events_become_instants(self):
        payload = chrome_trace(traced_events())
        instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        names = {e["name"] for e in instants}
        assert names == {"batch_end", "epoch_end"}
        for entry in instants:
            assert entry["cat"] == "event"
            assert entry["s"] == "g"
            assert "event" not in entry["args"]    # kind lives in "name"

    def test_error_span_carries_error_arg(self):
        sink = MemorySink()
        with pytest.raises(ValueError):
            with span("doomed", bus=EventBus([sink])):
                raise ValueError("exploded")
        (entry,) = [e for e in chrome_trace(sink.events)["traceEvents"]
                    if e["ph"] == "X"]
        assert entry["args"]["status"] == "error"
        assert "exploded" in entry["args"]["error"]

    def test_thread_metadata_emitted_once_per_thread(self):
        payload = chrome_trace(traced_events())
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert len(meta) == len({e["tid"] for e in meta})
        assert any(e["args"]["name"] == "main" for e in meta)

    def test_empty_input(self):
        payload = chrome_trace([])
        assert payload["traceEvents"] == []


class TestWriteChromeTrace:
    def test_from_event_list(self, tmp_path):
        out = tmp_path / "out.json"
        payload = write_chrome_trace(traced_events(), out)
        assert json.loads(out.read_text()) == payload

    def test_from_jsonl_trace_file(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        with JSONLSink(trace) as jsonl:
            bus = EventBus([jsonl])
            with span("a", bus=bus):
                with span("a/b", bus=bus):
                    pass
        payload = write_chrome_trace(trace, tmp_path / "out.json")
        names = {e["name"] for e in payload["traceEvents"]
                 if e["ph"] == "X"}
        assert names == {"a", "a/b"}

    def test_creates_parent_directories(self, tmp_path):
        out = tmp_path / "deep" / "nested" / "out.json"
        write_chrome_trace([], out)
        assert out.exists()
