"""Timers, counters, and bus-publishing profiled regions."""

import time

from repro.nn import Tensor
from repro.obs import (Counter, EventBus, MemorySink, Timer, profile_region,
                       bus_scope)


class TestTimer:
    def test_accumulates_laps(self):
        timer = Timer()
        for _ in range(3):
            with timer:
                time.sleep(0.001)
        assert len(timer.laps) == 3
        assert timer.seconds >= 0.003
        assert timer.mean_lap == timer.seconds / 3

    def test_zero_state(self):
        timer = Timer()
        assert timer.seconds == 0.0
        assert timer.mean_lap == 0.0


class TestCounter:
    def test_increment_and_read(self):
        counter = Counter()
        assert counter.increment("batches") == 1
        assert counter.increment("batches", by=4) == 5
        counter.increment("checkpoints")
        assert counter.value("batches") == 5
        assert counter.as_dict() == {"batches": 5, "checkpoints": 1}

    def test_unknown_name_is_zero(self):
        assert Counter().value("nothing") == 0


class TestProfileRegion:
    def test_emits_snapshot_with_op_census(self):
        sink = MemorySink()
        bus = EventBus([sink])
        with profile_region("fwd+bwd", bus=bus, top=3):
            a = Tensor([[1.0, 2.0]], requires_grad=True)
            (a @ Tensor([[1.0], [1.0]])).sum().backward()
        (snapshot,) = sink.of_kind("profile")
        assert snapshot.label == "fwd+bwd"
        assert snapshot.total_nodes > 0
        assert snapshot.total_elements > 0
        assert snapshot.top_ops
        assert len(snapshot.top_ops) <= 3
        for stats in snapshot.top_ops.values():
            assert stats["count"] >= 1
            assert stats["elements"] >= 1

    def test_defaults_to_ambient_bus(self):
        sink = MemorySink()
        with bus_scope(EventBus([sink])):
            with profile_region("region"):
                Tensor([1.0]) + Tensor([2.0])
        assert len(sink.of_kind("profile")) == 1

    def test_yields_live_report(self):
        with profile_region("r", bus=EventBus()) as report:
            Tensor([1.0]) + Tensor([2.0])
        assert report.total_nodes > 0
