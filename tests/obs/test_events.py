"""Event types, bus dispatch/fan-out, sinks, and record round-trips."""

import json

import pytest

from repro.obs import (EVENT_KINDS, BatchEnd, CacheHit, CacheMiss,
                       CheckpointSaved, ConsoleSink, DataBench, DatasetBuild,
                       EpochEnd, EvalDone, EventBus, GradClip, JSONLSink,
                       KernelBench, MemorySink, MetricsSnapshot, ObsBench,
                       OptimBench, ProfileSnapshot, RunFinished, RunStarted,
                       SpanEvent, bus_scope, event_from_record,
                       event_to_record, get_bus, read_trace)


def sample_events():
    return [
        RunStarted(model="stgcn", dataset="metr-la", seed=3,
                   num_parameters=1234, config={"epochs": 2}),
        BatchEnd(epoch=1, batch=4, loss=0.5),
        EpochEnd(epoch=1, total_epochs=2, train_loss=0.41, val_mae=3.2,
                 seconds=1.5),
        EvalDone(inference_seconds=0.3, num_parameters=1234,
                 full={"15": {"mae": 3.0, "rmse": 4.0, "mape": 10.0}},
                 difficult={"15": {"mae": 4.5, "rmse": 5.0, "mape": 12.0}}),
        CheckpointSaved(path="ckpt.npz", num_arrays=7),
        RunFinished(model="stgcn", dataset="metr-la", seed=3,
                    wall_seconds=9.9, best_epoch=0, best_val_mae=3.2),
        ProfileSnapshot(label="fwd", wall_seconds=0.1, total_nodes=10,
                        total_elements=100,
                        top_ops={"matmul": {"count": 4, "elements": 80}}),
        KernelBench(name="conv2d_backward", mode="full",
                    reference_seconds=0.04, fast_seconds=0.01, speedup=4.0,
                    meta={"kernel": [1, 3]}),
        GradClip(epoch=1, batch=3, norm=7.25, max_norm=5.0),
        OptimBench(name="adam_step", mode="full",
                   reference_seconds=0.02, fast_seconds=0.005, speedup=4.0,
                   meta={"parameters": 300}),
        DataBench(name="dataset_load", mode="full",
                  reference_seconds=1.2, fast_seconds=0.1, speedup=12.0,
                  meta={"dataset": "metr-la"}),
        CacheHit(name="metr-la", scale="ci", key="0123456789abcdef",
                 path="/tmp/cache/metr-la_ci_0123456789abcdef.npz",
                 seconds=0.05),
        CacheMiss(name="metr-la", scale="ci", key="0123456789abcdef"),
        DatasetBuild(name="metr-la", scale="ci", num_nodes=7,
                     num_steps=1152, seconds=0.8, cached=True),
        ObsBench(name="traced_train_step", mode="full",
                 reference_seconds=0.3, fast_seconds=0.302, speedup=0.99,
                 meta={"overhead_pct": 0.7}),
        SpanEvent(label="train/batch", span_id="2f", parent_id="1a",
                  t_start=1700000000.5, seconds=0.025, status="ok",
                  depth=2, thread=12345, attrs={"batch": 4}),
        MetricsSnapshot(label="fit", counters={"train/batches": 6},
                        gauges={"lr": 0.01},
                        histograms={"train/batch_seconds": {
                            "count": 6, "total": 0.9,
                            "buckets": [0.01, 0.1],
                            "counts": [0, 5, 1]}}),
    ]


class TestEventRecords:
    @pytest.mark.parametrize("event", sample_events(),
                             ids=lambda e: e.kind)
    def test_round_trip(self, event):
        record = event_to_record(event)
        assert record["event"] == event.kind
        assert json.loads(json.dumps(record)) == record   # JSON-safe
        assert event_from_record(record) == event

    def test_kind_registry_complete(self):
        assert set(EVENT_KINDS) == {e.kind for e in sample_events()}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_record({"event": "nope"})

    def test_unknown_fields_ignored(self):
        record = event_to_record(BatchEnd(epoch=1, batch=2, loss=0.1))
        record["added_in_v2"] = "whatever"
        assert event_from_record(record) == BatchEnd(
            epoch=1, batch=2, loss=0.1, t=record["t"])


class TestEventBus:
    def test_fan_out_order_and_content(self):
        first, second = MemorySink(), MemorySink()
        bus = EventBus([first, second])
        events = sample_events()
        for event in events:
            bus.emit(event)
        assert first.events == events
        assert second.events == events

    def test_attach_detach(self):
        bus = EventBus()
        sink = MemorySink()
        bus.attach(sink)
        bus.emit(BatchEnd(epoch=1, batch=1, loss=0.1))
        bus.detach(sink)
        bus.detach(sink)            # idempotent
        bus.emit(BatchEnd(epoch=1, batch=2, loss=0.2))
        assert len(sink.events) == 1

    def test_scoped_sink(self):
        bus = EventBus()
        sink = MemorySink()
        with bus.scoped(sink):
            bus.emit(BatchEnd(epoch=1, batch=1, loss=0.1))
        bus.emit(BatchEnd(epoch=1, batch=2, loss=0.2))
        assert len(sink.events) == 1

    def test_emit_without_sinks_is_noop(self):
        EventBus().emit(BatchEnd())     # must not raise

    def test_has_sinks(self):
        bus = EventBus()
        assert not bus.has_sinks
        sink = MemorySink()
        bus.attach(sink)
        assert bus.has_sinks
        bus.detach(sink)
        assert not bus.has_sinks

    def test_poisoned_sink_does_not_break_the_run(self):
        """A sink raising mid-run must not take telemetry (or training)
        down with it: the bus warns once per sink and keeps emitting to
        the healthy ones."""
        calls = []

        def poisoned(event):
            calls.append(event)
            raise RuntimeError("disk full")

        healthy = MemorySink()
        bus = EventBus([poisoned, healthy])
        events = [BatchEnd(epoch=1, batch=b, loss=0.1) for b in range(3)]
        with pytest.warns(RuntimeWarning, match="disk full") as record:
            for event in events:
                bus.emit(event)
        assert healthy.events == events          # fan-out survived
        assert len(calls) == 3                   # poisoned sink still called
        assert len(record) == 1                  # but warned only once

    def test_each_poisoned_sink_warns_independently(self):
        def bad_a(event):
            raise ValueError("a")

        def bad_b(event):
            raise ValueError("b")

        bus = EventBus([bad_a, bad_b])
        with pytest.warns(RuntimeWarning) as record:
            bus.emit(BatchEnd())
            bus.emit(BatchEnd())
        messages = [str(w.message) for w in record]
        assert len(messages) == 2
        assert any("ValueError('a')" in m for m in messages)
        assert any("ValueError('b')" in m for m in messages)

    def test_memory_sink_kind_filter(self):
        sink = MemorySink()
        bus = EventBus([sink])
        for event in sample_events():
            bus.emit(event)
        assert [e.kind for e in sink.of_kind("epoch_end")] == ["epoch_end"]

    def test_ambient_bus_scope(self):
        default = get_bus()
        inner = EventBus()
        with bus_scope(inner):
            assert get_bus() is inner
        assert get_bus() is default


class TestConsoleSink:
    def test_epoch_line_matches_legacy_verbose_format(self, capsys):
        ConsoleSink()(EpochEnd(epoch=2, total_epochs=5, train_loss=0.1234,
                               val_mae=3.4567, seconds=1.23))
        out = capsys.readouterr().out
        assert out == "  epoch 2/5 loss=0.1234 val_mae=3.4567 (1.2s)\n"

    def test_kind_filter(self, capsys):
        sink = ConsoleSink(kinds=("epoch_end",))
        for event in sample_events():
            sink(event)
        out = capsys.readouterr().out
        assert out.count("\n") == 1
        assert "epoch 1/2" in out

    def test_every_kind_renders(self):
        sink = ConsoleSink()
        for event in sample_events():
            assert sink.format(event)


class TestJSONLSink:
    def test_emit_parse_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        events = sample_events()
        with JSONLSink(path) as sink:
            bus = EventBus([sink])
            for event in events:
                bus.emit(event)
        assert read_trace(path) == events

    def test_appends_across_reopen(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JSONLSink(path) as sink:
            sink(BatchEnd(epoch=1, batch=1, loss=0.1))
        with JSONLSink(path) as sink:
            sink(BatchEnd(epoch=1, batch=2, loss=0.2))
        assert len(read_trace(path)) == 2

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "trace.jsonl"
        with JSONLSink(path) as sink:
            sink(BatchEnd())
        assert path.exists()
