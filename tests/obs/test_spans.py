"""Span tracing: nesting, the no-op path, failure semantics, SpanTree."""

import threading

import pytest

from repro.core import TrainingConfig, run_experiment
from repro.obs import (EventBus, JSONLSink, MemorySink, SpanEvent, SpanTree,
                       bus_scope, current_span, disable_spans, span,
                       span_report, spans_enabled)


def recorded(sink):
    return [e for e in sink.events if isinstance(e, SpanEvent)]


class TestSpanNesting:
    def test_parent_linkage_and_depth(self):
        sink = MemorySink()
        bus = EventBus([sink])
        with span("a", bus=bus):
            with span("a/b", bus=bus):
                with span("a/b/c", bus=bus):
                    pass
        c, b, a = recorded(sink)              # innermost closes first
        assert [e.label for e in (a, b, c)] == ["a", "a/b", "a/b/c"]
        assert a.parent_id == "" and a.depth == 0
        assert b.parent_id == a.span_id and b.depth == 1
        assert c.parent_id == b.span_id and c.depth == 2

    def test_siblings_share_a_parent(self):
        sink = MemorySink()
        bus = EventBus([sink])
        with span("root", bus=bus):
            with span("first", bus=bus):
                pass
            with span("second", bus=bus):
                pass
        first, second, root = recorded(sink)
        assert first.parent_id == root.span_id
        assert second.parent_id == root.span_id
        assert first.span_id != second.span_id

    def test_current_span_tracks_the_stack(self):
        bus = EventBus([MemorySink()])
        assert current_span() is None
        with span("outer", bus=bus) as outer:
            assert current_span() is outer
            with span("inner", bus=bus) as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None

    def test_timing_and_status(self):
        sink = MemorySink()
        with span("timed", bus=EventBus([sink])):
            pass
        (event,) = recorded(sink)
        assert event.seconds >= 0
        assert event.t_start > 0
        assert event.status == "ok" and event.error == ""
        assert event.thread == threading.get_ident()

    def test_attrs_at_open_and_via_set(self):
        sink = MemorySink()
        with span("probe", bus=EventBus([sink]), size=32) as sp:
            sp.set(cache="hit")
        (event,) = recorded(sink)
        assert event.attrs == {"size": 32, "cache": "hit"}

    def test_fresh_thread_starts_a_new_root(self):
        sink = MemorySink()
        bus = EventBus([sink])
        done = threading.Event()

        def worker():
            with span("worker", bus=bus):
                pass
            done.set()

        with span("main", bus=bus):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert done.is_set()
        by_label = {e.label: e for e in recorded(sink)}
        assert by_label["worker"].parent_id == ""     # not under "main"
        assert by_label["worker"].depth == 0
        assert by_label["worker"].thread != by_label["main"].thread


class TestNoOpPath:
    def test_sinkless_bus_records_nothing(self):
        bus = EventBus()
        with span("quiet", bus=bus) as sp:
            assert repr(sp) == "<span disabled>"
            assert sp.set(anything="goes") is sp
            assert current_span() is None

    def test_disable_spans_suppresses_recording(self):
        sink = MemorySink()
        bus = EventBus([sink])
        assert spans_enabled(bus)
        with disable_spans():
            assert not spans_enabled(bus)
            with span("hidden", bus=bus):
                pass
            with disable_spans():             # nests
                pass
            assert not spans_enabled(bus)
        assert spans_enabled(bus)
        assert recorded(sink) == []

    def test_spans_enabled_follows_ambient_bus(self):
        with bus_scope(EventBus()):
            assert not spans_enabled()
        with bus_scope(EventBus([MemorySink()])):
            assert spans_enabled()


class TestSpanFailure:
    def test_exception_marks_span_error_and_propagates(self):
        sink = MemorySink()
        with pytest.raises(ValueError, match="boom"):
            with span("fails", bus=EventBus([sink])):
                raise ValueError("boom")
        (event,) = recorded(sink)
        assert event.status == "error"
        assert event.error == "ValueError: boom"

    def test_ancestors_close_in_child_first_order_with_error(self):
        sink = MemorySink()
        bus = EventBus([sink])
        with pytest.raises(RuntimeError):
            with span("run", bus=bus):
                with span("run/epoch", bus=bus):
                    with span("run/epoch/batch", bus=bus):
                        raise RuntimeError("nan loss")
        events = recorded(sink)
        assert [e.label for e in events] == [
            "run/epoch/batch", "run/epoch", "run"]
        assert all(e.status == "error" for e in events)
        assert all("nan loss" in e.error for e in events)

    def test_stack_unwinds_cleanly_after_error(self):
        bus = EventBus([MemorySink()])
        with pytest.raises(ValueError):
            with span("doomed", bus=bus):
                raise ValueError()
        assert current_span() is None
        with span("after", bus=bus) as sp:    # next span is a fresh root
            assert sp.depth == 0


class TestSpanTree:
    def build_events(self, bus_sink):
        bus = EventBus([bus_sink])
        with span("run", bus=bus):
            with span("epoch", bus=bus):
                with span("batch", bus=bus):
                    pass
                with span("batch", bus=bus):
                    pass
        return bus_sink.events

    def test_reconstructs_hierarchy(self):
        sink = MemorySink()
        events = self.build_events(sink)
        tree = SpanTree(events)
        assert len(tree) == 4
        (root,) = tree.roots
        assert root.label == "run"
        (epoch,) = root.children
        assert epoch.label == "epoch"
        assert [c.label for c in epoch.children] == ["batch", "batch"]

    def test_walk_is_depth_first(self):
        sink = MemorySink()
        tree = SpanTree(self.build_events(sink))
        labels = [(node.label, depth) for node, depth in tree.walk()]
        assert labels == [("run", 0), ("epoch", 1),
                          ("batch", 2), ("batch", 2)]

    def test_self_time_excludes_children(self):
        sink = MemorySink()
        tree = SpanTree(self.build_events(sink))
        (root,) = tree.roots
        (epoch,) = root.children
        assert root.self_seconds <= root.seconds
        assert epoch.self_seconds == pytest.approx(
            epoch.seconds - sum(c.seconds for c in epoch.children))

    def test_aggregate_groups_by_label(self):
        sink = MemorySink()
        tree = SpanTree(self.build_events(sink))
        table = tree.aggregate()
        assert table["batch"]["count"] == 2
        assert table["run"]["errors"] == 0

    def test_non_span_events_are_ignored(self):
        from repro.obs import BatchEnd
        sink = MemorySink()
        events = self.build_events(sink) + [BatchEnd(epoch=1, batch=1)]
        assert len(SpanTree(events)) == 4

    def test_crashed_run_prefix_promotes_orphans_to_roots(self):
        """Spans are written innermost-first, so a crash loses the outer
        spans; their recorded children must become roots."""
        sink = MemorySink()
        self.build_events(sink)
        complete = recorded(sink)
        # Simulate the crash: the file ends before "epoch" and "run" close.
        prefix = [e for e in complete if e.label == "batch"]
        tree = SpanTree(prefix)
        assert len(tree) == 2
        assert [n.label for n in tree.roots] == ["batch", "batch"]
        assert all(n.children == [] for n in tree.roots)

    def test_partial_trace_report_still_renders(self):
        sink = MemorySink()
        self.build_events(sink)
        prefix = recorded(sink)[:-1]          # drop the closing "run" span
        text = span_report(prefix)
        assert "3 spans, 1 root(s)" in text
        assert "epoch" in text


class TestSpanReport:
    def test_empty_input(self):
        assert span_report([]) == "(no spans recorded)"

    def test_orders_by_self_time_and_counts_errors(self):
        sink = MemorySink()
        bus = EventBus([sink])
        with pytest.raises(ValueError):
            with span("work", bus=bus):
                raise ValueError("x")
        text = span_report(sink.events)
        assert "1 spans, 1 root(s)" in text
        line = next(l for l in text.splitlines() if l.startswith("work"))
        assert line.split()[-1] == "1"        # errors column

    def test_round_trips_via_jsonl(self, tmp_path, ci_dataset):
        """A traced run_experiment's JSONL reloads into the same tree the
        live events produce, and the report names the whole taxonomy."""
        path = tmp_path / "trace.jsonl"
        sink = MemorySink()
        config = TrainingConfig(epochs=1, batch_size=32,
                                max_batches_per_epoch=2, learning_rate=0.01)
        with JSONLSink(path) as jsonl:
            bus = EventBus([jsonl, sink])
            run_experiment("linear", ci_dataset, config, seed=0, bus=bus)
        live = SpanTree(sink.events)
        reloaded = SpanTree.from_trace(path)
        assert len(reloaded) == len(live) > 0
        assert ([n.label for n, _ in reloaded.walk()]
                == [n.label for n, _ in live.walk()])
        text = span_report(path)
        for label in ("experiment/run", "train/fit", "train/epoch",
                      "train/batch", "train/forward", "train/backward",
                      "train/optim", "train/validate", "eval/predict",
                      "data/gather"):
            assert label in text, f"missing {label} in report"
