"""Tracing a real experiment: JSONL schema, manifest, and summaries."""

import json

import pytest

from repro.core import TrainingConfig, run_experiment, train_model
from repro.models import create_model
from repro.obs import (EventBus, JSONLSink, MemorySink, bus_scope,
                       read_manifest, read_trace, summarize_trace,
                       validate_trace)

FAST = TrainingConfig(epochs=1, batch_size=32, max_batches_per_epoch=3,
                      learning_rate=0.01)


@pytest.fixture(scope="module")
def traced_run(ci_dataset, tmp_path_factory):
    """One 1-epoch run_experiment with a JSONL sink + manifest attached."""
    out = tmp_path_factory.mktemp("trace")
    trace_path = out / "trace.jsonl"
    manifest_path = out / "run.json"
    bus = EventBus([JSONLSink(trace_path)])
    result = run_experiment("linear", ci_dataset, FAST, seed=0, bus=bus,
                            manifest_path=str(manifest_path))
    bus.close()
    return result, trace_path, manifest_path


class TestExperimentTrace:
    def test_trace_is_schema_valid(self, traced_run):
        _, trace_path, _ = traced_run
        assert validate_trace(trace_path) == []

    def test_event_sequence(self, traced_run):
        _, trace_path, _ = traced_run
        events = read_trace(trace_path)
        kinds = [e.kind for e in events if e.kind != "span"]
        assert kinds[0] == "run_started"
        assert kinds[-1] == "run_finished"
        assert kinds.count("batch_end") == 3
        assert kinds.count("epoch_end") == 1
        assert kinds.count("eval_done") == 1
        # the experiment/run span is the trace's outermost closing event
        assert [e.kind for e in events][-1] == "span"
        assert events[-1].label == "experiment/run"

    def test_epoch_end_carries_train_and_val_mae(self, traced_run):
        result, trace_path, _ = traced_run
        (epoch,) = [e for e in read_trace(trace_path)
                    if e.kind == "epoch_end"]
        assert epoch.train_loss == pytest.approx(
            result.history.train_losses[0])
        assert epoch.val_mae == pytest.approx(result.history.val_maes[0])
        assert epoch.seconds > 0

    def test_eval_done_matches_evaluation(self, traced_run):
        result, trace_path, _ = traced_run
        (done,) = [e for e in read_trace(trace_path)
                   if e.kind == "eval_done"]
        assert set(done.full) == {"15", "30", "60"}
        assert done.full["15"]["mae"] == pytest.approx(
            result.evaluation.full[15].mae)
        assert done.difficult["15"]["mae"] == pytest.approx(
            result.evaluation.difficult[15].mae)
        assert done.num_parameters == result.evaluation.num_parameters

    def test_manifest_written_and_complete(self, traced_run):
        result, _, manifest_path = traced_run
        manifest = read_manifest(manifest_path)
        assert manifest.model == "linear"
        assert manifest.dataset == "metr-la"
        assert manifest.seed == 0
        assert manifest.config["epochs"] == 1
        assert manifest.num_parameters == result.evaluation.num_parameters
        assert manifest.wall_seconds > 0
        assert manifest.best_val_mae == pytest.approx(
            min(result.history.val_maes))
        assert manifest.test_mae_15 == pytest.approx(
            result.evaluation.full[15].mae)

    def test_telemetry_does_not_change_results(self, ci_dataset):
        plain = run_experiment("linear", ci_dataset, FAST, seed=1)
        traced = run_experiment("linear", ci_dataset, FAST, seed=1,
                                bus=EventBus([MemorySink()]))
        assert (plain.evaluation.full[15].mae
                == pytest.approx(traced.evaluation.full[15].mae, rel=1e-12))

    def test_ambient_bus_traces_untouched_call(self, ci_dataset):
        """bus_scope instruments callers that pass no bus= argument."""
        sink = MemorySink()
        with bus_scope(EventBus([sink])):
            run_experiment("linear", ci_dataset, FAST, seed=0)
        assert sink.of_kind("run_started")
        assert sink.of_kind("run_finished")

    def test_train_model_emits_on_explicit_bus(self, ci_dataset):
        sink = MemorySink()
        model = create_model("linear", ci_dataset.num_nodes,
                             ci_dataset.adjacency, seed=0)
        train_model(model, ci_dataset, FAST, seed=0, bus=EventBus([sink]))
        assert len(sink.of_kind("epoch_end")) == 1
        assert len(sink.of_kind("batch_end")) == 3


class TestSummarizeTrace:
    def test_renders_report_tables(self, traced_run):
        _, trace_path, _ = traced_run
        text = summarize_trace(trace_path)
        assert "Trace [linear @ metr-la, seed 0]" in text
        assert "epoch" in text and "val MAE" in text
        assert "horizon" in text and "hardMAE" in text
        assert "15m" in text and "60m" in text
        assert "best_epoch=0" in text

    def test_multiple_runs_grouped(self, traced_run, ci_dataset, tmp_path):
        path = tmp_path / "two.jsonl"
        bus = EventBus([JSONLSink(path)])
        run_experiment("linear", ci_dataset, FAST, seed=0, bus=bus)
        run_experiment("last-value", ci_dataset, FAST, seed=1, bus=bus)
        bus.close()
        text = summarize_trace(path)
        assert "2 run(s)" in text
        assert "[linear @ metr-la, seed 0]" in text
        assert "[last-value @ metr-la, seed 1]" in text

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert summarize_trace(path) == "(empty trace)"

    def test_validate_flags_broken_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "epoch_end"}\nnot json\n'
                        '{"event": "mystery", "t": 1.0}\n')
        problems = validate_trace(path)
        assert any("missing field" in p for p in problems)
        assert any("not valid JSON" in p for p in problems)
        assert any("unknown event kind" in p for p in problems)


class TestForeignEventKinds:
    """A trace written by a newer version must still read (minus the
    foreign events) — unknown kinds are reported problems, not errors."""

    def _mixed_trace(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text(
            '{"event": "batch_end", "epoch": 1, "batch": 1, '
            '"loss": 0.5, "t": 1.0}\n'
            '{"event": "from_the_future", "t": 2.0, "payload": 42}\n'
            '{"event": "batch_end", "epoch": 1, "batch": 2, '
            '"loss": 0.4, "t": 3.0}\n')
        return path

    def test_lenient_read_skips_and_reports(self, tmp_path):
        path = self._mixed_trace(tmp_path)
        problems = []
        events = read_trace(path, problems=problems)
        assert [e.kind for e in events] == ["batch_end", "batch_end"]
        assert problems == [
            "line 2: skipped unknown event kind 'from_the_future'"]

    def test_lenient_read_without_problems_list(self, tmp_path):
        events = read_trace(self._mixed_trace(tmp_path))
        assert len(events) == 2

    def test_strict_read_raises(self, tmp_path):
        path = self._mixed_trace(tmp_path)
        with pytest.raises(ValueError, match="unknown event kind "
                                             "'from_the_future'"):
            read_trace(path, strict=True)

    def test_malformed_json_is_always_an_error(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"event": "batch_end"\n')
        with pytest.raises(ValueError, match="not valid JSON"):
            read_trace(path, problems=[])


class TestMatrixTracing:
    def test_benchmark_matrix_writes_traces(self, tmp_path):
        from repro.core import BenchmarkMatrix
        matrix = BenchmarkMatrix(scale="ci", config=FAST, repeats=2,
                                 trace_dir=tmp_path)
        matrix.cell("last-value", "pemsd8")
        for seed in range(2):
            trace = tmp_path / f"last-value_pemsd8_seed{seed}.jsonl"
            manifest = tmp_path / f"last-value_pemsd8_seed{seed}.run.json"
            assert validate_trace(trace) == []
            assert json.loads(manifest.read_text())["seed"] == seed
