"""The observability bench suite itself (cheap cases only in tier 1)."""

import pytest

from repro.obs import EventBus, MemorySink
from repro.obs.obs_bench import OBS_BENCH_MODES, bench_obs


class TestBenchObs:
    def test_emits_obs_bench_events(self):
        sink = MemorySink()
        timings = bench_obs(mode="quick", bus=EventBus([sink]),
                            cases=["metrics_registry",
                                   "span_noop_vs_recorded"])
        assert [t.name for t in timings] == ["span_noop_vs_recorded",
                                             "metrics_registry"]
        events = sink.of_kind("obs_bench")
        assert [e.name for e in events] == [t.name for t in timings]
        for event, timing in zip(events, timings):
            assert event.mode == "quick"
            assert event.speedup == timing.speedup
            assert event.meta == timing.meta

    def test_span_case_meta_reports_per_span_cost(self):
        (timing,) = bench_obs(mode="quick", bus=EventBus(),
                              cases=["span_noop_vs_recorded"])
        assert timing.meta["spans"] == OBS_BENCH_MODES["quick"]["spans"]
        assert timing.meta["noop_ns_per_span"] > 0
        assert timing.meta["recorded_ns_per_span"] > 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown bench mode"):
            bench_obs(mode="nope")

    def test_unknown_case_rejected(self):
        with pytest.raises(ValueError, match="unknown bench case"):
            bench_obs(mode="quick", cases=["nope"])
