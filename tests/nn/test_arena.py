"""Flat parameter arena: view aliasing, dedup, grad plumbing."""

import numpy as np
import pytest

from repro.nn import Linear, Module, Parameter, Tensor
from repro.nn.arena import ParameterArena, ParamSpec


class Net(Module):
    def __init__(self, seed=0):
        super().__init__()
        gen = np.random.default_rng(seed)
        self.fc1 = Linear(4, 8, rng=gen)
        self.fc2 = Linear(8, 1, rng=gen)

    def forward(self, x):
        return self.fc2(self.fc1(x).tanh())


class TiedNet(Module):
    """Encoder/decoder sharing one weight Parameter."""

    def __init__(self):
        super().__init__()
        self.shared = Parameter(np.arange(6.0).reshape(2, 3))
        self.bias = Parameter(np.zeros(3))


class TestParamSpec:
    def test_size(self):
        assert ParamSpec("w", (2, 3), 0).size == 6
        assert ParamSpec("b", (5,), 6).size == 5
        assert ParamSpec("scalar", (), 11).size == 1


class TestArenaLayout:
    def test_specs_are_contiguous_and_ordered(self):
        model = Net()
        arena = model.flatten_parameters()
        names = [name for name, _ in model.named_parameters()]
        assert [s.name for s in arena.specs] == names
        offset = 0
        for spec in arena.specs:
            assert spec.offset == offset
            offset += spec.size
        assert arena.size == offset
        assert len(arena) == len(names)

    def test_data_preserved_by_flattening(self):
        model = Net(seed=3)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        model.flatten_parameters()
        for key, value in model.state_dict().items():
            np.testing.assert_array_equal(value, before[key])

    def test_empty_arena_rejected(self):
        with pytest.raises(ValueError, match="no parameters"):
            ParameterArena([])


class TestViewAliasing:
    def test_param_data_views_arena(self):
        model = Net()
        arena = model.flatten_parameters()
        arena.data[:] = 7.0
        assert float(model.fc1.weight.data[0, 0]) == 7.0
        model.fc2.bias.data[...] = -1.0
        spec = next(s for s in arena.specs if s.name == "fc2.bias")
        np.testing.assert_array_equal(
            arena.data[spec.offset:spec.offset + spec.size], -1.0)

    def test_autograd_accumulates_into_arena(self):
        model = Net()
        arena = model.flatten_parameters()
        x = Tensor(np.ones((2, 4)))
        loss = (model(x) ** 2).mean()
        loss.backward()
        assert float(np.abs(arena.grad).sum()) > 0
        spec = next(s for s in arena.specs if s.name == "fc2.weight")
        np.testing.assert_array_equal(
            arena.grad[spec.offset:spec.offset + spec.size]
            .reshape(spec.shape),
            model.fc2.weight.grad)

    def test_tied_parameters_stored_once(self):
        model = TiedNet()
        named = list(model.named_parameters())
        named.append(("decoder.weight", model.shared))   # tied alias
        arena = ParameterArena(named)
        assert len(arena) == 2                           # dedup by identity
        assert arena.size == 6 + 3
        arena.data[:6] = 0.0
        np.testing.assert_array_equal(model.shared.data, np.zeros((2, 3)))


class TestFlattenParameters:
    def test_idempotent(self):
        model = Net()
        arena = model.flatten_parameters()
        assert model.flatten_parameters() is arena

    def test_covers(self):
        model = Net()
        arena = model.flatten_parameters()
        assert arena.covers(model.parameters())
        assert not arena.covers(model.parameters()[:-1])
        assert not arena.covers(Net().parameters())


class TestGradOps:
    def test_zero_grad_is_memset_and_rearms_views(self):
        model = Net()
        arena = model.flatten_parameters()
        arena.grad[:] = 3.0
        model.fc1.weight.grad = np.ones_like(model.fc1.weight.data)  # stray
        arena.zero_grad()
        np.testing.assert_array_equal(arena.grad, 0.0)
        for param in model.parameters():
            assert param.grad is param._grad_view

    def test_param_zero_grad_zeroes_in_place(self):
        model = Net()
        arena = model.flatten_parameters()
        arena.grad[:] = 5.0
        model.fc1.weight.zero_grad()
        assert model.fc1.weight.grad is model.fc1.weight._grad_view
        np.testing.assert_array_equal(model.fc1.weight.grad, 0.0)

    def test_sync_grads_copies_strays_and_zeroes_none(self):
        model = Net()
        arena = model.flatten_parameters()
        arena.grad[:] = 9.0
        model.fc1.weight.grad = np.full(model.fc1.weight.shape, 2.0)
        model.fc2.bias.grad = None
        arena.sync_grads()
        np.testing.assert_array_equal(model.fc1.weight.grad, 2.0)
        np.testing.assert_array_equal(model.fc2.bias.grad, 0.0)
        for param in model.parameters():
            assert param.grad is param._grad_view

    def test_grad_norm_matches_per_param_norm(self, rng):
        model = Net()
        arena = model.flatten_parameters()
        arena.grad[:] = rng.normal(size=arena.size)
        expected = np.sqrt(sum(float((p.grad ** 2).sum())
                               for p in model.parameters()))
        assert arena.grad_norm() == pytest.approx(expected, rel=1e-12)


class TestStateLike:
    def test_views_alias_flat_buffer(self):
        arena = Net().flatten_parameters()
        flat, views = arena.state_like()
        assert flat.shape == arena.data.shape
        np.testing.assert_array_equal(flat, 0.0)
        views[0][...] = 4.0
        spec = arena.specs[0]
        np.testing.assert_array_equal(
            flat[spec.offset:spec.offset + spec.size], 4.0)
        assert [v.shape for v in views] == [s.shape for s in arena.specs]
