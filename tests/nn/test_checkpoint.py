"""Checkpointing: model + optimizer state round trip, training resume."""

import numpy as np
import pytest

from repro.nn import Linear, Module, Tensor
from repro.nn.checkpoint import (load_checkpoint, load_optimizer_state,
                                 optimizer_state, save_checkpoint)
from repro.nn.optim import SGD, Adam


class Net(Module):
    def __init__(self, seed=0):
        super().__init__()
        gen = np.random.default_rng(seed)
        self.fc1 = Linear(4, 8, rng=gen)
        self.fc2 = Linear(8, 1, rng=gen)

    def forward(self, x):
        return self.fc2(self.fc1(x).tanh())


def train_steps(model, optimizer, x, y, steps):
    for _ in range(steps):
        optimizer.zero_grad()
        loss = ((model(x) - y) ** 2).mean()
        loss.backward()
        optimizer.step()
    return loss.item()


@pytest.fixture
def batch(rng):
    return (Tensor(rng.normal(size=(16, 4))),
            Tensor(rng.normal(size=(16, 1))))


class TestOptimizerState:
    def test_adam_roundtrip(self, batch):
        model = Net()
        optimizer = Adam(model.parameters(), lr=0.01)
        train_steps(model, optimizer, *batch, steps=3)
        state = optimizer_state(optimizer)

        clone_model = Net()
        clone_model.load_state_dict(model.state_dict())
        clone_optimizer = Adam(clone_model.parameters(), lr=0.999)
        load_optimizer_state(clone_optimizer, state)
        assert clone_optimizer.lr == 0.01
        assert clone_optimizer._step_count == optimizer._step_count
        for m1, m2 in zip(optimizer._m, clone_optimizer._m):
            np.testing.assert_array_equal(m1, m2)

    def test_sgd_momentum_roundtrip(self, batch):
        model = Net()
        optimizer = SGD(model.parameters(), lr=0.01, momentum=0.9)
        train_steps(model, optimizer, *batch, steps=2)
        state = optimizer_state(optimizer)
        clone = SGD(Net().parameters(), lr=0.5, momentum=0.9)
        load_optimizer_state(clone, state)
        for v1, v2 in zip(optimizer._velocity, clone._velocity):
            np.testing.assert_array_equal(v1, v2)


class TestCheckpoint:
    def test_resume_reproduces_uninterrupted_training(self, batch, tmp_path):
        """train 6 steps == train 3, checkpoint, restore, train 3 more."""
        x, y = batch
        reference = Net()
        ref_optimizer = Adam(reference.parameters(), lr=0.05)
        train_steps(reference, ref_optimizer, x, y, steps=6)

        model = Net()
        optimizer = Adam(model.parameters(), lr=0.05)
        train_steps(model, optimizer, x, y, steps=3)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, optimizer, metadata={"step": 3})

        resumed = Net(seed=42)           # different init, will be overwritten
        resumed_optimizer = Adam(resumed.parameters(), lr=0.05)
        metadata = load_checkpoint(path, resumed, resumed_optimizer)
        assert metadata == {"step": 3}
        train_steps(resumed, resumed_optimizer, x, y, steps=3)

        np.testing.assert_allclose(resumed.fc1.weight.data,
                                   reference.fc1.weight.data, atol=1e-12)

    def test_model_only_checkpoint(self, batch, tmp_path):
        model = Net()
        path = tmp_path / "model.npz"
        save_checkpoint(path, model)
        clone = Net(seed=9)
        metadata = load_checkpoint(path, clone)
        assert metadata == {}
        np.testing.assert_array_equal(clone.fc2.weight.data,
                                      model.fc2.weight.data)

    def test_missing_optimizer_state_raises(self, tmp_path):
        model = Net()
        path = tmp_path / "model.npz"
        save_checkpoint(path, model)
        optimizer = Adam(model.parameters(), lr=0.1)
        with pytest.raises(KeyError):
            load_checkpoint(path, Net(), optimizer)

    def test_metadata_roundtrip(self, tmp_path):
        model = Net()
        path = tmp_path / "m.npz"
        save_checkpoint(path, model,
                        metadata={"epoch": 7, "best": 1.23, "name": "x"})
        metadata = load_checkpoint(path, Net())
        assert metadata == {"epoch": 7, "best": 1.23, "name": "x"}


class TestCheckpointTelemetry:
    def test_save_announces_event_on_ambient_bus(self, tmp_path):
        from repro.obs import EventBus, MemorySink, bus_scope

        model = Net()
        optimizer = Adam(model.parameters(), lr=0.1)
        path = tmp_path / "ckpt.npz"
        sink = MemorySink()
        with bus_scope(EventBus([sink])):
            save_checkpoint(path, model, optimizer, metadata={"epoch": 1})
        (event,) = sink.of_kind("checkpoint_saved")
        assert event.path == str(path)
        # 4 model arrays + lr/step/2*(m,v) optimizer arrays + metadata blob
        with np.load(path.with_suffix(".npz") if path.suffix != ".npz"
                     else path) as archive:
            assert event.num_arrays == len(archive.files)

    def test_save_without_listeners_is_silent(self, tmp_path, capsys):
        save_checkpoint(tmp_path / "m.npz", Net())
        assert capsys.readouterr().out == ""
