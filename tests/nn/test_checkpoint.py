"""Checkpointing: model + optimizer state round trip, training resume."""

import numpy as np
import pytest

from repro.nn import Linear, Module, Tensor
from repro.nn.checkpoint import (load_checkpoint, load_optimizer_state,
                                 optimizer_state, save_checkpoint)
from repro.nn.optim import SGD, Adagrad, Adam, AdamW, RMSprop


class Net(Module):
    def __init__(self, seed=0):
        super().__init__()
        gen = np.random.default_rng(seed)
        self.fc1 = Linear(4, 8, rng=gen)
        self.fc2 = Linear(8, 1, rng=gen)

    def forward(self, x):
        return self.fc2(self.fc1(x).tanh())


def train_steps(model, optimizer, x, y, steps):
    for _ in range(steps):
        optimizer.zero_grad()
        loss = ((model(x) - y) ** 2).mean()
        loss.backward()
        optimizer.step()
    return loss.item()


@pytest.fixture
def batch(rng):
    return (Tensor(rng.normal(size=(16, 4))),
            Tensor(rng.normal(size=(16, 1))))


class TestOptimizerState:
    def test_adam_roundtrip(self, batch):
        model = Net()
        optimizer = Adam(model.parameters(), lr=0.01)
        train_steps(model, optimizer, *batch, steps=3)
        state = optimizer_state(optimizer)

        clone_model = Net()
        clone_model.load_state_dict(model.state_dict())
        clone_optimizer = Adam(clone_model.parameters(), lr=0.999)
        load_optimizer_state(clone_optimizer, state)
        assert clone_optimizer.lr == 0.01
        assert clone_optimizer._step_count == optimizer._step_count
        for m1, m2 in zip(optimizer._m, clone_optimizer._m):
            np.testing.assert_array_equal(m1, m2)

    def test_sgd_momentum_roundtrip(self, batch):
        model = Net()
        optimizer = SGD(model.parameters(), lr=0.01, momentum=0.9)
        train_steps(model, optimizer, *batch, steps=2)
        state = optimizer_state(optimizer)
        clone = SGD(Net().parameters(), lr=0.5, momentum=0.9)
        load_optimizer_state(clone, state)
        for v1, v2 in zip(optimizer._velocity, clone._velocity):
            np.testing.assert_array_equal(v1, v2)


#: Every supported optimizer with its persisted buffer attributes.
ALL_OPTIMIZERS = [
    pytest.param(Adam, dict(weight_decay=1e-4), ["_m", "_v"], id="adam"),
    pytest.param(AdamW, dict(weight_decay=1e-2), ["_m", "_v"], id="adamw"),
    pytest.param(SGD, dict(momentum=0.9), ["_velocity"], id="sgd"),
    pytest.param(RMSprop, dict(momentum=0.9), ["_square_avg", "_buffer"],
                 id="rmsprop"),
    pytest.param(Adagrad, dict(), ["_accumulator"], id="adagrad"),
]


class TestRoundTripAllOptimizers:
    """No optimizer's buffers may be silently dropped by the state dict.

    Historically ``optimizer_state`` only knew Adam and SGD, so RMSprop
    square averages and Adagrad accumulators vanished on save and resumed
    runs restarted their adaptive scaling from zero.
    """

    @pytest.mark.parametrize("cls, kwargs, buffers", ALL_OPTIMIZERS)
    def test_roundtrip(self, batch, cls, kwargs, buffers):
        model = Net()
        optimizer = cls(model.parameters(), lr=0.02, **kwargs)
        train_steps(model, optimizer, *batch, steps=3)
        state = optimizer_state(optimizer)
        assert any(np.abs(buf).sum() > 0
                   for attr in buffers for buf in getattr(optimizer, attr))

        clone = cls(Net().parameters(), lr=0.77, **kwargs)
        load_optimizer_state(clone, state)
        assert clone.lr == 0.02
        for attr in buffers:
            for b1, b2 in zip(getattr(optimizer, attr),
                              getattr(clone, attr)):
                np.testing.assert_array_equal(b1, b2)

    @pytest.mark.parametrize("cls, kwargs, buffers", ALL_OPTIMIZERS)
    def test_arena_state_restores_into_per_param_optimizer(
            self, batch, cls, kwargs, buffers):
        """The flat-buffer + spec format survives representation changes."""
        model = Net()
        optimizer = cls(model.flatten_parameters(), lr=0.02, **kwargs)
        train_steps(model, optimizer, *batch, steps=2)
        state = optimizer_state(optimizer)

        clone = cls(Net().parameters(), lr=0.5, **kwargs)   # no arena
        assert clone.arena is None
        load_optimizer_state(clone, state)
        for attr in buffers:
            for b1, b2 in zip(getattr(optimizer, attr),
                              getattr(clone, attr)):
                np.testing.assert_array_equal(b1, b2)

    def test_wrong_parameter_count_rejected(self, batch):
        model = Net()
        optimizer = Adam(model.parameters(), lr=0.01)
        train_steps(model, optimizer, *batch, steps=1)
        state = optimizer_state(optimizer)
        smaller = Adam([model.parameters()[0]], lr=0.01)
        with pytest.raises(ValueError, match="parameters"):
            load_optimizer_state(smaller, state)


class TestLegacyFormat:
    """Pre-arena archives (enumerated ``m{i}``/``v{i}`` keys) still load."""

    def test_adam_legacy_keys(self, batch):
        model = Net()
        optimizer = Adam(model.parameters(), lr=0.03)
        train_steps(model, optimizer, *batch, steps=3)
        legacy = {"lr": np.asarray(optimizer.lr),
                  "step_count": np.asarray(optimizer._step_count)}
        for i, (m, v) in enumerate(zip(optimizer._m, optimizer._v)):
            legacy[f"m{i}"] = m.copy()
            legacy[f"v{i}"] = v.copy()

        clone = Adam(Net().parameters(), lr=0.9)
        load_optimizer_state(clone, legacy)
        assert clone.lr == 0.03
        assert clone._step_count == optimizer._step_count
        for m1, m2 in zip(optimizer._m, clone._m):
            np.testing.assert_array_equal(m1, m2)
        for v1, v2 in zip(optimizer._v, clone._v):
            np.testing.assert_array_equal(v1, v2)

    def test_sgd_legacy_keys(self, batch):
        model = Net()
        optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
        train_steps(model, optimizer, *batch, steps=2)
        legacy = {"lr": np.asarray(optimizer.lr)}
        for i, velocity in enumerate(optimizer._velocity):
            legacy[f"velocity{i}"] = velocity.copy()

        clone = SGD(Net().parameters(), lr=0.9, momentum=0.9)
        load_optimizer_state(clone, legacy)
        assert clone.lr == 0.05
        for v1, v2 in zip(optimizer._velocity, clone._velocity):
            np.testing.assert_array_equal(v1, v2)

    def test_legacy_resume_matches_uninterrupted(self, batch, tmp_path):
        """A legacy-layout archive resumes training identically."""
        x, y = batch
        reference = Net()
        ref_optimizer = Adam(reference.parameters(), lr=0.05)
        train_steps(reference, ref_optimizer, x, y, steps=6)

        model = Net()
        optimizer = Adam(model.parameters(), lr=0.05)
        train_steps(model, optimizer, x, y, steps=3)
        legacy = {"optim/lr": np.asarray(optimizer.lr),
                  "optim/step_count": np.asarray(optimizer._step_count)}
        for i, (m, v) in enumerate(zip(optimizer._m, optimizer._v)):
            legacy[f"optim/m{i}"] = m.copy()
            legacy[f"optim/v{i}"] = v.copy()
        for key, value in model.state_dict().items():
            legacy[f"model/{key}"] = value
        import json
        legacy["metadata"] = np.frombuffer(json.dumps({}).encode(),
                                           dtype=np.uint8)
        path = tmp_path / "legacy.npz"
        np.savez(path, **legacy)

        resumed = Net(seed=42)
        resumed_optimizer = Adam(resumed.parameters(), lr=0.05)
        load_checkpoint(path, resumed, resumed_optimizer)
        train_steps(resumed, resumed_optimizer, x, y, steps=3)
        np.testing.assert_allclose(resumed.fc1.weight.data,
                                   reference.fc1.weight.data, atol=1e-12)


class TestCheckpoint:
    def test_resume_reproduces_uninterrupted_training(self, batch, tmp_path):
        """train 6 steps == train 3, checkpoint, restore, train 3 more."""
        x, y = batch
        reference = Net()
        ref_optimizer = Adam(reference.parameters(), lr=0.05)
        train_steps(reference, ref_optimizer, x, y, steps=6)

        model = Net()
        optimizer = Adam(model.parameters(), lr=0.05)
        train_steps(model, optimizer, x, y, steps=3)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, optimizer, metadata={"step": 3})

        resumed = Net(seed=42)           # different init, will be overwritten
        resumed_optimizer = Adam(resumed.parameters(), lr=0.05)
        metadata = load_checkpoint(path, resumed, resumed_optimizer)
        assert metadata == {"step": 3}
        train_steps(resumed, resumed_optimizer, x, y, steps=3)

        np.testing.assert_allclose(resumed.fc1.weight.data,
                                   reference.fc1.weight.data, atol=1e-12)

    def test_model_only_checkpoint(self, batch, tmp_path):
        model = Net()
        path = tmp_path / "model.npz"
        save_checkpoint(path, model)
        clone = Net(seed=9)
        metadata = load_checkpoint(path, clone)
        assert metadata == {}
        np.testing.assert_array_equal(clone.fc2.weight.data,
                                      model.fc2.weight.data)

    def test_missing_optimizer_state_raises(self, tmp_path):
        model = Net()
        path = tmp_path / "model.npz"
        save_checkpoint(path, model)
        optimizer = Adam(model.parameters(), lr=0.1)
        with pytest.raises(KeyError):
            load_checkpoint(path, Net(), optimizer)

    def test_metadata_roundtrip(self, tmp_path):
        model = Net()
        path = tmp_path / "m.npz"
        save_checkpoint(path, model,
                        metadata={"epoch": 7, "best": 1.23, "name": "x"})
        metadata = load_checkpoint(path, Net())
        assert metadata == {"epoch": 7, "best": 1.23, "name": "x"}


class TestCheckpointTelemetry:
    def test_save_announces_event_on_ambient_bus(self, tmp_path):
        from repro.obs import EventBus, MemorySink, bus_scope

        model = Net()
        optimizer = Adam(model.parameters(), lr=0.1)
        path = tmp_path / "ckpt.npz"
        sink = MemorySink()
        with bus_scope(EventBus([sink])):
            save_checkpoint(path, model, optimizer, metadata={"epoch": 1})
        (event,) = sink.of_kind("checkpoint_saved")
        assert event.path == str(path)
        # 4 model arrays + lr/step/2*(m,v) optimizer arrays + metadata blob
        with np.load(path.with_suffix(".npz") if path.suffix != ".npz"
                     else path) as archive:
            assert event.num_arrays == len(archive.files)

    def test_save_without_listeners_is_silent(self, tmp_path, capsys):
        save_checkpoint(tmp_path / "m.npz", Net())
        assert capsys.readouterr().out == ""
