"""Functional ops: gradients, shapes, and error paths."""

import numpy as np
import pytest

from repro.nn import Tensor, functional as F

from ..conftest import numerical_gradient


class TestActivations:
    def test_softmax_rows_sum_to_one(self, rng):
        x = Tensor(rng.normal(size=(4, 7)))
        out = F.softmax(x, axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4), atol=1e-12)

    def test_softmax_gradcheck(self, rng):
        data = rng.normal(size=(3, 4))
        x = Tensor(data.copy(), requires_grad=True)
        weights = rng.normal(size=(3, 4))
        (F.softmax(x, axis=-1) * Tensor(weights)).sum().backward()
        expected = numerical_gradient(
            lambda: float((F.softmax(Tensor(data), axis=-1).data * weights).sum()),
            data)
        np.testing.assert_allclose(x.grad, expected, atol=1e-6)

    def test_softmax_invariant_to_shift(self, rng):
        data = rng.normal(size=(2, 5))
        a = F.softmax(Tensor(data), axis=-1).data
        b = F.softmax(Tensor(data + 1000.0), axis=-1).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        data = rng.normal(size=(3, 6))
        direct = F.log_softmax(Tensor(data)).data
        reference = np.log(F.softmax(Tensor(data)).data)
        np.testing.assert_allclose(direct, reference, atol=1e-10)

    def test_log_softmax_gradcheck(self, rng):
        data = rng.normal(size=(2, 4))
        x = Tensor(data.copy(), requires_grad=True)
        weights = rng.normal(size=(2, 4))
        (F.log_softmax(x) * Tensor(weights)).sum().backward()
        expected = numerical_gradient(
            lambda: float((F.log_softmax(Tensor(data)).data * weights).sum()),
            data)
        np.testing.assert_allclose(x.grad, expected, atol=1e-6)

    def test_gelu_shape_and_sign(self, rng):
        x = Tensor(np.array([-10.0, 0.0, 10.0]))
        out = F.gelu(x).data
        assert out[0] == pytest.approx(0.0, abs=1e-3)
        assert out[1] == pytest.approx(0.0, abs=1e-12)
        assert out[2] == pytest.approx(10.0, abs=1e-3)

    def test_wrappers_delegate(self, rng):
        x = Tensor(rng.normal(size=(3,)))
        np.testing.assert_array_equal(F.relu(x).data, x.relu().data)
        np.testing.assert_array_equal(F.sigmoid(x).data, x.sigmoid().data)
        np.testing.assert_array_equal(F.tanh(x).data, x.tanh().data)
        np.testing.assert_array_equal(F.leaky_relu(x).data, x.leaky_relu().data)


class TestMultiInput:
    def test_concat_grad_routing(self):
        a = Tensor([[1.0, 2.0]], requires_grad=True)
        b = Tensor([[3.0]], requires_grad=True)
        out = F.concat([a, b], axis=1)
        assert out.shape == (1, 3)
        (out * Tensor([[1.0, 2.0, 3.0]])).sum().backward()
        np.testing.assert_allclose(a.grad, [[1.0, 2.0]])
        np.testing.assert_allclose(b.grad, [[3.0]])

    def test_stack_grad(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        out = F.stack([a, b], axis=0)
        assert out.shape == (2, 1)
        (out * Tensor([[2.0], [5.0]])).sum().backward()
        np.testing.assert_allclose(a.grad, [2.0])
        np.testing.assert_allclose(b.grad, [5.0])

    def test_split_reassembles(self, rng):
        data = rng.normal(size=(2, 6))
        x = Tensor(data, requires_grad=True)
        parts = F.split(x, 3, axis=1)
        assert len(parts) == 3
        reassembled = F.concat(parts, axis=1)
        np.testing.assert_allclose(reassembled.data, data)

    def test_split_indivisible_raises(self):
        with pytest.raises(ValueError):
            F.split(Tensor(np.zeros((2, 5))), 3, axis=1)

    def test_split_grad(self):
        x = Tensor([1.0, 2.0, 3.0, 4.0], requires_grad=True)
        first, second = F.split(x, 2)
        (first * 2 + 0 * second.sum()).sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 2.0, 0.0, 0.0])

    def test_where_selects_and_routes_grads(self):
        condition = np.array([True, False, True])
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = Tensor([9.0, 8.0, 7.0], requires_grad=True)
        out = F.where(condition, a, b)
        np.testing.assert_allclose(out.data, [1.0, 8.0, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])

    def test_where_broadcasts(self):
        condition = np.array([[True], [False]])
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        out = F.where(condition, a, b)
        assert out.shape == (2, 3)
        out.sum().backward()
        assert b.grad.shape == (3,)
        np.testing.assert_allclose(b.grad, np.ones(3))


class TestEinsum:
    def test_matches_numpy(self, rng):
        a = Tensor(rng.normal(size=(3, 4)))
        b = Tensor(rng.normal(size=(4, 5)))
        out = F.einsum("ij,jk->ik", a, b)
        np.testing.assert_allclose(out.data, a.data @ b.data, atol=1e-12)

    def test_gradcheck_batched(self, rng):
        a_data = rng.normal(size=(2, 3, 4))
        b_data = rng.normal(size=(4, 5))
        a = Tensor(a_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        F.einsum("bij,jk->bik", a, b).sum().backward()
        expected_a = numerical_gradient(
            lambda: float(np.einsum("bij,jk->bik", a_data, b_data).sum()), a_data)
        expected_b = numerical_gradient(
            lambda: float(np.einsum("bij,jk->bik", a_data, b_data).sum()), b_data)
        np.testing.assert_allclose(a.grad, expected_a, atol=1e-5)
        np.testing.assert_allclose(b.grad, expected_b, atol=1e-5)

    def test_inner_product_subscripts(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        out = F.einsum("ij,ij->", a, b)
        out.backward()
        np.testing.assert_allclose(a.grad, b.data)
        np.testing.assert_allclose(b.grad, a.data)

    def test_rejects_ellipsis(self):
        with pytest.raises(ValueError):
            F.einsum("...i,ij->...j", Tensor(np.zeros((2, 3))),
                     Tensor(np.zeros((3, 4))))

    def test_rejects_repeated_index_within_operand(self):
        with pytest.raises(ValueError):
            F.einsum("ii,ij->ij", Tensor(np.zeros((3, 3))),
                     Tensor(np.zeros((3, 3))))

    def test_rejects_lonely_summed_index(self):
        with pytest.raises(ValueError):
            F.einsum("ij,kl->il", Tensor(np.zeros((2, 3))),
                     Tensor(np.zeros((4, 5))))


class TestDropout:
    def test_identity_at_eval(self, rng):
        x = Tensor(rng.normal(size=(10,)))
        out = F.dropout(x, 0.5, training=False, rng=np.random.default_rng(0))
        assert out is x

    def test_identity_at_p_zero(self, rng):
        x = Tensor(rng.normal(size=(10,)))
        out = F.dropout(x, 0.0, training=True, rng=np.random.default_rng(0))
        assert out is x

    def test_scales_kept_entries(self):
        x = Tensor(np.ones(10000))
        out = F.dropout(x, 0.5, training=True, rng=np.random.default_rng(0))
        kept = out.data[out.data > 0]
        np.testing.assert_allclose(kept, 2.0)           # inverted dropout
        assert 0.4 < (out.data > 0).mean() < 0.6

    def test_grad_masked_like_forward(self):
        x = Tensor(np.ones(100), requires_grad=True)
        out = F.dropout(x, 0.3, training=True, rng=np.random.default_rng(1))
        out.sum().backward()
        np.testing.assert_allclose(x.grad, out.data)


class TestHuber:
    def test_quadratic_region(self):
        x = Tensor([0.5], requires_grad=True)
        out = F.huber(x, delta=1.0)
        assert out.data[0] == pytest.approx(0.125)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [0.5])

    def test_linear_region(self):
        x = Tensor([3.0], requires_grad=True)
        out = F.huber(x, delta=1.0)
        assert out.data[0] == pytest.approx(2.5)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_continuous_at_delta(self):
        eps = 1e-9
        below = F.huber(Tensor([1.0 - eps]), delta=1.0).data[0]
        above = F.huber(Tensor([1.0 + eps]), delta=1.0).data[0]
        assert below == pytest.approx(above, abs=1e-6)


class TestConv:
    def test_conv2d_matches_direct_computation(self, rng):
        x = rng.normal(size=(1, 1, 3, 3))
        w = rng.normal(size=(1, 1, 2, 2))
        out = F.conv2d(Tensor(x), Tensor(w)).data
        expected = np.zeros((1, 1, 2, 2))
        for i in range(2):
            for j in range(2):
                expected[0, 0, i, j] = (x[0, 0, i:i + 2, j:j + 2] * w[0, 0]).sum()
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_conv2d_padding_and_stride(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        w = Tensor(rng.normal(size=(4, 3, 3, 3)))
        out = F.conv2d(x, w, stride=(2, 2), padding=(1, 1))
        assert out.shape == (2, 4, 4, 4)

    def test_conv2d_dilation_shape(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 1, 12)))
        w = Tensor(rng.normal(size=(3, 2, 1, 2)))
        out = F.conv2d(x, w, dilation=(1, 4))
        assert out.shape == (1, 3, 1, 8)

    def test_conv2d_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 3, 4, 4))),
                     Tensor(np.zeros((2, 4, 1, 1))))

    def test_conv2d_bias_grad(self, rng):
        x = Tensor(rng.normal(size=(2, 1, 2, 2)))
        w = Tensor(rng.normal(size=(3, 1, 1, 1)))
        b = Tensor(np.zeros(3), requires_grad=True)
        F.conv2d(x, w, b).sum().backward()
        np.testing.assert_allclose(b.grad, np.full(3, 8.0))  # 2*2*2 positions

    def test_conv1d_equals_conv2d(self, rng):
        x = rng.normal(size=(2, 3, 10))
        w = rng.normal(size=(4, 3, 3))
        out1 = F.conv1d(Tensor(x), Tensor(w), padding=1).data
        out2 = F.conv2d(Tensor(x[:, :, None, :]), Tensor(w[:, :, None, :]),
                        padding=(0, 1)).data[:, :, 0, :]
        np.testing.assert_allclose(out1, out2, atol=1e-12)

    def test_unfold2d_shapes(self, rng):
        x = rng.normal(size=(2, 3, 5, 7))
        cols, out_h, out_w = F.unfold2d(x, (2, 3))
        assert cols.shape == (2, 3 * 2 * 3, out_h * out_w)
        assert (out_h, out_w) == (4, 5)
