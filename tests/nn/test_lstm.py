"""LSTM layers and the model summary utility."""

import numpy as np
import pytest

from repro.nn import LSTM, LSTMCell, Tensor
from repro.nn.summary import parameter_breakdown, summarize


@pytest.fixture
def gen():
    return np.random.default_rng(3)


class TestLSTMCell:
    def test_output_shapes(self, gen):
        cell = LSTMCell(4, 6, rng=gen)
        h, c = cell(Tensor(np.ones((2, 4))),
                    (Tensor(np.zeros((2, 6))), Tensor(np.zeros((2, 6)))))
        assert h.shape == (2, 6)
        assert c.shape == (2, 6)

    def test_forget_bias_initialised_to_one(self, gen):
        cell = LSTMCell(3, 5, rng=gen)
        np.testing.assert_array_equal(cell.bias.data[5:10], 1.0)
        np.testing.assert_array_equal(cell.bias.data[:5], 0.0)

    def test_hidden_bounded_by_tanh(self, gen):
        cell = LSTMCell(3, 4, rng=gen)
        h, c = (Tensor(np.zeros((1, 4))), Tensor(np.zeros((1, 4))))
        for _ in range(20):
            h, c = cell(Tensor(np.full((1, 3), 10.0)), (h, c))
        assert np.all(np.abs(h.data) <= 1.0)

    def test_cell_state_accumulates(self, gen):
        """With saturated input/forget gates, c integrates g over time."""
        cell = LSTMCell(2, 3, rng=gen)
        h = Tensor(np.zeros((1, 3)))
        c = Tensor(np.zeros((1, 3)))
        _, c1 = cell(Tensor(np.ones((1, 2))), (h, c))
        _, c2 = cell(Tensor(np.ones((1, 2))), (h, c1))
        assert not np.allclose(c1.data, c2.data)


class TestLSTM:
    def test_sequence_shapes(self, gen):
        lstm = LSTM(3, 5, num_layers=2, rng=gen)
        outs, (h, c) = lstm(Tensor(np.zeros((4, 7, 3))))
        assert outs.shape == (4, 7, 5)
        assert len(h) == 2 and len(c) == 2

    def test_gradients_flow_through_time(self, gen):
        lstm = LSTM(2, 4, rng=gen)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 6, 2)),
                   requires_grad=True)
        outs, _ = lstm(x)
        outs[:, -1].sum().backward()
        assert np.abs(x.grad[:, 0]).max() > 0

    def test_custom_initial_state(self, gen):
        lstm = LSTM(2, 4, rng=gen)
        x = Tensor(np.zeros((1, 3, 2)))
        custom = ([Tensor(np.ones((1, 4)))], [Tensor(np.ones((1, 4)))])
        out_custom, _ = lstm(x, custom)
        out_default, _ = lstm(x)
        assert not np.allclose(out_custom.data, out_default.data)


class TestSummary:
    def test_breakdown_sums_to_total(self, ci_dataset):
        from repro.models import create_model
        model = create_model("gman", ci_dataset.num_nodes,
                             ci_dataset.adjacency, seed=0)
        breakdown = parameter_breakdown(model)
        assert sum(breakdown.values()) == model.num_parameters()

    def test_stsgcn_heads_dominate(self, ci_dataset):
        """The summary attributes STSGCN's Table III param count to the
        per-horizon heads."""
        from repro.models import create_model
        model = create_model("stsgcn", ci_dataset.num_nodes,
                             ci_dataset.adjacency, seed=0)
        breakdown = parameter_breakdown(model)
        heads_total = sum(count for path, count in breakdown.items()
                          if path.startswith("heads"))
        assert heads_total > 0.5 * model.num_parameters()

    def test_render_contains_total(self, gen):
        from repro.nn import Linear, Sequential
        model = Sequential(Linear(4, 8, rng=gen), Linear(8, 2, rng=gen))
        text = summarize(model)
        assert "TOTAL" in text
        assert f"{model.num_parameters():,}" in text

    def test_max_depth_truncates(self, ci_dataset):
        from repro.models import create_model
        model = create_model("dcrnn", ci_dataset.num_nodes,
                             ci_dataset.adjacency, seed=0)
        shallow = summarize(model, max_depth=1)
        deep = summarize(model)
        assert len(shallow.splitlines()) < len(deep.splitlines())
