"""Tensor autograd: op-by-op correctness against numerical gradients."""

import numpy as np
import pytest

from repro.nn import Tensor, no_grad, is_grad_enabled
from repro.nn.tensor import unbroadcast

from ..conftest import numerical_gradient


def check_unary(op_name, data, tol=1e-6, **kwargs):
    """Analytic vs numerical gradient for a unary tensor method."""
    x = Tensor(data.copy(), requires_grad=True)
    out = getattr(x, op_name)(**kwargs)
    out.sum().backward()

    def value():
        return float(getattr(Tensor(data), op_name)(**kwargs).data.sum())

    expected = numerical_gradient(value, data)
    np.testing.assert_allclose(x.grad, expected, atol=tol, rtol=1e-4)


class TestBasicProperties:
    def test_shape_and_dtype(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.ndim == 2
        assert t.size == 4

    def test_integer_input_promoted_to_float(self):
        t = Tensor([1, 2, 3])
        assert t.dtype.kind == "f"

    def test_item_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor(1.0, requires_grad=True))
        assert "requires_grad" not in repr(Tensor(1.0))

    def test_detach_cuts_graph(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad

    def test_len(self):
        assert len(Tensor([1.0, 2.0, 3.0])) == 3

    def test_rejects_tensor_payload(self):
        with pytest.raises(TypeError):
            Tensor(Tensor([1.0]))

    def test_rejects_string_payload(self):
        with pytest.raises(TypeError):
            Tensor(np.array(["a", "b"]))


class TestNoGrad:
    def test_no_grad_disables_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_after_exception(self):
        try:
            with no_grad():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert is_grad_enabled()


class TestBackwardMechanics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_shape_mismatch(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            x.backward(np.ones(3))

    def test_grad_accumulates_across_backwards(self):
        x = Tensor([2.0], requires_grad=True)
        (x * 3).sum().backward()
        (x * 3).sum().backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_zero_grad(self):
        x = Tensor([2.0], requires_grad=True)
        (x * 3).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_shared_subexpression_accumulates(self):
        # y = x*x uses x twice; dy/dx = 2x
        x = Tensor([3.0], requires_grad=True)
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_diamond_graph(self):
        # z = (x+1) * (x+2): dz/dx = (x+2) + (x+1) = 2x+3
        x = Tensor([1.0], requires_grad=True)
        ((x + 1.0) * (x + 2.0)).sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_deep_chain_does_not_recurse(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):       # would blow the stack if recursive
            y = y + 0.001
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])


class TestArithmetic:
    def test_add_broadcast_grad(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_radd_rsub_rmul_rdiv(self):
        x = Tensor([2.0], requires_grad=True)
        assert (1.0 + x).data[0] == 3.0
        assert (5.0 - x).data[0] == 3.0
        assert (3.0 * x).data[0] == 6.0
        assert (8.0 / x).data[0] == 4.0

    def test_sub_grad(self, rng):
        data = rng.normal(size=(2, 3))
        a = Tensor(data, requires_grad=True)
        b = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        (a - b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, -np.ones((2, 3)))

    def test_div_grad_numerical(self, rng):
        a_data = rng.normal(size=(3,)) + 3.0
        b_data = rng.normal(size=(3,)) + 3.0
        a = Tensor(a_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        (a / b).sum().backward()
        expected_a = numerical_gradient(
            lambda: float((a_data / b_data).sum()), a_data)
        expected_b = numerical_gradient(
            lambda: float((a_data / b_data).sum()), b_data)
        np.testing.assert_allclose(a.grad, expected_a, atol=1e-5)
        np.testing.assert_allclose(b.grad, expected_b, atol=1e-5)

    def test_pow_grad(self):
        x = Tensor([2.0], requires_grad=True)
        (x ** 3).sum().backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_neg(self):
        x = Tensor([1.0, -2.0], requires_grad=True)
        (-x).sum().backward()
        np.testing.assert_allclose(x.grad, [-1.0, -1.0])


class TestMatmul:
    def test_2d(self, rng):
        a_data = rng.normal(size=(3, 4))
        b_data = rng.normal(size=(4, 5))
        a = Tensor(a_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        (a @ b).sum().backward()
        expected_a = numerical_gradient(
            lambda: float((a_data @ b_data).sum()), a_data)
        np.testing.assert_allclose(a.grad, expected_a, atol=1e-5)

    def test_batched_broadcast(self, rng):
        a_data = rng.normal(size=(2, 3, 4))
        b_data = rng.normal(size=(4, 5))
        a = Tensor(a_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 3, 5)
        out.sum().backward()
        expected_b = numerical_gradient(
            lambda: float((a_data @ b_data).sum()), b_data)
        np.testing.assert_allclose(b.grad, expected_b, atol=1e-5)

    def test_matrix_times_vector(self, rng):
        a_data = rng.normal(size=(2, 3, 4))
        v_data = rng.normal(size=(4,))
        a = Tensor(a_data.copy(), requires_grad=True)
        v = Tensor(v_data.copy(), requires_grad=True)
        out = a @ v
        assert out.shape == (2, 3)
        out.sum().backward()
        expected_v = numerical_gradient(
            lambda: float((a_data @ v_data).sum()), v_data)
        np.testing.assert_allclose(v.grad, expected_v, atol=1e-5)
        expected_a = numerical_gradient(
            lambda: float((a_data @ v_data).sum()), a_data)
        np.testing.assert_allclose(a.grad, expected_a, atol=1e-5)

    def test_vector_times_matrix(self, rng):
        v_data = rng.normal(size=(4,))
        b_data = rng.normal(size=(4, 5))
        v = Tensor(v_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        (v @ b).sum().backward()
        expected_v = numerical_gradient(
            lambda: float((v_data @ b_data).sum()), v_data)
        np.testing.assert_allclose(v.grad, expected_v, atol=1e-5)

    def test_vector_vector(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a @ b).backward()
        np.testing.assert_allclose(a.grad, [3.0, 4.0])
        np.testing.assert_allclose(b.grad, [1.0, 2.0])


class TestElementwise:
    @pytest.mark.parametrize("op", ["exp", "tanh", "sigmoid", "relu", "abs"])
    def test_gradcheck(self, op, rng):
        data = rng.normal(size=(4, 3)) * 0.8 + 0.3
        check_unary(op, data)

    def test_log_sqrt_on_positive(self, rng):
        data = np.abs(rng.normal(size=(5,))) + 0.5
        check_unary("log", data)
        check_unary("sqrt", data)

    def test_leaky_relu(self, rng):
        data = rng.normal(size=(6,))
        data = data[np.abs(data) > 1e-3]      # keep away from the kink
        check_unary("leaky_relu", data, negative_slope=0.2)

    def test_clip_grad(self):
        x = Tensor([-2.0, 0.5, 3.0], requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_maximum(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([3.0, 2.0], requires_grad=True)
        out = a.maximum(b)
        np.testing.assert_allclose(out.data, [3.0, 5.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 0.0])

    def test_sigmoid_extreme_values_stable(self):
        x = Tensor([-500.0, 500.0])
        out = x.sigmoid()
        assert np.all(np.isfinite(out.data))
        np.testing.assert_allclose(out.data, [0.0, 1.0], atol=1e-12)


class TestReductions:
    def test_sum_axis_keepdims(self, rng):
        data = rng.normal(size=(2, 3, 4))
        x = Tensor(data, requires_grad=True)
        out = x.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1, 4)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(data))

    def test_sum_multiple_axes(self, rng):
        data = rng.normal(size=(2, 3, 4))
        x = Tensor(data, requires_grad=True)
        out = x.sum(axis=(0, 2))
        assert out.shape == (3,)
        (out * Tensor([1.0, 2.0, 3.0])).sum().backward()
        expected = np.broadcast_to(np.array([1., 2., 3.])[None, :, None],
                                   (2, 3, 4))
        np.testing.assert_allclose(x.grad, expected)

    def test_mean_matches_sum(self, rng):
        data = rng.normal(size=(4, 5))
        x = Tensor(data, requires_grad=True)
        x.mean(axis=0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((4, 5), 0.25))

    def test_max_grad_flows_to_argmax(self):
        x = Tensor([[1.0, 5.0, 2.0]], requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 1.0, 0.0]])

    def test_max_ties_split_gradient(self):
        x = Tensor([3.0, 3.0], requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.5])

    def test_min(self):
        x = Tensor([4.0, 1.0, 2.0], requires_grad=True)
        out = x.min()
        assert out.item() == 1.0
        out.backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_global_max_no_axis(self, rng):
        data = rng.normal(size=(3, 3))
        x = Tensor(data, requires_grad=True)
        out = x.max()
        assert out.item() == data.max()


class TestShapeOps:
    def test_reshape_roundtrip_grad(self, rng):
        data = rng.normal(size=(2, 6))
        x = Tensor(data, requires_grad=True)
        (x.reshape(3, 4) * 2).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 6), 2.0))

    def test_transpose_grad(self, rng):
        data = rng.normal(size=(2, 3, 4))
        x = Tensor(data, requires_grad=True)
        out = x.transpose(2, 0, 1)
        assert out.shape == (4, 2, 3)
        scale = np.arange(24).reshape(4, 2, 3).astype(float)
        (out * Tensor(scale)).sum().backward()
        np.testing.assert_allclose(x.grad, scale.transpose(1, 2, 0))

    def test_default_transpose_reverses(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)))
        assert x.T.shape == (4, 3, 2)

    def test_swapaxes(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)))
        assert x.swapaxes(1, 2).shape == (2, 4, 3)

    def test_getitem_grad_scatter(self):
        x = Tensor([1.0, 2.0, 3.0, 4.0], requires_grad=True)
        x[1:3].sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 1.0, 0.0])

    def test_getitem_repeated_index_accumulates(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        x[np.array([0, 0, 1])].sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 1.0])

    def test_expand_squeeze(self, rng):
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        out = x.expand_dims(1)
        assert out.shape == (2, 1, 3)
        back = out.squeeze(1)
        assert back.shape == (2, 3)
        back.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_pad_grad(self):
        x = Tensor([[1.0, 2.0]], requires_grad=True)
        out = x.pad(((0, 0), (1, 2)))
        assert out.shape == (1, 5)
        np.testing.assert_allclose(out.data, [[0, 1, 2, 0, 0]])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [[1.0, 1.0]])

    def test_pad_scalar_width(self):
        x = Tensor([[1.0, 2.0]], requires_grad=True)
        out = x.pad(1)
        assert out.shape == (3, 4)
        np.testing.assert_allclose(
            out.data, np.pad(np.array([[1.0, 2.0]]), 1))
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [[1.0, 1.0]])

    def test_pad_single_pair_broadcasts(self):
        x = Tensor([[1.0, 2.0]], requires_grad=True)
        out = x.pad((1, 2))
        assert out.shape == (4, 5)
        np.testing.assert_allclose(
            out.data, np.pad(np.array([[1.0, 2.0]]), (1, 2)))
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [[1.0, 1.0]])

    def test_pad_nested_single_pair_broadcasts(self):
        x = Tensor(np.arange(6.0).reshape(2, 3))
        np.testing.assert_allclose(x.pad(((1, 2),)).data,
                                   np.pad(x.data, ((1, 2),)))

    def test_pad_rejects_bad_widths(self):
        x = Tensor(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            x.pad(((1, 2), (3, 4), (5, 6)))   # wrong number of axes
        with pytest.raises(ValueError):
            x.pad(((1, 2, 3), (1, 2, 3)))     # triples, not pairs
        with pytest.raises((TypeError, ValueError)):
            x.pad("wide")

    def test_repeat_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        out = x.expand_dims(0).repeat(3, axis=0)
        assert out.shape == (3, 2)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [3.0, 3.0])


class TestComparisons:
    def test_comparisons_return_bool_arrays(self):
        x = Tensor([1.0, 2.0, 3.0])
        assert (x > 1.5).tolist() == [False, True, True]
        assert (x < 2.0).tolist() == [True, False, False]
        assert (x >= 2.0).tolist() == [False, True, True]
        assert (x <= 1.0).tolist() == [True, False, False]

    def test_compare_against_tensor(self):
        a = Tensor([1.0, 3.0])
        b = Tensor([2.0, 2.0])
        assert (a > b).tolist() == [False, True]


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)) is g

    def test_sum_leading_axis(self):
        g = np.ones((5, 2, 3))
        assert unbroadcast(g, (2, 3)).shape == (2, 3)
        np.testing.assert_allclose(unbroadcast(g, (2, 3)), np.full((2, 3), 5.0))

    def test_sum_size_one_axis(self):
        g = np.ones((2, 3))
        np.testing.assert_allclose(unbroadcast(g, (2, 1)), np.full((2, 1), 3.0))

    def test_combined(self):
        g = np.ones((4, 2, 3))
        np.testing.assert_allclose(unbroadcast(g, (1, 3)), np.full((1, 3), 8.0))
