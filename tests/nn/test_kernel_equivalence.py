"""Fast-kernel vs. reference-engine gradient equivalence.

Every kernel this repo rewrote for speed — the conv2d col2im scatter, the
cached im2col indices, the BLAS conv contractions, the basic-index
``__getitem__`` backward, and the shared-buffer ``unbind``/``split``
views — must produce gradients identical (≤1e-8) to the original
``np.add.at`` engine, which stays available behind
:func:`repro.nn.kernels.use_reference_kernels`.  The suite sweeps strided,
dilated, padded, and tie (overlapping-tap) geometries, plus the bincount
fallback for many-tap kernels.
"""

import numpy as np
import pytest

import repro.nn.tensor as tensor_module
from repro.nn import Tensor, functional as F, kernels as K
from repro.nn.gradcheck import check_gradients

TOL = 1e-8

#: (input shape, weight shape, conv kwargs) — every geometry class the
#: models exercise, including ties from overlapping taps (stride < kernel).
CONV_GEOMETRIES = [
    pytest.param((2, 3, 5, 12), (4, 3, 1, 3), {}, id="temporal-1xk"),
    pytest.param((2, 3, 9, 11), (4, 3, 3, 3), dict(stride=(2, 2)),
                 id="strided"),
    pytest.param((2, 3, 9, 11), (4, 3, 3, 3), dict(dilation=(2, 2)),
                 id="dilated"),
    pytest.param((2, 3, 9, 11), (4, 3, 3, 3), dict(padding=(2, 1)),
                 id="padded"),
    pytest.param((2, 3, 10, 12), (4, 3, 3, 3),
                 dict(stride=(2, 1), padding=(1, 2), dilation=(1, 2)),
                 id="strided-dilated-padded"),
    pytest.param((2, 3, 6, 6), (4, 3, 5, 5), dict(padding=(4, 4)),
                 id="heavy-ties"),
]


def _conv_forward_backward(x, w, b, reference, **kwargs):
    """One conv2d forward+backward; returns (out, gx, gw, gb) arrays."""
    xt = Tensor(x, requires_grad=True)
    wt = Tensor(w, requires_grad=True)
    bt = Tensor(b, requires_grad=True)
    if reference:
        with K.use_reference_kernels():
            out = F.conv2d(xt, wt, bt, **kwargs)
            out.backward(np.ones_like(out.data))
    else:
        out = F.conv2d(xt, wt, bt, **kwargs)
        out.backward(np.ones_like(out.data))
    return out.data, xt.grad, wt.grad, bt.grad


class TestConvEquivalence:
    @pytest.mark.parametrize("x_shape, w_shape, kwargs", CONV_GEOMETRIES)
    def test_fast_matches_reference(self, rng, x_shape, w_shape, kwargs):
        x = rng.normal(size=x_shape)
        w = rng.normal(size=w_shape)
        b = rng.normal(size=(w_shape[0],))
        fast = _conv_forward_backward(x, w, b, reference=False, **kwargs)
        ref = _conv_forward_backward(x, w, b, reference=True, **kwargs)
        for name, a, r in zip(("out", "gx", "gw", "gb"), fast, ref):
            assert np.abs(a - r).max() <= TOL, name

    @pytest.mark.parametrize("x_shape, w_shape, kwargs", CONV_GEOMETRIES)
    def test_gradcheck(self, rng, x_shape, w_shape, kwargs):
        assert check_gradients(
            lambda x, w: F.conv2d(x, w, **kwargs),
            [rng.normal(size=x_shape), rng.normal(size=w_shape)])


class TestCol2imEquivalence:
    @pytest.mark.parametrize("shape, kernel, stride, dilation", [
        ((2, 3, 1, 12), (1, 3), (1, 1), (1, 1)),      # temporal fast path
        ((2, 3, 9, 11), (3, 3), (1, 1), (1, 1)),      # overlapping ties
        ((2, 3, 9, 11), (3, 3), (2, 2), (1, 1)),      # strided
        ((2, 3, 12, 12), (3, 3), (1, 1), (2, 2)),     # dilated
    ], ids=["temporal", "ties", "strided", "dilated"])
    def test_matches_reference(self, rng, shape, kernel, stride, dilation):
        rows, cols, out_h, out_w = K.col_indices(shape[2], shape[3], kernel,
                                                 stride, dilation)
        g_cols = rng.normal(size=(shape[0], shape[1], kernel[0] * kernel[1],
                                  out_h * out_w))
        fast = K.col2im(g_cols, shape, kernel, stride, dilation)
        ref = K.col2im_reference(g_cols, shape, kernel, stride, dilation)
        assert np.abs(fast - ref).max() <= TOL

    def test_bincount_path_matches_reference(self, rng, monkeypatch):
        """Kernels with more taps than the threshold take the flat
        bincount scatter; force it and compare."""
        monkeypatch.setattr(K, "_BINCOUNT_TAP_THRESHOLD", 3)
        shape, kernel = (2, 2, 8, 8), (3, 3)
        rows, cols, out_h, out_w = K.col_indices(8, 8, kernel, (1, 1), (1, 1))
        g_cols = rng.normal(size=(2, 2, 9, out_h * out_w))
        fast = K.col2im(g_cols, shape, kernel)
        ref = K.col2im_reference(g_cols, shape, kernel)
        assert np.abs(fast - ref).max() <= TOL

    def test_index_cache_hits(self):
        K.clear_col_indices_cache()
        K.col_indices(9, 11, (3, 3), (1, 1), (1, 1))
        K.col_indices(9, 11, (3, 3), (1, 1), (1, 1))
        info = K.col_indices_cache_info()
        assert info.hits >= 1 and info.misses == 1

    def test_reference_mode_bypasses_cache(self):
        K.clear_col_indices_cache()
        with K.use_reference_kernels():
            K.col_indices(7, 7, (3, 3), (1, 1), (1, 1))
        assert K.col_indices_cache_info().misses == 0


class TestGetitemEquivalence:
    @pytest.mark.parametrize("index", [
        1,
        slice(1, 3),
        (slice(None), 2),
        (Ellipsis, slice(0, 2)),
        (1, None, slice(None, None, 2)),
        (slice(None, None, -1), slice(2, None)),
    ], ids=["int", "slice", "axis1-int", "ellipsis", "newaxis", "negstep"])
    def test_basic_index_matches_reference(self, rng, index):
        data = rng.normal(size=(4, 5))
        grads = {}
        for reference in (False, True):
            x = Tensor(data, requires_grad=True)
            if reference:
                with K.use_reference_kernels():
                    (x[index] * 2.0).sum().backward()
            else:
                (x[index] * 2.0).sum().backward()
            grads[reference] = x.grad
        assert np.abs(grads[False] - grads[True]).max() <= TOL

    def test_advanced_index_with_ties_still_accumulates(self):
        x = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        x[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 0.0, 1.0])

    def test_basic_index_skips_scatter_add(self, rng, monkeypatch):
        calls = []
        original = tensor_module._scatter_add
        monkeypatch.setattr(tensor_module, "_scatter_add",
                            lambda *a: calls.append(a) or original(*a))
        x = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        x[1:3].sum().backward()
        assert calls == []
        x2 = Tensor(rng.normal(size=(4,)), requires_grad=True)
        x2[np.array([0, 0, 1])].sum().backward()
        assert len(calls) == 1


class TestViewOpsEquivalence:
    @pytest.mark.parametrize("axis", [0, 1, 2, -1])
    def test_unbind_matches_reference(self, rng, axis):
        data = rng.normal(size=(3, 4, 5))
        grads = {}
        for reference in (False, True):
            x = Tensor(data, requires_grad=True)

            def body():
                total = None
                for i, view in enumerate(F.unbind(x, axis=axis)):
                    term = (view * float(i + 1)).sum()
                    total = term if total is None else total + term
                total.backward()

            if reference:
                with K.use_reference_kernels():
                    body()
            else:
                body()
            grads[reference] = x.grad
        assert np.abs(grads[False] - grads[True]).max() <= TOL

    def test_unbind_gradcheck(self, rng):
        def op(x):
            steps = F.unbind(x, axis=1)
            total = steps[0] * steps[0]
            for step in steps[1:]:
                total = total + step.tanh()
            return total

        assert check_gradients(op, [rng.normal(size=(2, 4, 3))])

    def test_split_matches_reference(self, rng):
        data = rng.normal(size=(2, 6, 5))
        grads = {}
        for reference in (False, True):
            x = Tensor(data, requires_grad=True)

            def body():
                value, gate = F.split(x, 2, axis=1)
                (value * gate.sigmoid()).sum().backward()

            if reference:
                with K.use_reference_kernels():
                    body()
            else:
                body()
            grads[reference] = x.grad
        assert np.abs(grads[False] - grads[True]).max() <= TOL

    def test_split_backward_never_calls_scatter_add(self, rng, monkeypatch):
        """Regression for the slice fast path: a split backward must not
        fall back to the ``np.add.at`` scatter."""
        calls = []
        original = tensor_module._scatter_add
        monkeypatch.setattr(tensor_module, "_scatter_add",
                            lambda *a: calls.append(a) or original(*a))
        x = Tensor(rng.normal(size=(4, 6, 5)), requires_grad=True)
        parts = F.split(x, 3, axis=1)
        total = None
        for part in parts:
            term = (part * part).sum()
            total = term if total is None else total + term
        total.backward()
        assert calls == []
        np.testing.assert_allclose(x.grad, 2.0 * x.data)

    def test_split_single_grad_pass_into_source(self, rng):
        """All chunk gradients land in one buffer handed to the source
        once (the anchor pattern), not via repeated full-size adds."""
        x = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        a, b = F.split(x, 2, axis=1)
        (a.sum() + (2.0 * b).sum()).backward()
        expected = np.concatenate(
            [np.ones((2, 2)), 2.0 * np.ones((2, 2))], axis=1)
        np.testing.assert_allclose(x.grad, expected)
