"""Op census profiler."""

import numpy as np
import pytest

from repro.nn import Linear, Tensor, no_grad
from repro.nn.profiler import profile


class TestProfile:
    def test_counts_ops(self):
        with profile() as report:
            x = Tensor(np.ones((4, 4)), requires_grad=True)
            y = (x * 2 + 1).relu()
            y.sum().backward()
        assert report.ops["mul"].count == 1
        assert report.ops["add"].count == 1
        assert report.ops["relu"].count == 1
        assert report.ops["sum"].count == 1
        assert report.total_nodes == 4

    def test_element_accounting(self):
        with profile() as report:
            x = Tensor(np.ones((3, 5)))
            _ = x * 2
        assert report.ops["mul"].elements == 15
        assert report.total_elements == 15

    def test_wall_time_positive(self):
        with profile() as report:
            _ = Tensor(np.ones(10)) + 1
        assert report.wall_seconds > 0

    def test_restores_make_after_block(self):
        original = Tensor.__dict__["_make"].__func__
        with profile():
            pass
        assert Tensor.__dict__["_make"].__func__ is original

    def test_restores_after_exception(self):
        original = Tensor.__dict__["_make"].__func__
        with pytest.raises(RuntimeError):
            with profile():
                raise RuntimeError("boom")
        assert Tensor.__dict__["_make"].__func__ is original

    def test_works_under_no_grad(self):
        with profile() as report:
            with no_grad():
                _ = Tensor(np.ones(3)).exp()
        assert report.ops["exp"].count == 1

    def test_nested_model_profile(self, rng):
        layer = Linear(8, 4, rng=np.random.default_rng(0))
        with profile() as report:
            layer(Tensor(np.ones((2, 8)))).sum().backward()
        # matmul + transpose + add(bias) + sum at minimum
        assert report.total_nodes >= 4
        assert "matmul" in report.ops

    def test_render_and_top(self):
        with profile() as report:
            x = Tensor(np.ones((100,)))
            _ = x * 2
            _ = x + 1
            _ = x + 2
        top = report.top(1, by="count")
        assert top[0][0] == "add"
        text = report.render()
        assert "add" in text and "mul" in text
        assert "wall time" in text
        with pytest.raises(ValueError):
            report.top(by="speed")

    def test_architecture_contrast(self, ci_dataset):
        """Sequential RNN creates far more graph nodes than a TCN."""
        from repro.models import create_model
        x = Tensor(ci_dataset.supervised.train.x[:2])
        dcrnn = create_model("dcrnn", ci_dataset.num_nodes,
                             ci_dataset.adjacency, seed=0)
        gwnet = create_model("graph-wavenet", ci_dataset.num_nodes,
                             ci_dataset.adjacency, seed=0)
        with no_grad():
            dcrnn.eval(), gwnet.eval()
            with profile() as rnn_report:
                dcrnn(x)
            with profile() as tcn_report:
                gwnet(x)
        assert rnn_report.total_nodes > 2 * tcn_report.total_nodes
