"""Autograd graph hygiene: no_grad, detach, and tape containment."""

import numpy as np
import pytest

from repro.nn import Linear, Tensor, no_grad


class TestGraphContainment:
    def test_no_grad_ops_keep_no_parents(self):
        x = Tensor(np.ones(4), requires_grad=True)
        with no_grad():
            y = (x * 2 + 1).relu()
        assert y._parents == ()
        assert y._backward is None

    def test_constant_inputs_keep_no_parents(self):
        a = Tensor(np.ones(3))
        b = Tensor(np.ones(3))
        out = a * b + a
        assert not out.requires_grad
        assert out._parents == ()

    def test_graph_only_tracks_grad_paths(self):
        x = Tensor(np.ones(3), requires_grad=True)
        c = Tensor(np.ones(3))
        out = x * c
        assert out.requires_grad
        assert len(out._parents) == 2

    def test_backward_does_not_touch_non_grad_leaves(self):
        x = Tensor(np.ones(3), requires_grad=True)
        c = Tensor(np.full(3, 2.0))
        (x * c).sum().backward()
        assert c.grad is None
        np.testing.assert_allclose(x.grad, [2.0, 2.0, 2.0])

    def test_eval_inference_accumulates_no_grads(self, rng):
        layer = Linear(4, 4, rng=np.random.default_rng(0))
        with no_grad():
            layer(Tensor(rng.normal(size=(2, 4))))
        assert layer.weight.grad is None
        assert layer.bias.grad is None

    def test_grad_flag_off_inside_training_loss_context(self, ci_dataset):
        """predict() must never leave grads on model parameters."""
        from repro.core import predict
        from repro.models import create_model
        model = create_model("stg2seq", ci_dataset.num_nodes,
                             ci_dataset.adjacency, seed=0)
        predict(model, ci_dataset.supervised.val,
                ci_dataset.supervised.scaler)
        assert all(p.grad is None for p in model.parameters())


class TestRepeatedBackward:
    def test_two_backwards_through_same_graph_accumulate(self):
        x = Tensor(np.ones(2), requires_grad=True)
        out = (x * 3).sum()
        out.backward()
        out.backward()
        np.testing.assert_allclose(x.grad, [6.0, 6.0])

    def test_zero_grad_between_steps(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * 3).sum().backward()
        x.zero_grad()
        (x * 5).sum().backward()
        np.testing.assert_allclose(x.grad, [5.0, 5.0])


class TestDtypePromotion:
    def test_integer_payload_promoted(self):
        t = Tensor(np.arange(4))
        assert t.dtype.kind == "f"

    def test_bool_payload_promoted(self):
        t = Tensor(np.array([True, False]))
        assert t.dtype.kind == "f"
        np.testing.assert_array_equal(t.data, [1.0, 0.0])

    def test_grad_matches_data_dtype(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        (x * 2).sum().backward()
        assert x.grad.dtype == np.float32
