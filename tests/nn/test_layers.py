"""Layer library: shapes, gradients, and layer-specific semantics."""

import numpy as np
import pytest

from repro.nn import (BatchNorm, Conv1d, Conv2d, Dropout, Embedding, GRU,
                      GRUCell, GraphAttention, LayerNorm, Linear,
                      MultiHeadAttention, Tensor)
from repro.nn.layers.attention import scaled_dot_product_attention


@pytest.fixture
def gen():
    return np.random.default_rng(7)


class TestLinear:
    def test_forward_matches_manual(self, gen):
        layer = Linear(3, 2, rng=gen)
        x = np.random.default_rng(0).normal(size=(4, 3))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected, atol=1e-12)

    def test_no_bias(self, gen):
        layer = Linear(3, 2, bias=False, rng=gen)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_arbitrary_leading_dims(self, gen):
        layer = Linear(5, 3, rng=gen)
        out = layer(Tensor(np.zeros((2, 7, 4, 5))))
        assert out.shape == (2, 7, 4, 3)

    def test_gradients_flow(self, gen):
        layer = Linear(3, 2, rng=gen)
        layer(Tensor(np.ones((4, 3)))).sum().backward()
        assert layer.weight.grad is not None
        np.testing.assert_allclose(layer.bias.grad, [4.0, 4.0])


class TestConvLayers:
    def test_conv2d_shape(self, gen):
        layer = Conv2d(3, 8, (1, 2), dilation=(1, 2), rng=gen)
        out = layer(Tensor(np.zeros((2, 3, 5, 12))))
        assert out.shape == (2, 8, 5, 10)

    def test_conv1d_shape(self, gen):
        layer = Conv1d(2, 4, 3, padding=1, rng=gen)
        out = layer(Tensor(np.zeros((2, 2, 10))))
        assert out.shape == (2, 4, 10)

    def test_conv_params_registered(self, gen):
        layer = Conv2d(3, 8, (2, 2), rng=gen)
        assert layer.num_parameters() == 8 * 3 * 2 * 2 + 8

    def test_conv_no_bias(self, gen):
        layer = Conv1d(1, 1, 1, bias=False, rng=gen)
        assert layer.bias is None

    def test_repr(self, gen):
        assert "Conv2d" in repr(Conv2d(1, 2, (1, 3), rng=gen))
        assert "Conv1d" in repr(Conv1d(1, 2, 3, rng=gen))


class TestGRU:
    def test_cell_output_shape_and_range(self, gen):
        cell = GRUCell(3, 5, rng=gen)
        h = cell(Tensor(np.ones((2, 3))), Tensor(np.zeros((2, 5))))
        assert h.shape == (2, 5)
        assert np.all(np.abs(h.data) < 1.0)       # convex combo of 0 and tanh

    def test_gru_sequence_shapes(self, gen):
        gru = GRU(3, 6, num_layers=2, rng=gen)
        outs, hidden = gru(Tensor(np.zeros((4, 7, 3))))
        assert outs.shape == (4, 7, 6)
        assert len(hidden) == 2
        assert hidden[0].shape == (4, 6)

    def test_gru_last_output_equals_last_hidden(self, gen):
        gru = GRU(2, 4, rng=gen)
        x = Tensor(np.random.default_rng(1).normal(size=(3, 5, 2)))
        outs, hidden = gru(x)
        np.testing.assert_allclose(outs.data[:, -1], hidden[-1].data)

    def test_gru_gradients_flow_through_time(self, gen):
        gru = GRU(2, 4, rng=gen)
        x = Tensor(np.random.default_rng(1).normal(size=(2, 6, 2)),
                   requires_grad=True)
        outs, _ = gru(x)
        outs[:, -1].sum().backward()
        assert x.grad is not None
        # the first time step influences the last output
        assert np.abs(x.grad[:, 0]).max() > 0

    def test_initial_state_used(self, gen):
        gru = GRU(2, 4, rng=gen)
        x = Tensor(np.zeros((1, 3, 2)))
        h0 = [Tensor(np.ones((1, 4)))]
        out_custom, _ = gru(x, h0)
        out_default, _ = gru(x)
        assert not np.allclose(out_custom.data, out_default.data)


class TestAttention:
    def test_sdpa_uniform_when_keys_identical(self, gen):
        q = Tensor(np.random.default_rng(0).normal(size=(1, 2, 4)))
        k = Tensor(np.zeros((1, 3, 4)))
        v = Tensor(np.arange(12, dtype=float).reshape(1, 3, 4))
        out = scaled_dot_product_attention(q, k, v)
        expected = v.data.mean(axis=1, keepdims=True).repeat(2, axis=1)
        np.testing.assert_allclose(out.data, expected, atol=1e-10)

    def test_sdpa_mask_excludes_positions(self, gen):
        q = Tensor(np.random.default_rng(0).normal(size=(1, 1, 4)))
        k = Tensor(np.random.default_rng(1).normal(size=(1, 3, 4)))
        v = Tensor(np.eye(3)[None, :, :3].astype(float))
        mask = np.array([[[True, False, True]]])
        out = scaled_dot_product_attention(q, k, v, mask=mask)
        assert out.data[0, 0, 1] == pytest.approx(0.0, abs=1e-6)

    def test_mha_shape(self, gen):
        mha = MultiHeadAttention(8, 2, rng=gen)
        q = Tensor(np.zeros((3, 5, 8)))
        assert mha(q, q, q).shape == (3, 5, 8)

    def test_mha_cross_attention_lengths(self, gen):
        mha = MultiHeadAttention(8, 4, rng=gen)
        q = Tensor(np.zeros((2, 7, 8)))
        kv = Tensor(np.zeros((2, 3, 8)))
        assert mha(q, kv, kv).shape == (2, 7, 8)

    def test_mha_rejects_indivisible_heads(self, gen):
        with pytest.raises(ValueError):
            MultiHeadAttention(7, 2, rng=gen)

    def test_mha_grads(self, gen):
        mha = MultiHeadAttention(4, 2, rng=gen)
        q = Tensor(np.random.default_rng(0).normal(size=(2, 3, 4)),
                   requires_grad=True)
        mha(q, q, q).sum().backward()
        assert q.grad is not None
        assert all(p.grad is not None for p in mha.parameters())

    def test_graph_attention_respects_mask(self, gen):
        # Two disconnected components: features must not mix across them.
        adjacency = np.array([[0, 1, 0, 0],
                              [1, 0, 0, 0],
                              [0, 0, 0, 1],
                              [0, 0, 1, 0]], dtype=float)
        gat = GraphAttention(3, 3, adjacency, num_heads=1, rng=gen)
        x = np.zeros((1, 4, 3))
        x[0, 0] = 100.0                       # perturb node 0
        base = gat(Tensor(np.zeros((1, 4, 3)))).data
        pert = gat(Tensor(x)).data
        # nodes 2,3 (other component) unchanged
        np.testing.assert_allclose(pert[0, 2:], base[0, 2:], atol=1e-8)
        # node 1 (neighbour of 0) changed
        assert np.abs(pert[0, 1] - base[0, 1]).max() > 1e-3

    def test_graph_attention_shape(self, gen, small_adjacency):
        gat = GraphAttention(4, 6, small_adjacency, num_heads=2, rng=gen)
        out = gat(Tensor(np.zeros((2, small_adjacency.shape[0], 4))))
        assert out.shape == (2, small_adjacency.shape[0], 6)


class TestNorm:
    def test_layernorm_normalises(self, gen):
        norm = LayerNorm(8)
        x = Tensor(np.random.default_rng(0).normal(2.0, 3.0, size=(4, 8)))
        out = norm(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_layernorm_multi_axis(self, gen):
        norm = LayerNorm((3, 4))
        out = norm(Tensor(np.random.default_rng(0).normal(size=(2, 3, 4)))).data
        np.testing.assert_allclose(out.reshape(2, -1).mean(axis=1), 0.0,
                                   atol=1e-7)

    def test_layernorm_affine_params(self):
        norm = LayerNorm(4)
        norm.gamma.data[...] = 2.0
        norm.beta.data[...] = 1.0
        out = norm(Tensor(np.random.default_rng(0).normal(size=(3, 4)))).data
        np.testing.assert_allclose(out.mean(axis=-1), 1.0, atol=1e-6)

    def test_batchnorm_train_normalises_batch(self):
        bn = BatchNorm(3)
        x = Tensor(np.random.default_rng(0).normal(5.0, 2.0, size=(16, 3, 4, 4)))
        out = bn(x).data
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)

    def test_batchnorm_eval_uses_running_stats(self):
        bn = BatchNorm(2, momentum=1.0)
        x = np.random.default_rng(0).normal(3.0, 2.0, size=(32, 2, 2, 2))
        bn(Tensor(x))                          # populate running stats
        bn.eval()
        out = bn(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-2)

    def test_batchnorm_updates_running_mean(self):
        bn = BatchNorm(1, momentum=0.5)
        bn(Tensor(np.full((4, 1, 1, 1), 10.0)))
        assert bn.running_mean[0] == pytest.approx(5.0)


class TestEmbedding:
    def test_lookup(self, gen):
        emb = Embedding(10, 4, rng=gen)
        out = emb(np.array([1, 3, 1]))
        assert out.shape == (3, 4)
        np.testing.assert_array_equal(out.data[0], out.data[2])

    def test_out_of_range(self, gen):
        emb = Embedding(5, 2, rng=gen)
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_scatter(self, gen):
        emb = Embedding(4, 2, rng=gen)
        emb(np.array([0, 0, 2])).sum().backward()
        np.testing.assert_allclose(emb.weight.grad[0], [2.0, 2.0])
        np.testing.assert_allclose(emb.weight.grad[1], [0.0, 0.0])
        np.testing.assert_allclose(emb.weight.grad[2], [1.0, 1.0])

    def test_batched_indices(self, gen):
        emb = Embedding(10, 3, rng=gen)
        assert emb(np.zeros((2, 5), dtype=int)).shape == (2, 5, 3)


class TestDropoutLayer:
    def test_eval_is_identity(self, gen):
        layer = Dropout(0.9, rng=gen)
        layer.eval()
        x = Tensor(np.ones(100))
        np.testing.assert_array_equal(layer(x).data, x.data)

    def test_train_drops(self, gen):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones(1000))).data
        assert (out == 0).sum() > 300

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)
