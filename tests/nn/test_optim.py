"""Optimizers, schedulers, and gradient clipping."""

import numpy as np
import pytest

from repro.nn import Parameter, Tensor
from repro.nn.optim import (SGD, Adam, AdamW, CosineAnnealingLR,
                            ExponentialLR, StepLR, clip_grad_norm)


def quadratic_loss(param: Parameter) -> Tensor:
    """Convex loss with minimum at 3."""
    diff = param - Tensor(np.full(param.shape, 3.0))
    return (diff * diff).sum()


def train(optimizer_cls, steps=200, **kwargs) -> Parameter:
    param = Parameter(np.zeros(4))
    optimizer = optimizer_cls([param], **kwargs)
    for _ in range(steps):
        optimizer.zero_grad()
        quadratic_loss(param).backward()
        optimizer.step()
    return param


class TestSGD:
    def test_converges_on_quadratic(self):
        param = train(SGD, lr=0.1)
        np.testing.assert_allclose(param.data, 3.0, atol=1e-4)

    def test_momentum_accelerates(self):
        plain = train(SGD, steps=10, lr=0.01)
        momentum = train(SGD, steps=10, lr=0.01, momentum=0.9)
        loss_plain = float(quadratic_loss(plain).data)
        loss_momentum = float(quadratic_loss(momentum).data)
        assert loss_momentum < loss_plain

    def test_weight_decay_pulls_toward_zero(self):
        param = train(SGD, steps=500, lr=0.05, weight_decay=1.0)
        assert np.all(param.data < 3.0)
        assert np.all(param.data > 0.0)

    def test_skips_params_without_grad(self):
        a = Parameter(np.zeros(2))
        b = Parameter(np.ones(2))
        optimizer = SGD([a, b], lr=0.1)
        (a * 2).sum().backward()
        optimizer.step()
        np.testing.assert_array_equal(b.data, np.ones(2))
        assert not np.allclose(a.data, 0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        param = train(Adam, steps=400, lr=0.05)
        np.testing.assert_allclose(param.data, 3.0, atol=1e-3)

    def test_first_step_size_equals_lr(self):
        # With bias correction, |Δ| of the very first step ≈ lr.
        param = Parameter(np.zeros(1))
        optimizer = Adam([param], lr=0.1)
        (param * 5.0).sum().backward()
        optimizer.step()
        assert abs(param.data[0]) == pytest.approx(0.1, rel=1e-5)

    def test_adamw_decay_is_decoupled(self):
        # With zero gradient, AdamW still shrinks weights; Adam does not.
        param_adamw = Parameter(np.ones(1))
        param_adam = Parameter(np.ones(1))
        adamw = AdamW([param_adamw], lr=0.1, weight_decay=0.5)
        adam = Adam([param_adam], lr=0.1, weight_decay=0.5)
        param_adamw.grad = np.zeros(1)
        param_adam.grad = np.zeros(1)
        adamw.step()
        adam.step()
        assert param_adamw.data[0] < 1.0
        # Adam folds decay into the gradient and normalises by sqrt(v): the
        # step direction is the same but magnitudes differ.
        assert param_adam.data[0] != param_adamw.data[0]

    def test_adamw_restores_decay_attribute(self):
        param = Parameter(np.ones(1))
        optimizer = AdamW([param], lr=0.1, weight_decay=0.3)
        param.grad = np.ones(1)
        optimizer.step()
        assert optimizer.weight_decay == 0.3


class TestOptimizerValidation:
    def test_empty_parameters_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_raises(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.0)


class TestClipGradNorm:
    def test_clips_to_max_norm(self):
        param = Parameter(np.zeros(4))
        param.grad = np.full(4, 3.0)            # norm = 6
        returned = clip_grad_norm([param], max_norm=2.0)
        assert returned == pytest.approx(6.0)
        assert np.linalg.norm(param.grad) == pytest.approx(2.0)

    def test_leaves_small_grads_alone(self):
        param = Parameter(np.zeros(4))
        param.grad = np.full(4, 0.1)
        norm_before = np.linalg.norm(param.grad)
        clip_grad_norm([param], max_norm=10.0)
        assert np.linalg.norm(param.grad) == pytest.approx(norm_before)

    def test_no_grads_returns_zero(self):
        assert clip_grad_norm([Parameter(np.zeros(2))], 1.0) == 0.0


class TestSchedulers:
    def _optimizer(self):
        return SGD([Parameter(np.zeros(1))], lr=1.0)

    def test_step_lr(self):
        optimizer = self._optimizer()
        scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            scheduler.step()
            lrs.append(optimizer.lr)
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_step_lr_validation(self):
        with pytest.raises(ValueError):
            StepLR(self._optimizer(), step_size=0)

    def test_exponential_lr(self):
        optimizer = self._optimizer()
        scheduler = ExponentialLR(optimizer, gamma=0.5)
        scheduler.step()
        assert optimizer.lr == pytest.approx(0.5)
        scheduler.step()
        assert optimizer.lr == pytest.approx(0.25)

    def test_cosine_reaches_eta_min(self):
        optimizer = self._optimizer()
        scheduler = CosineAnnealingLR(optimizer, t_max=10, eta_min=0.01)
        for _ in range(10):
            scheduler.step()
        assert optimizer.lr == pytest.approx(0.01)

    def test_cosine_monotone_decreasing(self):
        optimizer = self._optimizer()
        scheduler = CosineAnnealingLR(optimizer, t_max=5)
        previous = optimizer.lr
        for _ in range(5):
            scheduler.step()
            assert optimizer.lr <= previous
            previous = optimizer.lr

    def test_cosine_validation(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(self._optimizer(), t_max=0)
