"""Property-based tests (hypothesis) for autograd invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import Tensor, functional as F

SETTINGS = dict(max_examples=40, deadline=None)

finite_arrays = arrays(
    dtype=np.float64,
    shape=array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=5),
    elements=st.floats(-10, 10, allow_nan=False, allow_infinity=False))


@given(finite_arrays)
@settings(**SETTINGS)
def test_sum_gradient_is_ones(data):
    x = Tensor(data.copy(), requires_grad=True)
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(data))


@given(finite_arrays, st.floats(-5, 5, allow_nan=False))
@settings(**SETTINGS)
def test_scalar_multiplication_scales_gradient(data, scale):
    x = Tensor(data.copy(), requires_grad=True)
    (x * scale).sum().backward()
    np.testing.assert_allclose(x.grad, np.full_like(data, scale), atol=1e-12)


@given(finite_arrays)
@settings(**SETTINGS)
def test_linearity_of_gradients(data):
    # grad(f + g) == grad(f) + grad(g)
    x1 = Tensor(data.copy(), requires_grad=True)
    ((x1 * 2.0).sum() + (x1 * x1).sum()).backward()

    x2 = Tensor(data.copy(), requires_grad=True)
    (x2 * 2.0).sum().backward()
    (x2 * x2).sum().backward()

    np.testing.assert_allclose(x1.grad, x2.grad, atol=1e-10)


@given(finite_arrays)
@settings(**SETTINGS)
def test_tanh_gradient_bounded(data):
    x = Tensor(data.copy(), requires_grad=True)
    x.tanh().sum().backward()
    assert np.all(x.grad <= 1.0 + 1e-12)
    assert np.all(x.grad >= 0.0)


@given(finite_arrays)
@settings(**SETTINGS)
def test_relu_plus_negated_relu_is_identity_gradient(data):
    # relu(x) - relu(-x) == x, so the gradient must be (close to) ones.
    data = data[np.abs(data) > 1e-6]            # avoid the kink at 0
    if data.size == 0:
        return
    x = Tensor(data.copy(), requires_grad=True)
    (x.relu() - (-x).relu()).sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(data), atol=1e-12)


@given(finite_arrays)
@settings(**SETTINGS)
def test_exp_log_roundtrip_gradient(data):
    # log(exp(x)) == x => d/dx == 1
    data = np.clip(data, -5, 5)
    x = Tensor(data.copy(), requires_grad=True)
    x.exp().log().sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(data), atol=1e-8)


@given(finite_arrays)
@settings(**SETTINGS)
def test_reshape_preserves_sum_and_gradient(data):
    x = Tensor(data.copy(), requires_grad=True)
    flat = x.reshape(-1)
    assert float(flat.sum().data) == float(data.sum())
    flat.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(data))


@given(arrays(dtype=np.float64, shape=st.tuples(st.integers(1, 4), st.integers(1, 4)),
              elements=st.floats(-10, 10, allow_nan=False)))
@settings(**SETTINGS)
def test_softmax_output_is_distribution(data):
    out = F.softmax(Tensor(data), axis=-1).data
    assert np.all(out >= 0)
    np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-9)


@given(arrays(dtype=np.float64, shape=st.tuples(st.integers(1, 3), st.integers(1, 3)),
              elements=st.floats(-5, 5, allow_nan=False)),
       arrays(dtype=np.float64, shape=st.tuples(st.integers(1, 3), st.integers(1, 3)),
              elements=st.floats(-5, 5, allow_nan=False)))
@settings(**SETTINGS)
def test_matmul_transpose_identity(a, b):
    # (A B)^T == B^T A^T, and gradients agree.
    if a.shape[1] != b.shape[0]:
        b = b.T
        if a.shape[1] != b.shape[0]:
            return
    ta1 = Tensor(a.copy(), requires_grad=True)
    tb1 = Tensor(b.copy(), requires_grad=True)
    left = (ta1 @ tb1).transpose()
    left.sum().backward()

    ta2 = Tensor(a.copy(), requires_grad=True)
    tb2 = Tensor(b.copy(), requires_grad=True)
    right = tb2.transpose() @ ta2.transpose()
    right.sum().backward()

    np.testing.assert_allclose(left.data, right.data, atol=1e-10)
    np.testing.assert_allclose(ta1.grad, ta2.grad, atol=1e-10)
    np.testing.assert_allclose(tb1.grad, tb2.grad, atol=1e-10)


@given(finite_arrays)
@settings(**SETTINGS)
def test_concat_split_roundtrip(data):
    x = Tensor(data.copy(), requires_grad=True)
    doubled = F.concat([x, x], axis=0)
    first, second = F.split(doubled, 2, axis=0)
    np.testing.assert_allclose(first.data, data)
    np.testing.assert_allclose(second.data, data)
    (first + second).sum().backward()
    np.testing.assert_allclose(x.grad, np.full_like(data, 2.0))


@given(st.integers(0, 2 ** 31 - 1))
@settings(max_examples=20, deadline=None)
def test_detach_blocks_gradient(seed):
    data = np.random.default_rng(seed).normal(size=(3,))
    x = Tensor(data, requires_grad=True)
    y = x * 2
    z = y.detach() * 3 + x
    z.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones(3))
