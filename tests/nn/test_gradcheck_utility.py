"""The public gradient-checking utility."""

import numpy as np
import pytest

from repro.nn import Tensor, functional as F
from repro.nn.gradcheck import check_gradients, numerical_gradient


class TestCheckGradients:
    def test_passes_for_correct_ops(self, rng):
        assert check_gradients(lambda a, b: a * b + a.tanh(),
                               [rng.normal(size=(3, 2)),
                                rng.normal(size=(3, 2))])

    def test_passes_for_matmul(self, rng):
        assert check_gradients(lambda a, b: a @ b,
                               [rng.normal(size=(3, 4)),
                                rng.normal(size=(4, 2))])

    def test_passes_for_softmax(self, rng):
        weights = rng.normal(size=(2, 5))     # fixed across re-evaluations
        assert check_gradients(
            lambda a: F.softmax(a, axis=-1) * Tensor(weights),
            [rng.normal(size=(2, 5))])

    def test_catches_wrong_gradient(self, rng):
        """An op with a deliberately broken backward must be caught."""

        def broken(a: Tensor) -> Tensor:
            data = a.data * 3.0

            def backward(g):
                a._accumulate(g * 2.0)           # wrong: should be 3.0

            return Tensor._make(data, (a,), backward, "broken")

        with pytest.raises(AssertionError, match="gradient error"):
            check_gradients(broken, [rng.normal(size=(4,))])

    def test_catches_missing_gradient(self, rng):
        """An input the function never uses receives no gradient."""

        def ignores_second(a: Tensor, b: Tensor) -> Tensor:
            return a * 2.0

        with pytest.raises(AssertionError, match="no gradient"):
            check_gradients(ignores_second,
                            [rng.normal(size=(3,)), rng.normal(size=(3,))])


class TestNumericalGradient:
    def test_quadratic(self):
        x = np.array([2.0, -1.0])
        grad = numerical_gradient(lambda: float((x ** 2).sum()), x)
        np.testing.assert_allclose(grad, [4.0, -2.0], atol=1e-5)

    def test_restores_input(self):
        x = np.array([1.0, 2.0])
        original = x.copy()
        numerical_gradient(lambda: float(x.sum()), x)
        np.testing.assert_array_equal(x, original)
