"""Module system: registration, traversal, modes, serialization."""

import numpy as np
import pytest

from repro.nn import (Linear, Module, ModuleList, Parameter, Sequential,
                      Tensor, Dropout)


class TinyNet(Module):
    def __init__(self, rng):
        super().__init__()
        self.fc1 = Linear(3, 4, rng=rng)
        self.fc2 = Linear(4, 2, rng=rng)
        self.free = Parameter(np.zeros(5))
        self.register_buffer("stat", np.arange(3.0))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu())


@pytest.fixture
def net(rng):
    return TinyNet(np.random.default_rng(0))


class TestRegistration:
    def test_named_parameters_walks_tree(self, net):
        names = {name for name, _ in net.named_parameters()}
        assert names == {"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias",
                         "free"}

    def test_num_parameters(self, net):
        assert net.num_parameters() == 3 * 4 + 4 + 4 * 2 + 2 + 5

    def test_named_modules(self, net):
        names = {name for name, _ in net.named_modules()}
        assert names == {"", "fc1", "fc2"}

    def test_buffers_not_parameters(self, net):
        assert all(name != "stat" for name, _ in net.named_parameters())
        np.testing.assert_array_equal(net.stat, np.arange(3.0))


class TestModes:
    def test_train_eval_propagates(self, rng):
        model = Sequential(Linear(2, 2, rng=np.random.default_rng(0)),
                           Dropout(0.5))
        model.eval()
        assert not model.training
        for module in model:
            assert not module.training
        model.train()
        assert all(m.training for m in model)

    def test_zero_grad(self, net):
        out = net(Tensor(np.ones((2, 3))))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestStateDict:
    def test_roundtrip(self, net, rng):
        state = net.state_dict()
        clone = TinyNet(np.random.default_rng(99))
        before = clone.fc1.weight.data.copy()
        clone.load_state_dict(state)
        assert not np.allclose(clone.fc1.weight.data, before)
        np.testing.assert_array_equal(clone.fc1.weight.data,
                                      net.fc1.weight.data)
        np.testing.assert_array_equal(clone.stat, net.stat)

    def test_state_dict_is_a_copy(self, net):
        state = net.state_dict()
        state["fc1.weight"][...] = 0.0
        assert not np.allclose(net.fc1.weight.data, 0.0)

    def test_missing_key_raises(self, net):
        state = net.state_dict()
        del state["fc1.weight"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_shape_mismatch_raises(self, net):
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_save_load_npz(self, net, tmp_path):
        path = str(tmp_path / "model.npz")
        net.save(path)
        clone = TinyNet(np.random.default_rng(5))
        clone.load(path)
        np.testing.assert_array_equal(clone.fc2.bias.data, net.fc2.bias.data)

    def test_buffer_roundtrip(self, net):
        net.stat[...] = [9.0, 8.0, 7.0]
        state = net.state_dict()
        clone = TinyNet(np.random.default_rng(1))
        clone.load_state_dict(state)
        np.testing.assert_array_equal(clone.stat, [9.0, 8.0, 7.0])


class TestContainers:
    def test_sequential_applies_in_order(self, rng):
        gen = np.random.default_rng(0)
        fc1 = Linear(3, 4, rng=gen)
        fc2 = Linear(4, 2, rng=gen)
        model = Sequential(fc1, fc2)
        x = Tensor(np.ones((1, 3)))
        np.testing.assert_allclose(model(x).data, fc2(fc1(x)).data)
        assert len(model) == 2

    def test_sequential_registers_children(self):
        gen = np.random.default_rng(0)
        model = Sequential(Linear(2, 2, rng=gen), Linear(2, 2, rng=gen))
        assert len(model.parameters()) == 4

    def test_module_list(self):
        gen = np.random.default_rng(0)
        items = ModuleList([Linear(2, 2, rng=gen)])
        items.append(Linear(2, 3, rng=gen))
        assert len(items) == 2
        assert items[1].out_features == 3
        assert len(items.parameters()) == 4

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestParameter:
    def test_requires_grad_by_default(self):
        assert Parameter(np.zeros(3)).requires_grad

    def test_linear_repr(self):
        layer = Linear(3, 4, rng=np.random.default_rng(0))
        assert "Linear" in repr(layer)
        assert "3" in repr(layer)
