"""Fused arena updates must match the per-parameter reference loop.

Every optimizer carries two paths over the same state buffers: the fused
single-array update (default on an arena) and the original per-parameter
loop behind ``use_reference_optim``.  These tests drive both paths with
identical gradients for several steps — weight decay and momentum engaged
— and hold parameters *and* optimizer state to agreement within 1e-12.
"""

import contextlib

import numpy as np
import pytest

from repro.nn import Linear, Module
from repro.nn.optim import (SGD, Adagrad, Adam, AdamW, RMSprop,
                            clip_grad_norm, reference_optim_enabled,
                            use_reference_optim)

ATOL = 1e-12

#: (optimizer class, kwargs, state-buffer attributes to compare)
OPTIMIZERS = [
    pytest.param(Adam, dict(lr=0.01, weight_decay=1e-4), ["_m", "_v"],
                 id="adam-l2"),
    pytest.param(Adam, dict(lr=0.01), ["_m", "_v"], id="adam-plain"),
    pytest.param(AdamW, dict(lr=0.01, weight_decay=1e-2), ["_m", "_v"],
                 id="adamw"),
    pytest.param(SGD, dict(lr=0.05, momentum=0.9, weight_decay=1e-4),
                 ["_velocity"], id="sgd-momentum"),
    pytest.param(SGD, dict(lr=0.05), ["_velocity"], id="sgd-plain"),
    pytest.param(RMSprop, dict(lr=0.01, momentum=0.9, weight_decay=1e-4),
                 ["_square_avg", "_buffer"], id="rmsprop"),
    pytest.param(Adagrad, dict(lr=0.1, weight_decay=1e-4),
                 ["_accumulator"], id="adagrad"),
]


class Net(Module):
    def __init__(self, seed=0):
        super().__init__()
        gen = np.random.default_rng(seed)
        self.fc1 = Linear(4, 8, rng=gen)
        self.fc2 = Linear(8, 1, rng=gen)


def run_steps(cls, kwargs, reference, steps=5, grad_clip=None):
    """Train a fixed model on a fixed gradient stream; return model+opt."""
    grads = np.random.default_rng(7)
    model = Net(seed=1)
    arena = model.flatten_parameters()
    optimizer = cls(arena, **kwargs)
    context = (use_reference_optim() if reference
               else contextlib.nullcontext())
    with context:
        assert reference_optim_enabled() is reference
        for _ in range(steps):
            arena.grad[:] = grads.normal(size=arena.size) * 10.0
            if grad_clip is not None:
                clip_grad_norm(arena, grad_clip)
            optimizer.step()
    return model, optimizer


@pytest.mark.parametrize("cls, kwargs, buffers", OPTIMIZERS)
class TestFusedMatchesReference:
    def test_parameters_match(self, cls, kwargs, buffers):
        fused, _ = run_steps(cls, kwargs, reference=False)
        loop, _ = run_steps(cls, kwargs, reference=True)
        for (name, a), (_, b) in zip(fused.named_parameters(),
                                     loop.named_parameters()):
            np.testing.assert_allclose(a.data, b.data, rtol=0, atol=ATOL,
                                       err_msg=name)

    def test_state_buffers_match(self, cls, kwargs, buffers):
        _, fused = run_steps(cls, kwargs, reference=False)
        _, loop = run_steps(cls, kwargs, reference=True)
        for attr in buffers:
            for a, b in zip(getattr(fused, attr), getattr(loop, attr)):
                np.testing.assert_allclose(a, b, rtol=0, atol=ATOL,
                                           err_msg=attr)

    def test_with_clipping(self, cls, kwargs, buffers):
        fused, _ = run_steps(cls, kwargs, reference=False, grad_clip=1.0)
        loop, _ = run_steps(cls, kwargs, reference=True, grad_clip=1.0)
        for (name, a), (_, b) in zip(fused.named_parameters(),
                                     loop.named_parameters()):
            np.testing.assert_allclose(a.data, b.data, rtol=0, atol=ATOL,
                                       err_msg=name)


class TestPathSwitching:
    def test_paths_share_state_mid_run(self):
        """Alternating paths per step equals staying fused throughout."""
        def run(alternate):
            grads = np.random.default_rng(3)
            model = Net(seed=2)
            arena = model.flatten_parameters()
            optimizer = Adam(arena, lr=0.01, weight_decay=1e-4)
            for step in range(6):
                arena.grad[:] = grads.normal(size=arena.size)
                if alternate and step % 2:
                    with use_reference_optim():
                        optimizer.step()
                else:
                    optimizer.step()
            return model

        fused = run(alternate=False)
        mixed = run(alternate=True)
        for (name, a), (_, b) in zip(fused.named_parameters(),
                                     mixed.named_parameters()):
            np.testing.assert_allclose(a.data, b.data, rtol=0, atol=ATOL,
                                       err_msg=name)

    def test_step_count_matches(self):
        _, fused = run_steps(Adam, dict(lr=0.01), reference=False)
        _, loop = run_steps(Adam, dict(lr=0.01), reference=True)
        assert fused._step_count == loop._step_count == 5


class TestClipEquivalence:
    def test_arena_clip_matches_list_clip(self):
        model_a, model_b = Net(seed=4), Net(seed=4)
        arena = model_a.flatten_parameters()
        grads = np.random.default_rng(9)
        flat = grads.normal(size=arena.size) * 10.0
        arena.grad[:] = flat
        offset = 0
        for param in model_b.parameters():
            param.grad = flat[offset:offset + param.size].reshape(param.shape)
            offset += param.size

        norm_arena = clip_grad_norm(arena, 1.0)
        norm_list = clip_grad_norm(model_b.parameters(), 1.0)
        assert norm_arena == pytest.approx(norm_list, rel=1e-12)
        for a, b in zip(model_a.parameters(), model_b.parameters()):
            np.testing.assert_allclose(a.grad, b.grad, rtol=0, atol=ATOL)
