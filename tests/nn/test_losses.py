"""Masked losses: formulas and null-value semantics."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn.losses import masked_huber, masked_mae, masked_mse, masked_rmse


class TestMaskedMAE:
    def test_no_nulls_equals_plain_mae(self):
        prediction = Tensor([1.0, 2.0, 3.0])
        target = Tensor([2.0, 2.0, 5.0])
        loss = masked_mae(prediction, target, null_value=None)
        assert loss.item() == pytest.approx(1.0)

    def test_zero_targets_excluded(self):
        prediction = Tensor([1.0, 10.0])
        target = Tensor([2.0, 0.0])        # second entry is missing data
        loss = masked_mae(prediction, target, null_value=0.0)
        assert loss.item() == pytest.approx(1.0)

    def test_nan_null_value(self):
        prediction = Tensor([1.0, 10.0])
        target = Tensor([2.0, np.nan])
        loss = masked_mae(prediction, target, null_value=float("nan"))
        assert loss.item() == pytest.approx(1.0)

    def test_all_null_returns_zero(self):
        loss = masked_mae(Tensor([1.0, 2.0]), Tensor([0.0, 0.0]))
        assert loss.item() == 0.0

    def test_gradient_zero_at_masked_entries(self):
        prediction = Tensor([1.0, 10.0], requires_grad=True)
        target = Tensor([2.0, 0.0])
        masked_mae(prediction, target).backward()
        assert prediction.grad[1] == 0.0
        assert prediction.grad[0] != 0.0

    def test_mask_renormalises(self):
        # With half the entries masked, the kept entries count double so the
        # loss is still the mean over valid entries.
        prediction = Tensor([3.0, 99.0, 5.0, 99.0])
        target = Tensor([1.0, 0.0, 1.0, 0.0])
        loss = masked_mae(prediction, target)
        assert loss.item() == pytest.approx(3.0)


class TestMaskedMSE:
    def test_formula(self):
        loss = masked_mse(Tensor([2.0, 4.0]), Tensor([1.0, 2.0]),
                          null_value=None)
        assert loss.item() == pytest.approx((1 + 4) / 2)

    def test_rmse_is_sqrt(self):
        prediction = Tensor([2.0, 4.0])
        target = Tensor([1.0, 2.0])
        mse = masked_mse(prediction, target, null_value=None).item()
        rmse = masked_rmse(prediction, target, null_value=None).item()
        assert rmse == pytest.approx(np.sqrt(mse))


class TestMaskedHuber:
    def test_small_errors_quadratic(self):
        loss = masked_huber(Tensor([1.5]), Tensor([1.0]), delta=1.0,
                            null_value=None)
        assert loss.item() == pytest.approx(0.5 * 0.25)

    def test_large_errors_linear(self):
        loss = masked_huber(Tensor([5.0]), Tensor([1.0]), delta=1.0,
                            null_value=None)
        assert loss.item() == pytest.approx(4.0 - 0.5)

    def test_masking(self):
        loss = masked_huber(Tensor([100.0, 1.2]), Tensor([0.0, 1.0]))
        assert loss.item() == pytest.approx(0.5 * 0.04, rel=1e-6)

    def test_gradient_bounded_by_delta(self):
        prediction = Tensor([100.0], requires_grad=True)
        masked_huber(prediction, Tensor([1.0]), delta=1.0,
                     null_value=None).backward()
        assert abs(prediction.grad[0]) <= 1.0 + 1e-9
