"""Quick-mode smoke tests for the optimizer benchmark suite.

Tier-1 guards against the fused-vs-reference benchmark rotting: the quick
preset must run end to end, emit well-formed :class:`repro.obs.OptimBench`
telemetry, and round-trip its JSON record with ``suite="optim"``.  Speedup
*floors* are asserted only by the full-size, opt-in
``benchmarks/bench_optim.py`` (tiny quick-mode shapes are timing noise).
"""

import json

import pytest

from repro.cli import main
from repro.nn.kernel_bench import (render_timings, timings_to_record,
                                   write_bench_json)
from repro.nn.optim_bench import OPTIM_BENCH_MODES, bench_optim
from repro.obs import EventBus, MemorySink

SMOKE_CASES = ["adam_step", "rmsprop_step", "zero_grad"]


@pytest.fixture(scope="module")
def quick_timings():
    sink = MemorySink()
    timings = bench_optim(mode="quick", bus=EventBus([sink]),
                          cases=SMOKE_CASES)
    return timings, sink


class TestBenchOptim:
    def test_runs_all_requested_cases(self, quick_timings):
        timings, _ = quick_timings
        assert [t.name for t in timings] == SMOKE_CASES
        for timing in timings:
            assert timing.reference_seconds > 0
            assert timing.fast_seconds > 0
            assert timing.speedup > 0
            assert timing.meta["parameters"] == 60

    def test_emits_optim_bench_events(self, quick_timings):
        timings, sink = quick_timings
        events = sink.of_kind("optim_bench")
        assert [e.name for e in events] == [t.name for t in timings]
        for event, timing in zip(events, timings):
            assert event.mode == "quick"
            assert event.reference_seconds == timing.reference_seconds
            assert event.fast_seconds == timing.fast_seconds
            assert event.speedup == pytest.approx(timing.speedup)

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown bench mode"):
            bench_optim(mode="huge")

    def test_unknown_case_raises(self):
        with pytest.raises(ValueError, match="unknown bench case"):
            bench_optim(mode="quick", cases=["lion_step"])

    def test_modes_cover_quick_and_full(self):
        assert {"quick", "full"} <= set(OPTIM_BENCH_MODES)

    def test_full_suite_covers_every_optimizer(self):
        from repro.nn.optim_bench import _CASES
        names = {name for name, _ in _CASES}
        assert {"adam_step", "adamw_step", "sgd_step", "rmsprop_step",
                "adagrad_step", "clip_grad_norm", "zero_grad"} <= names


class TestBenchRecords:
    def test_record_tagged_as_optim_suite(self, quick_timings, tmp_path):
        timings, _ = quick_timings
        record = timings_to_record(timings, mode="quick", suite="optim")
        assert record["suite"] == "optim"
        assert record["mode"] == "quick"
        assert len(record["timings"]) == len(timings)
        path = tmp_path / "bench.json"
        write_bench_json(timings, path, mode="quick", suite="optim")
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(record))

    def test_render_timings_table(self, quick_timings):
        timings, _ = quick_timings
        table = render_timings(timings)
        for timing in timings:
            assert timing.name in table
        assert "speedup" in table


class TestBenchCLI:
    def test_cli_quick_run_writes_json(self, tmp_path, capsys):
        json_path = tmp_path / "BENCH_optim.json"
        trace_path = tmp_path / "bench_trace.jsonl"
        exit_code = main(["bench", "optim", "--mode", "quick",
                          "--case", "adam_step",
                          "--json", str(json_path),
                          "--trace", str(trace_path)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "[bench] adam_step:" in out
        assert "Optimizer benchmark suite" in out
        record = json.loads(json_path.read_text())
        assert record["suite"] == "optim"
        assert record["mode"] == "quick"
        assert [t["name"] for t in record["timings"]] == ["adam_step"]
        trace_records = [json.loads(line) for line in
                         trace_path.read_text().splitlines()]
        assert [r["event"] for r in trace_records] == ["optim_bench"]
