"""RMSprop / Adagrad optimizers."""

import numpy as np
import pytest

from repro.nn import Parameter, Tensor
from repro.nn.optim import Adagrad, RMSprop

from .test_optim import quadratic_loss, train


class TestRMSprop:
    def test_converges_on_quadratic(self):
        param = train(RMSprop, steps=300, lr=0.05)
        np.testing.assert_allclose(param.data, 3.0, atol=1e-2)

    def test_momentum_variant_converges(self):
        param = train(RMSprop, steps=300, lr=0.01, momentum=0.9)
        np.testing.assert_allclose(param.data, 3.0, atol=1e-2)

    def test_weight_decay_shrinks_solution(self):
        plain = train(RMSprop, steps=500, lr=0.05)
        decayed = train(RMSprop, steps=500, lr=0.05, weight_decay=1.0)
        assert np.all(decayed.data < plain.data)

    def test_skips_missing_grads(self):
        param = Parameter(np.ones(2))
        optimizer = RMSprop([param], lr=0.1)
        optimizer.step()
        np.testing.assert_array_equal(param.data, np.ones(2))


class TestAdagrad:
    def test_converges_on_quadratic(self):
        param = train(Adagrad, steps=800, lr=0.5)
        np.testing.assert_allclose(param.data, 3.0, atol=1e-2)

    def test_effective_rate_decays(self):
        """Steps shrink as squared gradients accumulate."""
        param = Parameter(np.zeros(1))
        optimizer = Adagrad([param], lr=0.1)
        deltas = []
        for _ in range(3):
            optimizer.zero_grad()
            quadratic_loss(param).backward()
            before = param.data.copy()
            optimizer.step()
            deltas.append(float(np.abs(param.data - before)[0]))
        assert deltas[0] > deltas[1] > deltas[2]

    def test_accumulator_monotone(self):
        param = Parameter(np.zeros(2))
        optimizer = Adagrad([param], lr=0.1)
        param.grad = np.ones(2)
        optimizer.step()
        first = optimizer._accumulator[0].copy()
        param.grad = np.ones(2)
        optimizer.step()
        assert np.all(optimizer._accumulator[0] > first)
