"""Extended tensor ops: log1p, softplus, trig, var/std/norm, cumsum."""

import numpy as np
import pytest

from repro.nn import Tensor

from ..conftest import numerical_gradient


def gradcheck_unary(op_name, data, tol=1e-5):
    x = Tensor(data.copy(), requires_grad=True)
    getattr(x, op_name)().sum().backward()

    def value():
        return float(getattr(Tensor(data), op_name)().data.sum())

    np.testing.assert_allclose(x.grad, numerical_gradient(value, data),
                               atol=tol, rtol=1e-4)


class TestElementwiseExtras:
    def test_log1p_gradcheck(self, rng):
        gradcheck_unary("log1p", np.abs(rng.normal(size=(5,))) + 0.1)

    def test_log1p_matches_numpy(self, rng):
        data = rng.normal(size=(4,))
        np.testing.assert_allclose(Tensor(data).log1p().data, np.log1p(data))

    def test_softplus_gradcheck(self, rng):
        gradcheck_unary("softplus", rng.normal(size=(6,)))

    def test_softplus_stable_for_large_inputs(self):
        out = Tensor([1000.0, -1000.0]).softplus()
        assert np.isfinite(out.data).all()
        assert out.data[0] == pytest.approx(1000.0)
        assert out.data[1] == pytest.approx(0.0, abs=1e-12)

    def test_sin_cos_gradcheck(self, rng):
        data = rng.normal(size=(5,))
        gradcheck_unary("sin", data.copy())
        gradcheck_unary("cos", data.copy())

    def test_sin_cos_identity(self, rng):
        x = Tensor(rng.normal(size=(10,)))
        identity = x.sin() * x.sin() + x.cos() * x.cos()
        np.testing.assert_allclose(identity.data, 1.0, atol=1e-12)


class TestStatisticsOps:
    def test_var_matches_numpy(self, rng):
        data = rng.normal(size=(4, 6))
        out = Tensor(data).var(axis=1)
        np.testing.assert_allclose(out.data, data.var(axis=1), atol=1e-12)

    def test_std_matches_numpy(self, rng):
        data = rng.normal(size=(20,))
        assert Tensor(data).std().item() == pytest.approx(data.std())

    def test_var_gradcheck(self, rng):
        data = rng.normal(size=(3, 4))
        x = Tensor(data.copy(), requires_grad=True)
        x.var(axis=1).sum().backward()
        expected = numerical_gradient(
            lambda: float(data.var(axis=1).sum()), data)
        np.testing.assert_allclose(x.grad, expected, atol=1e-5)

    def test_std_eps_guards_zero(self):
        x = Tensor(np.full(5, 3.0), requires_grad=True)
        out = x.std(eps=1e-8)
        out.backward()
        assert np.isfinite(x.grad).all()

    def test_norm(self, rng):
        data = rng.normal(size=(3, 4))
        assert Tensor(data).norm().item() == pytest.approx(
            np.linalg.norm(data))

    def test_norm_axis(self, rng):
        data = rng.normal(size=(3, 4))
        out = Tensor(data).norm(axis=1)
        np.testing.assert_allclose(out.data, np.linalg.norm(data, axis=1))


class TestCumsum:
    def test_matches_numpy(self, rng):
        data = rng.normal(size=(3, 5))
        out = Tensor(data).cumsum(axis=1)
        np.testing.assert_allclose(out.data, np.cumsum(data, axis=1))

    def test_gradcheck(self, rng):
        data = rng.normal(size=(2, 4))
        weights = rng.normal(size=(2, 4))
        x = Tensor(data.copy(), requires_grad=True)
        (x.cumsum(axis=1) * Tensor(weights)).sum().backward()
        expected = numerical_gradient(
            lambda: float((np.cumsum(data, axis=1) * weights).sum()), data)
        np.testing.assert_allclose(x.grad, expected, atol=1e-5)


class TestArgOps:
    def test_argmax_plain_numpy(self, rng):
        data = rng.normal(size=(3, 4))
        x = Tensor(data)
        np.testing.assert_array_equal(x.argmax(axis=1), data.argmax(axis=1))
        np.testing.assert_array_equal(x.argmin(), data.argmin())
