"""Quick-mode smoke tests for the kernel benchmark suite.

Tier-1 guards against the benchmark rotting: the quick preset must run end
to end, emit well-formed :class:`repro.obs.KernelBench` telemetry, and
round-trip its JSON record.  Speedup *thresholds* are asserted only by the
full-size, opt-in ``benchmarks/bench_kernels.py`` (tiny quick-mode shapes
are timing noise).
"""

import json

import pytest

from repro.cli import main
from repro.nn.kernel_bench import (BENCH_MODES, KernelTiming, bench_kernels,
                                   render_timings, timings_to_record,
                                   write_bench_json)
from repro.obs import EventBus, MemorySink

SMOKE_CASES = ["conv2d_backward", "col2im", "split_backward"]


@pytest.fixture(scope="module")
def quick_timings():
    sink = MemorySink()
    timings = bench_kernels(mode="quick", bus=EventBus([sink]),
                            cases=SMOKE_CASES)
    return timings, sink


class TestBenchKernels:
    def test_runs_all_requested_cases(self, quick_timings):
        timings, _ = quick_timings
        assert [t.name for t in timings] == SMOKE_CASES
        for timing in timings:
            assert timing.reference_seconds > 0
            assert timing.fast_seconds > 0
            assert timing.speedup > 0
            assert timing.meta

    def test_emits_kernel_bench_events(self, quick_timings):
        timings, sink = quick_timings
        events = sink.of_kind("kernel_bench")
        assert [e.name for e in events] == [t.name for t in timings]
        for event, timing in zip(events, timings):
            assert event.mode == "quick"
            assert event.reference_seconds == timing.reference_seconds
            assert event.speedup == pytest.approx(timing.speedup)

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown bench mode"):
            bench_kernels(mode="warp")

    def test_unknown_case_raises(self):
        with pytest.raises(ValueError, match="unknown bench case"):
            bench_kernels(mode="quick", cases=["conv9d"])

    def test_modes_cover_quick_and_full(self):
        assert {"quick", "full"} <= set(BENCH_MODES)


class TestBenchRecords:
    def test_record_structure_and_json_roundtrip(self, quick_timings,
                                                 tmp_path):
        timings, _ = quick_timings
        record = timings_to_record(timings, mode="quick")
        assert record["suite"] == "kernels"
        assert record["mode"] == "quick"
        assert len(record["timings"]) == len(timings)
        path = tmp_path / "bench.json"
        write_bench_json(timings, path, mode="quick")
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(record))

    def test_render_timings_table(self, quick_timings):
        timings, _ = quick_timings
        table = render_timings(timings)
        for timing in timings:
            assert timing.name in table
        assert "speedup" in table

    def test_speedup_property(self):
        timing = KernelTiming(name="x", reference_seconds=2.0,
                              fast_seconds=0.5)
        assert timing.speedup == 4.0
        assert KernelTiming(name="x", reference_seconds=1.0,
                            fast_seconds=0.0).speedup == float("inf")


class TestBenchCLI:
    def test_cli_quick_run_writes_json(self, tmp_path, capsys):
        json_path = tmp_path / "BENCH_kernels.json"
        trace_path = tmp_path / "bench_trace.jsonl"
        exit_code = main(["bench", "kernels", "--mode", "quick",
                          "--case", "col2im",
                          "--json", str(json_path),
                          "--trace", str(trace_path)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "[bench] col2im:" in out
        assert "col2im" in out
        record = json.loads(json_path.read_text())
        assert record["mode"] == "quick"
        assert [t["name"] for t in record["timings"]] == ["col2im"]
        trace_records = [json.loads(line) for line in
                         trace_path.read_text().splitlines()]
        assert [r["event"] for r in trace_records] == ["kernel_bench"]
