"""Network statistics."""

import numpy as np
import pytest

from repro.graph import build_network, network_stats


class TestNetworkStats:
    def test_basic_counts(self, small_network):
        stats = network_stats(small_network)
        assert stats.num_nodes == small_network.num_nodes
        assert stats.num_edges == small_network.graph.number_of_edges()

    def test_degree_statistics(self, small_network):
        stats = network_stats(small_network)
        degrees = [d for _, d in small_network.graph.out_degree()]
        assert stats.mean_out_degree == pytest.approx(np.mean(degrees))
        assert stats.max_out_degree == max(degrees)

    def test_distances_positive(self, small_network):
        stats = network_stats(small_network)
        assert stats.mean_edge_km > 0
        assert stats.diameter_km >= stats.mean_shortest_path_km > 0

    def test_grid_denser_than_corridor(self):
        corridor = network_stats(build_network(16, "corridor", seed=0))
        grid = network_stats(build_network(16, "grid", seed=0))
        assert grid.num_edges > corridor.num_edges

    def test_render(self, small_network):
        text = network_stats(small_network).render()
        assert "sensors" in text
        assert "km" in text
