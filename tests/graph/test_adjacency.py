"""Adjacency construction: Gaussian kernel, normalisation, symmetrisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (binary_adjacency, build_network, gaussian_adjacency,
                         row_normalize, symmetrize)


class TestGaussianAdjacency:
    def test_diagonal_is_one(self, small_network):
        adj = gaussian_adjacency(small_network)
        np.testing.assert_array_equal(np.diag(adj), 1.0)

    def test_weights_in_unit_interval(self, small_network):
        adj = gaussian_adjacency(small_network)
        assert np.all(adj >= 0.0)
        assert np.all(adj <= 1.0)

    def test_threshold_sparsifies(self, small_network):
        dense = gaussian_adjacency(small_network, threshold=0.0)
        sparse = gaussian_adjacency(small_network, threshold=0.5)
        assert (sparse > 0).sum() <= (dense > 0).sum()

    def test_small_entries_zeroed(self, small_network):
        adj = gaussian_adjacency(small_network, threshold=0.3)
        off_diag = adj[~np.eye(len(adj), dtype=bool)]
        nonzero = off_diag[off_diag > 0]
        assert np.all(nonzero >= 0.3)

    def test_closer_nodes_weigh_more(self):
        network = build_network(10, topology="corridor", seed=0)
        adj = gaussian_adjacency(network, threshold=0.0)
        dist = network.distance_matrix()
        # pick a node with at least two reachable targets at different distance
        for i in range(10):
            reachable = np.where(np.isfinite(dist[i]) & (dist[i] > 0))[0]
            if len(reachable) >= 2:
                near, far = sorted(reachable, key=lambda j: dist[i, j])[0], \
                    sorted(reachable, key=lambda j: dist[i, j])[-1]
                if dist[i, near] < dist[i, far]:
                    assert adj[i, near] >= adj[i, far]
                    return
        pytest.skip("no node with two reachable targets")

    def test_max_hops_cut(self, small_network):
        adj_cut = gaussian_adjacency(small_network, threshold=0.0,
                                     max_hops_km=0.5)
        dist = small_network.distance_matrix()
        assert np.all(adj_cut[dist > 0.5] == 0.0)


class TestBinaryAdjacency:
    def test_entries_binary(self, small_network):
        adj = binary_adjacency(small_network)
        assert set(np.unique(adj)) <= {0.0, 1.0}

    def test_matches_edges(self, small_network):
        adj = binary_adjacency(small_network)
        for src, dst in small_network.graph.edges:
            assert adj[src, dst] == 1.0

    def test_self_loops(self, small_network):
        adj = binary_adjacency(small_network)
        np.testing.assert_array_equal(np.diag(adj), 1.0)


class TestRowNormalize:
    def test_rows_sum_to_one(self, small_adjacency):
        normalized = row_normalize(small_adjacency)
        sums = normalized.sum(axis=1)
        np.testing.assert_allclose(sums[small_adjacency.sum(axis=1) > 0], 1.0)

    def test_zero_rows_stay_zero(self):
        adj = np.array([[0.0, 0.0], [1.0, 1.0]])
        normalized = row_normalize(adj)
        np.testing.assert_array_equal(normalized[0], [0.0, 0.0])
        np.testing.assert_allclose(normalized[1], [0.5, 0.5])

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_rows_sum_to_one_or_zero(self, seed):
        adj = np.abs(np.random.default_rng(seed).normal(size=(5, 5)))
        adj[adj < 0.5] = 0.0
        sums = row_normalize(adj).sum(axis=1)
        for value in sums:
            assert value == pytest.approx(1.0) or value == pytest.approx(0.0)


class TestSymmetrize:
    def test_result_is_symmetric(self, small_adjacency):
        sym = symmetrize(small_adjacency)
        np.testing.assert_array_equal(sym, sym.T)

    def test_takes_elementwise_max(self):
        adj = np.array([[0.0, 0.7], [0.2, 0.0]])
        sym = symmetrize(adj)
        assert sym[0, 1] == sym[1, 0] == 0.7
