"""Spectral/diffusion operators: Laplacian, Chebyshev basis, random walks."""

import numpy as np
import pytest

from repro.graph import (chebyshev_polynomials, dual_random_walk,
                         normalized_laplacian, random_walk_matrix,
                         reverse_random_walk_matrix, scaled_laplacian)


class TestNormalizedLaplacian:
    def test_symmetric(self, small_adjacency):
        lap = normalized_laplacian(small_adjacency)
        np.testing.assert_allclose(lap, lap.T, atol=1e-12)

    def test_eigenvalues_in_zero_two(self, small_adjacency):
        lap = normalized_laplacian(small_adjacency)
        eigenvalues = np.linalg.eigvalsh(lap)
        assert eigenvalues.min() >= -1e-9
        assert eigenvalues.max() <= 2.0 + 1e-9

    def test_constant_vector_in_nullspace(self, small_adjacency):
        # For a connected graph, L @ D^{1/2} 1 = 0 (for symmetric normalised
        # Laplacian the null vector is D^{1/2} 1).
        weights = np.maximum(small_adjacency, small_adjacency.T)
        degree = weights.sum(axis=1)
        null_vec = np.sqrt(degree)
        lap = normalized_laplacian(small_adjacency)
        np.testing.assert_allclose(lap @ null_vec, 0.0, atol=1e-9)


class TestScaledLaplacian:
    def test_eigenvalues_in_unit_ball(self, small_adjacency):
        scaled = scaled_laplacian(small_adjacency)
        eigenvalues = np.linalg.eigvalsh(scaled)
        assert eigenvalues.min() >= -1.0 - 1e-9
        assert eigenvalues.max() <= 1.0 + 1e-9

    def test_custom_lambda_max(self, small_adjacency):
        scaled = scaled_laplacian(small_adjacency, lambda_max=2.0)
        lap = normalized_laplacian(small_adjacency)
        np.testing.assert_allclose(scaled, lap - np.eye(len(lap)), atol=1e-12)


class TestChebyshev:
    def test_first_terms(self, small_adjacency):
        polys = chebyshev_polynomials(small_adjacency, 3)
        n = small_adjacency.shape[0]
        np.testing.assert_array_equal(polys[0], np.eye(n))
        scaled = scaled_laplacian(small_adjacency)
        np.testing.assert_allclose(polys[1], scaled, atol=1e-12)

    def test_recurrence(self, small_adjacency):
        polys = chebyshev_polynomials(small_adjacency, 5)
        scaled = scaled_laplacian(small_adjacency)
        for k in range(2, 5):
            expected = 2.0 * scaled @ polys[k - 1] - polys[k - 2]
            np.testing.assert_allclose(polys[k], expected, atol=1e-9)

    def test_order_count(self, small_adjacency):
        assert len(chebyshev_polynomials(small_adjacency, 4)) == 4

    def test_order_one_is_identity_only(self, small_adjacency):
        polys = chebyshev_polynomials(small_adjacency, 1)
        assert len(polys) == 1

    def test_invalid_order(self, small_adjacency):
        with pytest.raises(ValueError):
            chebyshev_polynomials(small_adjacency, 0)


class TestRandomWalk:
    def test_rows_are_distributions(self, small_adjacency):
        walk = random_walk_matrix(small_adjacency)
        sums = walk.sum(axis=1)
        active = small_adjacency.sum(axis=1) > 0
        np.testing.assert_allclose(sums[active], 1.0)
        assert np.all(walk >= 0)

    def test_reverse_uses_transpose(self, small_adjacency):
        reverse = reverse_random_walk_matrix(small_adjacency)
        expected = random_walk_matrix(small_adjacency.T)
        np.testing.assert_array_equal(reverse, expected)

    def test_dual_returns_both(self, small_adjacency):
        forward, backward = dual_random_walk(small_adjacency)
        np.testing.assert_array_equal(forward,
                                      random_walk_matrix(small_adjacency))
        np.testing.assert_array_equal(
            backward, reverse_random_walk_matrix(small_adjacency))

    def test_walk_preserves_probability_mass(self, small_adjacency):
        walk = random_walk_matrix(small_adjacency)
        distribution = np.full(len(walk), 1.0 / len(walk))
        stepped = distribution @ walk
        # mass is conserved when every node has outgoing edges
        if np.all(small_adjacency.sum(axis=1) > 0):
            assert stepped.sum() == pytest.approx(1.0)
