"""Road-network construction: topologies, connectivity, attributes."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import build_network


class TestBuildNetwork:
    @pytest.mark.parametrize("topology", ["corridor", "grid", "radial"])
    def test_topologies_build(self, topology):
        network = build_network(12, topology=topology, seed=0)
        assert network.num_nodes == 12
        assert network.graph.number_of_edges() > 0

    @pytest.mark.parametrize("topology", ["corridor", "grid", "radial"])
    def test_weakly_connected(self, topology):
        network = build_network(15, topology=topology, seed=1)
        assert nx.is_connected(network.graph.to_undirected())

    def test_deterministic_by_seed(self):
        a = build_network(10, seed=42)
        b = build_network(10, seed=42)
        assert set(a.graph.edges) == set(b.graph.edges)
        np.testing.assert_array_equal(a.free_flow_speed, b.free_flow_speed)

    def test_different_seeds_differ(self):
        a = build_network(10, seed=1)
        b = build_network(10, seed=2)
        assert not np.allclose(a.free_flow_speed, b.free_flow_speed)

    def test_attribute_shapes_and_ranges(self):
        network = build_network(9, seed=0)
        assert network.positions.shape == (9, 2)
        assert network.free_flow_speed.shape == (9,)
        assert np.all(network.free_flow_speed >= 55.0)
        assert np.all(network.free_flow_speed <= 70.0)
        assert np.all(network.capacity > 0)

    def test_edges_have_positive_distances(self):
        network = build_network(10, topology="grid", seed=0)
        for _, _, attrs in network.graph.edges(data=True):
            assert attrs["distance"] > 0

    def test_too_few_nodes_raises(self):
        with pytest.raises(ValueError):
            build_network(1)

    def test_unknown_topology_raises(self):
        with pytest.raises(ValueError, match="unknown topology"):
            build_network(10, topology="mobius")


class TestDistanceMatrix:
    def test_diagonal_zero(self, small_network):
        dist = small_network.distance_matrix()
        np.testing.assert_array_equal(np.diag(dist), 0.0)

    def test_triangle_inequality_on_finite(self, small_network):
        dist = small_network.distance_matrix()
        n = small_network.num_nodes
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    if all(np.isfinite([dist[i, j], dist[i, k], dist[k, j]])):
                        assert dist[i, j] <= dist[i, k] + dist[k, j] + 1e-9

    def test_direct_edge_bounds_shortest_path(self, small_network):
        dist = small_network.distance_matrix()
        for src, dst, attrs in small_network.graph.edges(data=True):
            assert dist[src, dst] <= attrs["distance"] + 1e-9

    def test_downstream_hops_matches_graph(self, small_network):
        hops = small_network.downstream_hops()
        for node, successors in hops.items():
            assert set(successors) == set(small_network.graph.successors(node))
