"""Sliding-window dataset: alignment, splits, scaling."""

import numpy as np
import pytest

from repro.datasets import (MinMaxScaler, StandardScaler, WindowConfig,
                            make_windows)


@pytest.fixture
def series():
    rng = np.random.default_rng(0)
    total, nodes = 600, 4
    base = 50 + 10 * np.sin(np.arange(total) / 30.0)[:, None]
    return base + rng.normal(0, 1, size=(total, nodes))


@pytest.fixture
def time_of_day(series):
    return (np.arange(len(series)) % 288) / 288.0


class TestMakeWindows:
    def test_shapes(self, series, time_of_day):
        data = make_windows(series, time_of_day)
        assert data.train.x.shape[1:] == (12, 4, 2)
        assert data.train.y.shape[1:] == (12, 4)
        assert data.train.x.shape[0] == data.train.y.shape[0]

    def test_split_ratios_chronological(self, series, time_of_day):
        data = make_windows(series, time_of_day)
        # Train windows end before val windows start, etc.
        assert data.train.start_index.max() < data.val.start_index.min()
        assert data.val.start_index.max() < data.test.start_index.min()

    def test_x_y_alignment(self, series, time_of_day):
        """x window covers [s, s+12), y covers [s+12, s+24) of the series."""
        data = make_windows(series, time_of_day)
        split = data.train
        s = split.start_index[5]                  # index of first target step
        np.testing.assert_allclose(split.y[5], series[s:s + 12])
        expected_x = data.scaler.transform(series[s - 12:s])
        np.testing.assert_allclose(split.x[5, :, :, 0], expected_x)

    def test_time_feature_is_minmax_scaled(self, series, time_of_day):
        data = make_windows(series, time_of_day)
        assert data.train.x[:, :, :, 1].min() >= 0.0
        assert data.train.x[:, :, :, 1].max() <= 1.0

    def test_scaler_fit_on_train_only(self, series, time_of_day):
        # Make the test region wildly different; the scaler must not see it.
        series = series.copy()
        series[500:] += 1000.0
        data = make_windows(series, time_of_day)
        assert data.scaler.mean < 100.0

    def test_custom_window_config(self, series, time_of_day):
        config = WindowConfig(history=6, horizon=3)
        data = make_windows(series, time_of_day, config)
        assert data.train.x.shape[1] == 6
        assert data.train.y.shape[1] == 3

    def test_scaled_feature_near_standard(self, series, time_of_day):
        data = make_windows(series, time_of_day)
        values = data.train.x[:, :, :, 0]
        assert abs(values.mean()) < 0.5
        assert 0.5 < values.std() < 2.0

    def test_errors(self, time_of_day):
        with pytest.raises(ValueError, match=r"\(T, N\)"):
            make_windows(np.zeros(100), time_of_day[:100])
        with pytest.raises(ValueError, match="length"):
            make_windows(np.zeros((100, 3)), time_of_day[:50])
        with pytest.raises(ValueError, match="too short"):
            make_windows(np.zeros((20, 3)), time_of_day[:20])


class TestStandardScaler:
    def test_roundtrip(self):
        scaler = StandardScaler(null_value=None)
        data = np.array([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose(
            scaler.fit(data).inverse_transform(scaler.transform(data)), data)

    def test_excludes_nulls_from_fit(self):
        scaler = StandardScaler(null_value=0.0)
        data = np.array([0.0, 0.0, 10.0, 20.0])
        scaler.fit(data)
        assert scaler.mean == pytest.approx(15.0)

    def test_zero_std_guard(self):
        scaler = StandardScaler(null_value=None).fit(np.array([5.0, 5.0]))
        assert scaler.std == 1.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros(3))

    def test_all_null_raises(self):
        with pytest.raises(ValueError):
            StandardScaler(null_value=0.0).fit(np.zeros(5))

    def test_fit_transform(self):
        scaler = StandardScaler(null_value=None)
        out = scaler.fit_transform(np.array([1.0, 3.0]))
        np.testing.assert_allclose(out, [-1.0, 1.0])


class TestMinMaxScaler:
    def test_maps_to_unit_interval(self):
        scaler = MinMaxScaler()
        out = scaler.fit_transform(np.array([10.0, 20.0, 30.0]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0])

    def test_roundtrip(self):
        scaler = MinMaxScaler()
        data = np.array([3.0, 7.0, 11.0])
        scaler.fit(data)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(data)), data)

    def test_constant_data_guard(self):
        scaler = MinMaxScaler().fit(np.array([4.0, 4.0]))
        out = scaler.transform(np.array([4.0]))
        assert np.isfinite(out).all()

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.zeros(2))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            MinMaxScaler().fit(np.array([]))
