"""DataLoader batching semantics."""

import numpy as np
import pytest

from repro.datasets import DataLoader
from repro.datasets.windows import SupervisedSplit


@pytest.fixture
def split():
    n = 25
    return SupervisedSplit(
        x=np.arange(n * 2 * 3 * 2, dtype=float).reshape(n, 2, 3, 2),
        y=np.arange(n * 2 * 3, dtype=float).reshape(n, 2, 3),
        start_index=np.arange(n))


class TestDataLoader:
    def test_batch_count(self, split):
        assert len(DataLoader(split, batch_size=10)) == 3
        assert len(DataLoader(split, batch_size=10, drop_last=True)) == 2
        assert len(DataLoader(split, batch_size=25)) == 1

    def test_covers_all_samples_in_order(self, split):
        loader = DataLoader(split, batch_size=10, shuffle=False)
        starts = np.concatenate([s for _, _, s in loader])
        np.testing.assert_array_equal(starts, np.arange(25))

    def test_batch_shapes(self, split):
        loader = DataLoader(split, batch_size=10)
        x, y, s = next(iter(loader))
        assert x.shape == (10, 2, 3, 2)
        assert y.shape == (10, 2, 3)
        assert s.shape == (10,)

    def test_last_partial_batch(self, split):
        batches = list(DataLoader(split, batch_size=10))
        assert batches[-1][0].shape[0] == 5

    def test_drop_last(self, split):
        batches = list(DataLoader(split, batch_size=10, drop_last=True))
        assert all(b[0].shape[0] == 10 for b in batches)
        assert len(batches) == 2

    def test_shuffle_is_permutation(self, split):
        loader = DataLoader(split, batch_size=7, shuffle=True, seed=1)
        starts = np.concatenate([s for _, _, s in loader])
        assert sorted(starts.tolist()) == list(range(25))
        assert not np.array_equal(starts, np.arange(25))

    def test_shuffle_seed_reproducible(self, split):
        a = np.concatenate([s for _, _, s in
                            DataLoader(split, batch_size=7, shuffle=True, seed=3)])
        b = np.concatenate([s for _, _, s in
                            DataLoader(split, batch_size=7, shuffle=True, seed=3)])
        np.testing.assert_array_equal(a, b)

    def test_shuffle_advances_between_epochs(self, split):
        loader = DataLoader(split, batch_size=7, shuffle=True, seed=3)
        epoch1 = np.concatenate([s for _, _, s in loader])
        epoch2 = np.concatenate([s for _, _, s in loader])
        assert not np.array_equal(epoch1, epoch2)

    def test_x_y_stay_aligned_under_shuffle(self, split):
        loader = DataLoader(split, batch_size=5, shuffle=True, seed=0)
        for x, y, s in loader:
            for i, start in enumerate(s):
                np.testing.assert_array_equal(x[i], split.x[start])
                np.testing.assert_array_equal(y[i], split.y[start])

    def test_invalid_batch_size(self, split):
        with pytest.raises(ValueError):
            DataLoader(split, batch_size=0)
