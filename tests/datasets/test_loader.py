"""DataLoader batching semantics."""

import numpy as np
import pytest

from repro.core.intervals import difficult_mask, prediction_mask
from repro.datasets import DataLoader, StandardScaler
from repro.datasets.windows import SupervisedSplit


@pytest.fixture
def split():
    n = 25
    return SupervisedSplit(
        x=np.arange(n * 2 * 3 * 2, dtype=float).reshape(n, 2, 3, 2),
        y=np.arange(n * 2 * 3, dtype=float).reshape(n, 2, 3),
        start_index=np.arange(n))


class TestDataLoader:
    def test_batch_count(self, split):
        assert len(DataLoader(split, batch_size=10)) == 3
        assert len(DataLoader(split, batch_size=10, drop_last=True)) == 2
        assert len(DataLoader(split, batch_size=25)) == 1

    def test_covers_all_samples_in_order(self, split):
        loader = DataLoader(split, batch_size=10, shuffle=False)
        starts = np.concatenate([s for _, _, s in loader])
        np.testing.assert_array_equal(starts, np.arange(25))

    def test_batch_shapes(self, split):
        loader = DataLoader(split, batch_size=10)
        x, y, s = next(iter(loader))
        assert x.shape == (10, 2, 3, 2)
        assert y.shape == (10, 2, 3)
        assert s.shape == (10,)

    def test_last_partial_batch(self, split):
        batches = list(DataLoader(split, batch_size=10))
        assert batches[-1][0].shape[0] == 5

    def test_drop_last(self, split):
        batches = list(DataLoader(split, batch_size=10, drop_last=True))
        assert all(b[0].shape[0] == 10 for b in batches)
        assert len(batches) == 2

    def test_shuffle_is_permutation(self, split):
        loader = DataLoader(split, batch_size=7, shuffle=True, seed=1)
        starts = np.concatenate([s for _, _, s in loader])
        assert sorted(starts.tolist()) == list(range(25))
        assert not np.array_equal(starts, np.arange(25))

    def test_shuffle_seed_reproducible(self, split):
        a = np.concatenate([s for _, _, s in
                            DataLoader(split, batch_size=7, shuffle=True, seed=3)])
        b = np.concatenate([s for _, _, s in
                            DataLoader(split, batch_size=7, shuffle=True, seed=3)])
        np.testing.assert_array_equal(a, b)

    def test_shuffle_advances_between_epochs(self, split):
        loader = DataLoader(split, batch_size=7, shuffle=True, seed=3)
        epoch1 = np.concatenate([s for _, _, s in loader])
        epoch2 = np.concatenate([s for _, _, s in loader])
        assert not np.array_equal(epoch1, epoch2)

    def test_x_y_stay_aligned_under_shuffle(self, split):
        loader = DataLoader(split, batch_size=5, shuffle=True, seed=0)
        for x, y, s in loader:
            for i, start in enumerate(s):
                np.testing.assert_array_equal(x[i], split.x[start])
                np.testing.assert_array_equal(y[i], split.y[start])

    def test_invalid_batch_size(self, split):
        with pytest.raises(ValueError):
            DataLoader(split, batch_size=0)

    def test_drop_last_length_math(self, split):
        # len() must agree with the number of batches actually yielded,
        # for every divisor relationship between n=25 and batch_size.
        for batch_size in (1, 4, 5, 24, 25, 26, 100):
            for drop_last in (False, True):
                loader = DataLoader(split, batch_size=batch_size,
                                    drop_last=drop_last)
                batches = list(loader)
                assert len(loader) == len(batches)
                expected = (25 // batch_size if drop_last
                            else -(-25 // batch_size))
                assert len(batches) == expected

    def test_same_seed_same_order_across_epochs(self, split):
        def epochs(loader, n=3):
            return [np.concatenate([s for _, _, s in loader])
                    for _ in range(n)]

        a = epochs(DataLoader(split, batch_size=7, shuffle=True, seed=11))
        b = epochs(DataLoader(split, batch_size=7, shuffle=True, seed=11))
        for epoch_a, epoch_b in zip(a, b):
            np.testing.assert_array_equal(epoch_a, epoch_b)
        c = epochs(DataLoader(split, batch_size=7, shuffle=True, seed=12))
        assert any(not np.array_equal(x, y) for x, y in zip(a, c))

    def test_target_scaler_yields_scaled_targets(self, split):
        scaler = StandardScaler().fit(split.y)
        loader = DataLoader(split, batch_size=10, target_scaler=scaler)
        for _, y_scaled, s in loader:
            np.testing.assert_array_equal(
                y_scaled, scaler.transform(split.y[s]))


class TestStartIndexAlignment:
    def test_start_index_aligns_with_difficult_masks(self, ci_dataset):
        """The (start_index → mask row) contract: each yielded batch's
        start indices must pick the difficult-interval mask rows of its
        own windows, no matter how the loader shuffles."""
        supervised = ci_dataset.supervised
        split = supervised.test
        hard = difficult_mask(supervised.series, window=6, quantile=0.75)
        aligned = prediction_mask(hard, split.start_index,
                                  supervised.config.horizon)
        loader = DataLoader(split, batch_size=16, shuffle=True, seed=4)
        position = {start: row for row, start in enumerate(split.start_index)}
        for _, y, starts in loader:
            rows = np.array([position[s] for s in starts])
            np.testing.assert_array_equal(aligned[rows],
                                          prediction_mask(
                                              hard, starts,
                                              supervised.config.horizon))
            # and the targets are the series values at those positions
            for i, start in enumerate(starts[:3]):
                horizon = supervised.config.horizon
                np.testing.assert_array_equal(
                    y[i], supervised.series[start:start + horizon])
