"""The content-addressed dataset cache: keys, hits, telemetry, hygiene."""

import dataclasses

import numpy as np
import pytest

from repro.datasets import (CACHE_FORMAT_VERSION, DatasetCache, WindowConfig,
                            cache_enabled, dataset_cache_key,
                            default_cache_dir, load_dataset)
from repro.datasets.catalog import DATASETS
from repro.datasets.generator import SimulationConfig
from repro.obs import EventBus, MemorySink, bus_scope


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    directory = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(directory))
    return directory


def kinds(sink):
    return [event.kind for event in sink.events if event.kind != "span"]


class TestKey:
    def base_key(self, **overrides):
        spec = DATASETS["metr-la"]
        sim = SimulationConfig(num_days=3)
        window = WindowConfig()
        parts = dict(spec=spec, sim_config=sim, window=window,
                     seed_offset=0, scale="ci")
        parts.update(overrides)
        return dataset_cache_key(parts["spec"], parts["sim_config"],
                                 parts["window"], parts["seed_offset"],
                                 parts["scale"])

    def test_deterministic(self):
        assert self.base_key() == self.base_key()
        assert len(self.base_key()) == 16

    def test_sensitive_to_every_input(self):
        base = self.base_key()
        assert self.base_key(spec=DATASETS["pems-bay"]) != base
        assert self.base_key(sim_config=SimulationConfig(num_days=4)) != base
        assert self.base_key(window=WindowConfig(history=6)) != base
        assert self.base_key(seed_offset=1) != base
        assert self.base_key(scale="bench") != base

    def test_format_version_in_key(self, monkeypatch):
        import repro.datasets.cache as cache_module

        base = self.base_key()
        monkeypatch.setattr(cache_module, "CACHE_FORMAT_VERSION",
                            CACHE_FORMAT_VERSION + 1)
        assert self.base_key() != base


class TestEnabledSwitch:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_DATA_CACHE", raising=False)
        assert cache_enabled()

    @pytest.mark.parametrize("value", ["0", "off", "false", "no", "OFF"])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_DATA_CACHE", value)
        assert not cache_enabled()

    def test_env_disables_load_path(self, cache_dir, monkeypatch):
        monkeypatch.setenv("REPRO_DATA_CACHE", "0")
        sink = MemorySink()
        with bus_scope(EventBus([sink])):
            load_dataset("metr-la", scale="ci")
        assert kinds(sink) == ["dataset_build"]
        assert not list(cache_dir.glob("*.npz"))

    def test_dir_override(self, cache_dir):
        assert default_cache_dir() == cache_dir


class TestLoadDatasetCaching:
    def test_miss_then_hit(self, cache_dir):
        sink = MemorySink()
        with bus_scope(EventBus([sink])):
            first = load_dataset("metr-la", scale="ci")
            second = load_dataset("metr-la", scale="ci")
        assert kinds(sink) == ["cache_miss", "dataset_build", "cache_hit"]
        miss, build, hit = [e for e in sink.events if e.kind != "span"]
        assert miss.key == hit.key
        assert build.cached
        np.testing.assert_array_equal(first.supervised.series,
                                      second.supervised.series)
        np.testing.assert_array_equal(first.adjacency, second.adjacency)

    def test_cached_equals_fresh(self, cache_dir):
        cached = load_dataset("metr-la", scale="ci")
        cached = load_dataset("metr-la", scale="ci")     # via cache
        fresh = load_dataset("metr-la", scale="ci", cache=False)
        idx = np.arange(4)
        for split_cached, split_fresh in zip(cached.supervised.splits,
                                             fresh.supervised.splits):
            xc, yc, sc = split_cached.batch(idx)
            xf, yf, sf = split_fresh.batch(idx)
            np.testing.assert_array_equal(xc, xf)
            np.testing.assert_array_equal(yc, yf)
            np.testing.assert_array_equal(sc, sf)

    def test_cache_false_always_builds(self, cache_dir):
        sink = MemorySink()
        with bus_scope(EventBus([sink])):
            load_dataset("metr-la", scale="ci", cache=False)
            load_dataset("metr-la", scale="ci", cache=False)
        assert kinds(sink) == ["dataset_build", "dataset_build"]
        assert not any(event.cached
                       for event in sink.of_kind("dataset_build"))

    def test_distinct_worlds_distinct_entries(self, cache_dir):
        load_dataset("metr-la", scale="ci")
        load_dataset("metr-la", scale="ci", seed_offset=1)
        load_dataset("pemsd8", scale="ci")
        entries = DatasetCache().entries()
        assert len(entries) == 3
        assert len({entry.key for entry in entries}) == 3

    def test_weekdays_only_roundtrip(self, cache_dir):
        built = load_dataset("pemsd7m", scale="ci")
        cached = load_dataset("pemsd7m", scale="ci")
        # weekday filtering happened before the save, and must not be
        # re-applied on the cached load
        assert (cached.simulation.day_of_week < 5).all()
        np.testing.assert_array_equal(cached.supervised.series,
                                      built.supervised.series)

    def test_corrupt_entry_recovers(self, cache_dir):
        sink = MemorySink()
        load_dataset("metr-la", scale="ci")
        (entry,) = DatasetCache().entries()
        entry.path.write_bytes(b"not an npz archive")
        with bus_scope(EventBus([sink])):
            rebuilt = load_dataset("metr-la", scale="ci")
        assert kinds(sink) == ["cache_miss", "dataset_build", ]
        assert rebuilt.num_nodes > 0
        (entry,) = DatasetCache().entries()      # re-written entry
        assert entry.path.stat().st_size > 100


class TestCacheStore:
    def test_entries_and_clear(self, cache_dir):
        load_dataset("metr-la", scale="ci")
        load_dataset("pemsd8", scale="ci")
        store = DatasetCache()
        entries = store.entries()
        assert {entry.name for entry in entries} == {"metr-la", "pemsd8"}
        assert all(entry.size_bytes > 0 for entry in entries)
        removed, freed = store.clear()
        assert removed == 2
        assert freed > 0
        assert store.entries() == []

    def test_info_by_prefix(self, cache_dir):
        load_dataset("metr-la", scale="ci")
        store = DatasetCache()
        (entry,) = store.entries()
        info = store.info(entry.key[:6])
        assert info["key"] == entry.key
        assert info["spec"]["name"] == "metr-la"
        assert info["scale"] == "ci"
        assert "speed" in info["arrays"]

    def test_info_unknown_key(self, cache_dir):
        with pytest.raises(KeyError, match="no cache entry"):
            DatasetCache().info("feedfacefeedface")

    def test_foreign_files_ignored(self, cache_dir):
        load_dataset("metr-la", scale="ci")
        cache_dir.joinpath("notes.txt").write_text("hi")
        cache_dir.joinpath("stray.npz").write_bytes(b"xx")
        entries = DatasetCache().entries()
        assert len(entries) == 1          # `stray` has no name_scale_key stem

    def test_put_is_atomic_no_stray_temps(self, cache_dir):
        load_dataset("metr-la", scale="ci")
        leftovers = [p for p in cache_dir.iterdir()
                     if p.suffix != ".npz" or "tmp" in p.stem]
        assert leftovers == []

    def test_entry_parse_roundtrip(self, cache_dir):
        load_dataset("metr-la", scale="ci")
        store = DatasetCache()
        (entry,) = store.entries()
        assert dataclasses.is_dataclass(entry)
        assert store.path_for(entry.name, entry.scale, entry.key) == entry.path
