"""Missing-data imputers."""

import numpy as np
import pytest

from repro.datasets import (impute_forward_fill, impute_historical_mean,
                            impute_linear)


@pytest.fixture
def gapped():
    series = np.array([[10.0, 5.0],
                       [0.0, 5.0],
                       [0.0, 0.0],
                       [40.0, 5.0],
                       [50.0, 5.0]])
    return series


class TestForwardFill:
    def test_fills_with_last_valid(self, gapped):
        out = impute_forward_fill(gapped)
        np.testing.assert_allclose(out[:, 0], [10, 10, 10, 40, 50])

    def test_leading_gap_backfills(self):
        series = np.array([[0.0], [0.0], [7.0], [8.0]])
        out = impute_forward_fill(series)
        np.testing.assert_allclose(out[:, 0], [7, 7, 7, 8])

    def test_valid_entries_untouched(self, gapped):
        out = impute_forward_fill(gapped)
        assert out[3, 0] == 40.0
        assert out[0, 1] == 5.0

    def test_all_missing_column_unchanged(self):
        series = np.zeros((4, 1))
        out = impute_forward_fill(series)
        np.testing.assert_array_equal(out, series)

    def test_does_not_mutate_input(self, gapped):
        original = gapped.copy()
        impute_forward_fill(gapped)
        np.testing.assert_array_equal(gapped, original)


class TestLinear:
    def test_interpolates_gap(self, gapped):
        out = impute_linear(gapped)
        np.testing.assert_allclose(out[:, 0], [10, 20, 30, 40, 50])

    def test_single_interior_gap(self):
        series = np.array([[2.0], [0.0], [4.0]])
        out = impute_linear(series)
        assert out[1, 0] == pytest.approx(3.0)

    def test_trailing_gap_extends_flat(self):
        series = np.array([[2.0], [4.0], [0.0]])
        out = impute_linear(series)
        assert out[2, 0] == pytest.approx(4.0)

    def test_no_gaps_identity(self):
        series = np.arange(1.0, 7.0).reshape(3, 2)
        np.testing.assert_array_equal(impute_linear(series), series)


class TestHistoricalMean:
    def test_uses_same_slot_mean(self):
        # two days, gap on day 2 at slot 1; slot-1 valid value is 20.
        series = np.array([[10.0], [20.0], [10.0], [0.0]])
        time_of_day = np.array([0.0, 0.5, 0.0, 0.5])
        out = impute_historical_mean(series, time_of_day, steps_per_day=2)
        assert out[3, 0] == pytest.approx(20.0)

    def test_empty_slot_falls_back_to_global_mean(self):
        series = np.array([[10.0], [0.0], [30.0]])
        time_of_day = np.array([0.0, 0.5, 0.0])
        out = impute_historical_mean(series, time_of_day, steps_per_day=2)
        assert out[1, 0] == pytest.approx(20.0)

    def test_realistic_world(self, ci_dataset):
        sim = ci_dataset.simulation
        out = impute_historical_mean(sim.speed, sim.time_of_day)
        # all gaps filled with plausible speeds
        filled = out[sim.missing_mask]
        if filled.size:
            assert filled.min() > 0.0
            assert filled.max() < 80.0
