"""Sensor-outage (block missingness) modelling."""

import numpy as np
import pytest

from repro.datasets import SimulationConfig, TrafficSimulator
from repro.graph import build_network


@pytest.fixture(scope="module")
def network():
    return build_network(6, seed=1)


class TestOutages:
    def test_disabled_by_default(self, network):
        config = SimulationConfig(num_days=2, missing_rate=0.0)
        sim = TrafficSimulator(network, config, seed=0).run()
        assert sim.missing_mask.sum() == 0

    def test_outages_increase_missingness(self, network):
        base = SimulationConfig(num_days=3, missing_rate=0.0)
        with_outages = SimulationConfig(num_days=3, missing_rate=0.0,
                                        outage_rate_per_day=1.0)
        quiet = TrafficSimulator(network, base, seed=2).run()
        noisy = TrafficSimulator(network, with_outages, seed=2).run()
        assert noisy.missing_mask.mean() > quiet.missing_mask.mean()

    def test_outages_are_contiguous_blocks(self, network):
        config = SimulationConfig(num_days=3, missing_rate=0.0,
                                  outage_rate_per_day=0.5,
                                  outage_duration_steps=(24, 48))
        sim = TrafficSimulator(network, config, seed=2).run()
        run_lengths = []
        for node in range(network.num_nodes):
            column = sim.missing_mask[:, node].astype(int)
            edges = np.diff(column)
            starts = np.where(edges == 1)[0]
            stops = np.where(edges == -1)[0]
            run_lengths += [stop - start
                            for start, stop in zip(starts, stops)]
        if run_lengths:
            # block missingness: mean run length far above i.i.d. (~1 step)
            assert np.mean(run_lengths) > 10

    def test_outage_readings_zero(self, network):
        config = SimulationConfig(num_days=2, missing_rate=0.0,
                                  outage_rate_per_day=2.0)
        sim = TrafficSimulator(network, config, seed=5).run()
        assert sim.missing_mask.any()
        assert np.all(sim.speed[sim.missing_mask] == 0.0)

    def test_deterministic(self, network):
        config = SimulationConfig(num_days=2, outage_rate_per_day=1.0)
        a = TrafficSimulator(network, config, seed=9).run()
        b = TrafficSimulator(network, config, seed=9).run()
        np.testing.assert_array_equal(a.missing_mask, b.missing_mask)
