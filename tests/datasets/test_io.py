"""Dataset persistence round-trip."""

import numpy as np
import pytest

from repro.datasets import load_dataset, load_saved_dataset, save_dataset


@pytest.fixture(scope="module")
def saved(tmp_path_factory, ci_dataset):
    path = tmp_path_factory.mktemp("data") / "metr-la.npz"
    save_dataset(ci_dataset, path)
    return path, ci_dataset


class TestRoundTrip:
    def test_file_created(self, saved):
        path, _ = saved
        assert path.exists()
        assert path.stat().st_size > 0

    def test_simulation_arrays_identical(self, saved):
        path, original = saved
        loaded = load_saved_dataset(path)
        np.testing.assert_array_equal(loaded.simulation.speed,
                                      original.simulation.speed)
        np.testing.assert_array_equal(loaded.simulation.flow,
                                      original.simulation.flow)
        np.testing.assert_array_equal(loaded.simulation.missing_mask,
                                      original.simulation.missing_mask)

    def test_graph_identical(self, saved):
        path, original = saved
        loaded = load_saved_dataset(path)
        assert (set(loaded.network.graph.edges)
                == set(original.network.graph.edges))
        np.testing.assert_array_equal(loaded.adjacency, original.adjacency)
        np.testing.assert_allclose(loaded.network.free_flow_speed,
                                   original.network.free_flow_speed)

    def test_spec_preserved(self, saved):
        path, original = saved
        loaded = load_saved_dataset(path)
        assert loaded.spec == original.spec
        assert loaded.scale == original.scale

    def test_supervised_windows_rebuilt_identically(self, saved):
        path, original = saved
        loaded = load_saved_dataset(path)
        np.testing.assert_allclose(loaded.supervised.train.x,
                                   original.supervised.train.x)
        np.testing.assert_allclose(loaded.supervised.test.y,
                                   original.supervised.test.y)

    def test_incident_log_preserved(self, saved):
        path, original = saved
        loaded = load_saved_dataset(path)
        assert (len(loaded.simulation.incident_log)
                == len(original.simulation.incident_log))

    def test_flow_dataset_roundtrip(self, tmp_path, ci_flow_dataset):
        path = tmp_path / "flow.npz"
        save_dataset(ci_flow_dataset, path)
        loaded = load_saved_dataset(path)
        assert loaded.spec.task == "flow"
        np.testing.assert_allclose(loaded.values, ci_flow_dataset.values)

    def test_missing_mask_exact(self, saved):
        path, original = saved
        loaded = load_saved_dataset(path)
        assert loaded.simulation.missing_mask.dtype == \
            original.simulation.missing_mask.dtype
        np.testing.assert_array_equal(loaded.simulation.missing_mask,
                                      original.simulation.missing_mask)
        assert original.simulation.missing_mask.any()   # non-trivial mask

    def test_day_of_week_exact(self, saved):
        path, original = saved
        loaded = load_saved_dataset(path)
        np.testing.assert_array_equal(loaded.simulation.day_of_week,
                                      original.simulation.day_of_week)
        np.testing.assert_array_equal(loaded.simulation.time_of_day,
                                      original.simulation.time_of_day)
        np.testing.assert_array_equal(loaded.simulation.timestamps,
                                      original.simulation.timestamps)

    def test_incident_log_entries_exact(self, saved):
        path, original = saved
        loaded = load_saved_dataset(path)
        assert loaded.simulation.incident_log == \
            original.simulation.incident_log

    def test_include_day_of_week_roundtrip(self, tmp_path):
        from repro.datasets import WindowConfig

        original = load_dataset(
            "metr-la", scale="ci", cache=False,
            window=WindowConfig(include_day_of_week=True))
        path = tmp_path / "dow.npz"
        save_dataset(original, path)
        loaded = load_saved_dataset(path)
        assert loaded.supervised.train.num_features == 3
        idx = np.arange(3)
        x_orig, y_orig, _ = original.supervised.train.batch(idx)
        x_load, y_load, _ = loaded.supervised.train.batch(idx)
        np.testing.assert_array_equal(x_load, x_orig)
        np.testing.assert_array_equal(y_load, y_orig)
