"""Fundamental diagram: Greenshields speed/flow relations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (density_from_speed, flow_from_density,
                            speed_from_density)

FREE_FLOW = np.array([60.0])
CAPACITY = np.array([200.0])


class TestSpeedFromDensity:
    def test_free_flow_at_zero_density(self):
        assert speed_from_density(np.array([0.0]), FREE_FLOW)[0] == 60.0

    def test_monotone_decreasing(self):
        densities = np.linspace(0, 0.95, 50)
        speeds = speed_from_density(densities, FREE_FLOW)
        assert np.all(np.diff(speeds) <= 0)

    def test_clipped_above_095(self):
        heavy = speed_from_density(np.array([1.5]), FREE_FLOW)
        expected = speed_from_density(np.array([0.95]), FREE_FLOW)
        np.testing.assert_array_equal(heavy, expected)


class TestFlowFromDensity:
    def test_zero_at_extremes(self):
        assert flow_from_density(np.array([0.0]), CAPACITY)[0] == 0.0
        assert flow_from_density(np.array([1.0]), CAPACITY)[0] == 0.0

    def test_peak_at_half(self):
        assert flow_from_density(np.array([0.5]), CAPACITY)[0] == 200.0

    def test_parabola_symmetric(self):
        low = flow_from_density(np.array([0.3]), CAPACITY)[0]
        high = flow_from_density(np.array([0.7]), CAPACITY)[0]
        assert low == pytest.approx(high)

    def test_rises_then_falls(self):
        densities = np.linspace(0, 1, 21)
        flows = flow_from_density(densities, CAPACITY)
        peak = flows.argmax()
        assert np.all(np.diff(flows[:peak + 1]) >= 0)
        assert np.all(np.diff(flows[peak:]) <= 0)


class TestRoundTrip:
    @given(st.floats(0.0, 0.95))
    @settings(max_examples=50, deadline=None)
    def test_density_speed_density(self, density):
        d = np.array([density])
        speed = speed_from_density(d, FREE_FLOW)
        recovered = density_from_speed(speed, FREE_FLOW)
        np.testing.assert_allclose(recovered, d, atol=1e-12)

    def test_speed_flow_correlated_but_not_identical(self):
        # The paper's Sec. VI observation: correlated, different tendencies.
        densities = np.linspace(0.05, 0.9, 100)
        speeds = speed_from_density(densities, FREE_FLOW)
        flows = flow_from_density(densities, CAPACITY)
        correlation = np.corrcoef(speeds, flows)[0, 1]
        assert abs(correlation) < 0.99          # not a linear map of each other
        # speed is monotone in density, flow is not
        assert np.all(np.diff(speeds) < 0)
        assert np.any(np.diff(flows) > 0) and np.any(np.diff(flows) < 0)
