"""Traffic simulator: determinism, realism properties, incident effects."""

import numpy as np
import pytest

from repro.datasets import (STEPS_PER_DAY, SimulationConfig, TrafficSimulator,
                            density_from_speed)
from repro.graph import build_network


@pytest.fixture(scope="module")
def network():
    return build_network(8, topology="corridor", seed=11)


@pytest.fixture(scope="module")
def result(network):
    return TrafficSimulator(network, SimulationConfig(num_days=4), seed=5).run()


class TestShapes:
    def test_output_shapes(self, result, network):
        total = 4 * STEPS_PER_DAY
        n = network.num_nodes
        assert result.density.shape == (total, n)
        assert result.speed.shape == (total, n)
        assert result.flow.shape == (total, n)
        assert result.timestamps.shape == (total,)
        assert result.time_of_day.shape == (total,)
        assert result.day_of_week.shape == (total,)
        assert result.missing_mask.shape == (total, n)

    def test_time_of_day_in_unit_interval(self, result):
        assert result.time_of_day.min() >= 0.0
        assert result.time_of_day.max() < 1.0

    def test_timestamps_are_five_minute_grid(self, result):
        assert np.all(np.diff(result.timestamps) == 5.0)

    def test_day_of_week_cycles(self, result):
        assert set(np.unique(result.day_of_week)) <= set(range(7))
        assert result.day_of_week[0] == 0        # starts Monday by default


class TestDeterminism:
    def test_same_seed_identical(self, network):
        a = TrafficSimulator(network, SimulationConfig(num_days=2), seed=3).run()
        b = TrafficSimulator(network, SimulationConfig(num_days=2), seed=3).run()
        np.testing.assert_array_equal(a.speed, b.speed)
        np.testing.assert_array_equal(a.missing_mask, b.missing_mask)
        assert a.incident_log == b.incident_log

    def test_different_seed_differs(self, network):
        a = TrafficSimulator(network, SimulationConfig(num_days=2), seed=3).run()
        b = TrafficSimulator(network, SimulationConfig(num_days=2), seed=4).run()
        assert not np.array_equal(a.speed, b.speed)


class TestRealism:
    def test_density_bounded(self, result):
        assert result.density.min() >= 0.0
        assert result.density.max() <= 0.95

    def test_speed_nonnegative_and_below_free_flow(self, result, network):
        valid = ~result.missing_mask
        assert result.speed[valid].min() >= 0.0
        assert np.all(result.speed[valid]
                      <= network.free_flow_speed[None, :].repeat(
                          len(result.speed), axis=0)[valid] + 1e-9)

    def test_rush_hour_slower_than_night(self, result):
        hours = result.time_of_day * 24
        rush = result.speed[((hours >= 7.5) & (hours <= 9.0))]
        night = result.speed[((hours >= 2.0) & (hours <= 4.0))]
        assert rush[rush > 0].mean() < night[night > 0].mean()

    def test_weekend_lighter_than_weekday(self, network):
        config = SimulationConfig(num_days=7, missing_rate=0.0,
                                  incident_rate_per_day=0.0)
        sim = TrafficSimulator(network, config, seed=9).run()
        weekday = sim.density[sim.day_of_week < 5]
        weekend = sim.density[sim.day_of_week >= 5]
        assert weekend.mean() < weekday.mean()

    def test_daily_periodicity(self, network):
        config = SimulationConfig(num_days=4, missing_rate=0.0,
                                  incident_rate_per_day=0.0, noise_std=0.0,
                                  demand_jitter=0.0, start_weekday=0)
        sim = TrafficSimulator(network, config, seed=2).run()
        day1 = sim.density[:STEPS_PER_DAY]
        day2 = sim.density[STEPS_PER_DAY:2 * STEPS_PER_DAY]
        correlation = np.corrcoef(day1.ravel(), day2.ravel())[0, 1]
        assert correlation > 0.95

    def test_missing_rate_approximate(self, network):
        config = SimulationConfig(num_days=4, missing_rate=0.05)
        sim = TrafficSimulator(network, config, seed=1).run()
        assert 0.03 < sim.missing_mask.mean() < 0.07

    def test_missing_readings_are_zero(self, result):
        assert np.all(result.speed[result.missing_mask] == 0.0)
        assert np.all(result.flow[result.missing_mask] == 0.0)


class TestIncidents:
    def test_incident_raises_local_density(self, network):
        base_cfg = SimulationConfig(num_days=2, incident_rate_per_day=0.0,
                                    noise_std=0.0, missing_rate=0.0,
                                    demand_jitter=0.0)
        quiet = TrafficSimulator(network, base_cfg, seed=7).run()
        busy_cfg = SimulationConfig(num_days=2, incident_rate_per_day=10.0,
                                    noise_std=0.0, missing_rate=0.0,
                                    demand_jitter=0.0)
        busy = TrafficSimulator(network, busy_cfg, seed=7).run()
        assert len(busy.incident_log) > len(quiet.incident_log)
        assert busy.density.mean() > quiet.density.mean()

    def test_incident_log_entries_valid(self, result):
        total = len(result.density)
        n = result.density.shape[1]
        for step, node, magnitude, duration in result.incident_log:
            assert 0 <= step < total
            assert 0 <= node < n
            assert magnitude > 0
            assert duration > 0

    def test_incidents_increase_volatility(self, network):
        from repro.core import moving_std
        quiet_cfg = SimulationConfig(num_days=3, incident_rate_per_day=0.0,
                                     missing_rate=0.0)
        busy_cfg = SimulationConfig(num_days=3, incident_rate_per_day=8.0,
                                    missing_rate=0.0)
        quiet = TrafficSimulator(network, quiet_cfg, seed=13).run()
        busy = TrafficSimulator(network, busy_cfg, seed=13).run()
        assert (moving_std(busy.speed).mean()
                > moving_std(quiet.speed).mean())


class TestWeather:
    def test_disabled_by_default(self, network):
        a = TrafficSimulator(network, SimulationConfig(num_days=3), seed=8).run()
        b = TrafficSimulator(
            network, SimulationConfig(num_days=3,
                                      bad_weather_probability=0.0),
            seed=8).run()
        np.testing.assert_array_equal(a.density, b.density)

    def test_bad_weather_raises_density(self, network):
        calm_cfg = SimulationConfig(num_days=5, missing_rate=0.0,
                                    incident_rate_per_day=0.0)
        stormy_cfg = SimulationConfig(num_days=5, missing_rate=0.0,
                                      incident_rate_per_day=0.0,
                                      bad_weather_probability=1.0)
        calm = TrafficSimulator(network, calm_cfg, seed=6).run()
        stormy = TrafficSimulator(network, stormy_cfg, seed=6).run()
        assert stormy.density.mean() > calm.density.mean()

    def test_weather_affects_whole_days(self, network):
        """A bad-weather day is slower than the same calm day across the
        entire daytime, not in isolated bursts."""
        calm_cfg = SimulationConfig(num_days=2, missing_rate=0.0,
                                    incident_rate_per_day=0.0, noise_std=0.0)
        stormy_cfg = SimulationConfig(num_days=2, missing_rate=0.0,
                                      incident_rate_per_day=0.0,
                                      noise_std=0.0,
                                      bad_weather_probability=1.0)
        calm = TrafficSimulator(network, calm_cfg, seed=6).run()
        stormy = TrafficSimulator(network, stormy_cfg, seed=6).run()
        daytime = (calm.time_of_day > 0.3) & (calm.time_of_day < 0.8)
        worse = (stormy.density[daytime] >= calm.density[daytime] - 1e-12)
        assert worse.mean() > 0.95


class TestConfigValidation:
    def test_unstable_dynamics_rejected(self, network):
        config = SimulationConfig(decay=0.8, coupling=0.3)   # sums > 1
        with pytest.raises(ValueError, match="stable"):
            TrafficSimulator(network, config, seed=0).run()

    def test_density_speed_consistency(self, result, network):
        valid = ~result.missing_mask
        recovered = density_from_speed(result.speed,
                                       network.free_flow_speed[None, :])
        np.testing.assert_allclose(recovered[valid],
                                   np.clip(result.density, 0, 0.95)[valid],
                                   atol=1e-9)
