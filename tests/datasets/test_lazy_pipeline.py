"""Lazy window pipeline: bitwise equivalence with the eager reference
pipeline, laziness bookkeeping, and memory accounting."""

import numpy as np
import pytest

from repro.datasets import (DataLoader, StandardScaler, WindowConfig,
                            make_windows, reference_pipeline_enabled,
                            use_reference_pipeline)


@pytest.fixture(scope="module")
def series(ci_dataset):
    supervised = ci_dataset.supervised
    return supervised.series, ci_dataset.simulation.time_of_day


@pytest.fixture(scope="module")
def both(series):
    values, time_of_day = series
    lazy = make_windows(values, time_of_day)
    with use_reference_pipeline():
        eager = make_windows(values, time_of_day)
    return lazy, eager


class TestReferenceSwitch:
    def test_default_is_lazy(self, both):
        lazy, eager = both
        assert all(s.is_lazy for s in lazy.splits)
        assert not any(s.is_lazy for s in eager.splits)

    def test_flag_scoped_to_context(self):
        assert not reference_pipeline_enabled()
        with use_reference_pipeline():
            assert reference_pipeline_enabled()
        assert not reference_pipeline_enabled()


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("name", ["train", "val", "test"])
    def test_full_arrays_bitwise(self, both, name):
        lazy, eager = both
        lazy_split = getattr(lazy, name)
        eager_split = getattr(eager, name)
        np.testing.assert_array_equal(lazy_split.start_index,
                                      eager_split.start_index)
        # materialising the lazy split must reproduce the eager arrays
        # bit for bit (array_equal on float64 is exact)
        np.testing.assert_array_equal(lazy_split.x, eager_split.x)
        np.testing.assert_array_equal(lazy_split.y, eager_split.y)

    @pytest.mark.parametrize("name", ["train", "val", "test"])
    def test_batches_bitwise(self, both, name):
        lazy, eager = both
        lazy_split = getattr(lazy, name)
        eager_split = getattr(eager, name)
        rng = np.random.default_rng(7)
        indices = rng.choice(lazy_split.num_samples,
                             size=min(16, lazy_split.num_samples),
                             replace=False)
        for target_scaler in (None, lazy.scaler):
            x_lazy, y_lazy, s_lazy = lazy_split.batch(
                indices, target_scaler=target_scaler)
            x_eager, y_eager, s_eager = eager_split.batch(
                indices, target_scaler=target_scaler)
            np.testing.assert_array_equal(x_lazy, x_eager)
            np.testing.assert_array_equal(y_lazy, y_eager)
            np.testing.assert_array_equal(s_lazy, s_eager)

    def test_loader_epochs_bitwise(self, both):
        lazy, eager = both
        lazy_batches = list(DataLoader(lazy.train, batch_size=16,
                                       shuffle=True, seed=3,
                                       target_scaler=lazy.scaler))
        eager_batches = list(DataLoader(eager.train, batch_size=16,
                                        shuffle=True, seed=3,
                                        target_scaler=eager.scaler))
        assert len(lazy_batches) == len(eager_batches)
        for (xl, yl, sl), (xe, ye, se) in zip(lazy_batches, eager_batches):
            np.testing.assert_array_equal(xl, xe)
            np.testing.assert_array_equal(yl, ye)
            np.testing.assert_array_equal(sl, se)

    def test_foreign_scaler_goes_through_transform(self, both):
        lazy, eager = both
        other = StandardScaler().fit(lazy.series * 2.0 + 1.0)
        idx = np.arange(5)
        _, y_lazy, _ = lazy.train.batch(idx, target_scaler=other)
        _, y_eager, _ = eager.train.batch(idx, target_scaler=other)
        np.testing.assert_array_equal(y_lazy, y_eager)
        np.testing.assert_array_equal(y_lazy,
                                      other.transform(eager.train.y[idx]))

    def test_day_of_week_feature_bitwise(self, ci_dataset):
        sim = ci_dataset.simulation
        config = WindowConfig(include_day_of_week=True)
        lazy = make_windows(ci_dataset.supervised.series, sim.time_of_day,
                            config, day_of_week=sim.day_of_week)
        with use_reference_pipeline():
            eager = make_windows(ci_dataset.supervised.series,
                                 sim.time_of_day, config,
                                 day_of_week=sim.day_of_week)
        assert lazy.train.num_features == 3
        np.testing.assert_array_equal(lazy.train.x, eager.train.x)


class TestLaziness:
    def test_batch_does_not_materialize(self, series):
        values, time_of_day = series
        lazy = make_windows(values, time_of_day)
        lazy.train.batch(np.arange(8))
        assert lazy.train.is_lazy

    def test_materialize_flips_and_caches(self, series):
        values, time_of_day = series
        lazy = make_windows(values, time_of_day)
        split = lazy.val
        assert split.is_lazy
        assert split.materialize() is split
        assert not split.is_lazy
        assert split.x is split.x              # cached, not rebuilt

    def test_num_features_without_materializing(self, series):
        values, time_of_day = series
        lazy = make_windows(values, time_of_day)
        assert lazy.train.num_features == 2
        assert lazy.train.is_lazy

    def test_scaled_gather_skips_transform_but_matches(self, series):
        values, time_of_day = series
        lazy = make_windows(values, time_of_day)
        idx = np.arange(6)
        _, y_scaled, _ = lazy.train.batch(idx, target_scaler=lazy.scaler)
        _, y_raw, _ = lazy.train.batch(idx)
        np.testing.assert_array_equal(y_scaled, lazy.scaler.transform(y_raw))


class TestMemoryAccounting:
    def test_lazy_resident_far_below_materialized(self, series):
        values, time_of_day = series
        lazy = make_windows(values, time_of_day)
        assert lazy.materialized_nbytes >= 4 * lazy.resident_nbytes

    def test_resident_grows_on_materialize(self, series):
        values, time_of_day = series
        lazy = make_windows(values, time_of_day)
        before = lazy.resident_nbytes
        lazy.train.materialize()
        assert lazy.resident_nbytes > before

    def test_materialized_estimate_matches_actual(self, series):
        values, time_of_day = series
        lazy = make_windows(values, time_of_day)
        split = lazy.test
        estimate = split.materialized_nbytes
        split.materialize()
        actual = (split.x.nbytes + split.y.nbytes
                  + split.start_index.nbytes)
        assert estimate == actual

    def test_paper_scale_ratio_at_least_4x(self):
        from repro.datasets.catalog import DATASETS, _scaled_size
        from repro.datasets.data_bench import estimate_dataset_nbytes

        nodes, days = _scaled_size(DATASETS["metr-la"], "paper")
        eager, lazy = estimate_dataset_nbytes(nodes, days * 288)
        assert eager >= 4 * lazy
