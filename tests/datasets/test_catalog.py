"""Dataset catalog: the seven Table I datasets."""

import numpy as np
import pytest

from repro.datasets import (DATASETS, FLOW_DATASETS, SPEED_DATASETS,
                            dataset_names, load_dataset)


class TestCatalogStructure:
    def test_seven_datasets(self):
        assert len(DATASETS) == 7

    def test_speed_flow_partition(self):
        assert set(SPEED_DATASETS) == {"metr-la", "pems-bay", "pemsd7m"}
        assert set(FLOW_DATASETS) == {"pemsd3", "pemsd4", "pemsd7", "pemsd8"}

    def test_paper_sizes_match_table1(self):
        assert DATASETS["metr-la"].paper_nodes == 207
        assert DATASETS["metr-la"].paper_days == 122
        assert DATASETS["pems-bay"].paper_nodes == 325
        assert DATASETS["pemsd7"].paper_nodes == 883
        assert DATASETS["pemsd8"].paper_nodes == 170
        assert DATASETS["pemsd7m"].weekdays_only

    def test_dataset_names(self):
        assert sorted(dataset_names()) == sorted(DATASETS)


class TestLoadDataset:
    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("no-such-data")

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError, match="unknown scale"):
            load_dataset("metr-la", scale="gigantic")

    def test_name_normalisation(self):
        a = load_dataset("METR_LA", scale="ci")
        assert a.spec.name == "metr-la"

    def test_loaded_fields_consistent(self, ci_dataset):
        assert ci_dataset.adjacency.shape == (ci_dataset.num_nodes,
                                              ci_dataset.num_nodes)
        assert ci_dataset.supervised.series.shape[1] == ci_dataset.num_nodes
        assert ci_dataset.spec.task == "speed"

    def test_speed_dataset_uses_speed_values(self, ci_dataset):
        np.testing.assert_array_equal(ci_dataset.values,
                                      ci_dataset.simulation.speed)

    def test_flow_dataset_uses_flow_values(self, ci_flow_dataset):
        np.testing.assert_array_equal(ci_flow_dataset.values,
                                      ci_flow_dataset.simulation.flow)

    def test_deterministic(self):
        a = load_dataset("pemsd8", scale="ci")
        b = load_dataset("pemsd8", scale="ci")
        np.testing.assert_array_equal(a.supervised.series, b.supervised.series)
        np.testing.assert_array_equal(a.adjacency, b.adjacency)

    def test_seed_offset_changes_world(self):
        a = load_dataset("pemsd8", scale="ci")
        b = load_dataset("pemsd8", scale="ci", seed_offset=1)
        assert not np.array_equal(a.supervised.series, b.supervised.series)

    def test_relative_sizes_preserved(self):
        small = load_dataset("pemsd8", scale="ci")
        large = load_dataset("pemsd7", scale="ci")
        # pemsd7 is the largest dataset in Table I, pemsd8 the smallest.
        assert large.num_nodes > small.num_nodes

    def test_weekdays_only_dataset_has_no_weekend(self):
        data = load_dataset("pemsd7m", scale="ci")
        assert np.all(data.simulation.day_of_week < 5)

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_all_datasets_load_at_ci_scale(self, name):
        data = load_dataset(name, scale="ci")
        assert data.supervised.train.num_samples > 0
        assert data.supervised.test.num_samples > 0
        valid = data.values[data.values > 0]
        assert valid.size > 0
        assert np.isfinite(valid).all()
