"""Property-based tests on the data pipeline (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (MinMaxScaler, SimulationConfig, StandardScaler,
                            TrafficSimulator, WindowConfig, make_windows)
from repro.graph import build_network

SETTINGS = dict(max_examples=20, deadline=None)


@given(st.integers(0, 10_000), st.floats(0.2, 0.6), st.floats(0.05, 0.35))
@settings(max_examples=10, deadline=None)
def test_simulator_bounds_hold_for_any_config(seed, rush, coupling):
    """Whatever the (stable) config, densities stay in [0, 0.95] and
    speeds in [0, free-flow]."""
    network = build_network(6, seed=seed % 97)
    config = SimulationConfig(num_days=2, rush_intensity=rush,
                              coupling=coupling,
                              decay=min(0.9 - coupling, 0.7))
    sim = TrafficSimulator(network, config, seed=seed).run()
    assert sim.density.min() >= 0.0
    assert sim.density.max() <= 0.95
    valid = ~sim.missing_mask
    assert sim.speed[valid].min() >= 0.0


@given(st.integers(6, 12), st.integers(3, 12), st.integers(0, 1000))
@settings(**SETTINGS)
def test_window_alignment_any_config(history, horizon, seed):
    """x/y windows tile the series correctly for any (T', T)."""
    rng = np.random.default_rng(seed)
    total = 40 + history + horizon + 60
    series = rng.uniform(20, 70, size=(total * 3, 2))
    time_of_day = (np.arange(len(series)) % 288) / 288.0
    config = WindowConfig(history=history, horizon=horizon)
    data = make_windows(series, time_of_day, config)
    split = data.train
    sample = min(3, split.num_samples - 1)
    start = split.start_index[sample]
    np.testing.assert_allclose(split.y[sample], series[start:start + horizon])
    np.testing.assert_allclose(
        split.x[sample, :, :, 0],
        data.scaler.transform(series[start - history:start]))


@given(st.lists(st.floats(1, 1000, allow_nan=False), min_size=3, max_size=60))
@settings(**SETTINGS)
def test_standard_scaler_roundtrip_property(values):
    data = np.asarray(values)
    scaler = StandardScaler(null_value=None).fit(data)
    np.testing.assert_allclose(
        scaler.inverse_transform(scaler.transform(data)), data,
        rtol=1e-9, atol=1e-6)


@given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=2,
                max_size=60))
@settings(**SETTINGS)
def test_minmax_scaler_output_bounded(values):
    data = np.asarray(values)
    scaler = MinMaxScaler().fit(data)
    out = scaler.transform(data)
    assert out.min() >= -1e-12
    assert out.max() <= 1.0 + 1e-12


@given(st.integers(0, 500))
@settings(max_examples=10, deadline=None)
def test_splits_are_disjoint_and_ordered(seed):
    rng = np.random.default_rng(seed)
    series = rng.uniform(10, 80, size=(500, 3))
    time_of_day = (np.arange(500) % 288) / 288.0
    data = make_windows(series, time_of_day)
    train_last = data.train.start_index.max()
    val_first = data.val.start_index.min()
    val_last = data.val.start_index.max()
    test_first = data.test.start_index.min()
    assert train_last < val_first
    assert val_last < test_first
