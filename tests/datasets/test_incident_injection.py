"""Counterfactual incident injection."""

import numpy as np
import pytest

from repro.datasets import SimulationConfig, TrafficSimulator
from repro.graph import build_network


@pytest.fixture(scope="module")
def world():
    network = build_network(8, topology="corridor", seed=4)
    config = SimulationConfig(num_days=2, incident_rate_per_day=0.0,
                              missing_rate=0.0, noise_std=0.0,
                              demand_jitter=0.0)
    return network, config


class TestInjection:
    def test_counterfactual_identical_before_incident(self, world):
        network, config = world
        base = TrafficSimulator(network, config, seed=3).run()
        injected = TrafficSimulator(network, config, seed=3).run(
            extra_incidents=[(300, 2, 0.5, 12)])
        np.testing.assert_array_equal(base.speed[:300], injected.speed[:300])

    def test_speed_drops_at_incident(self, world):
        network, config = world
        base = TrafficSimulator(network, config, seed=3).run()
        injected = TrafficSimulator(network, config, seed=3).run(
            extra_incidents=[(300, 2, 0.5, 12)])
        drop = base.speed[300:312, 2] - injected.speed[300:312, 2]
        assert drop.max() > 5.0

    def test_congestion_spills_to_upstream_neighbours(self, world):
        network, config = world
        base = TrafficSimulator(network, config, seed=3).run()
        injected = TrafficSimulator(network, config, seed=3).run(
            extra_incidents=[(300, 2, 0.7, 18)])
        upstream = [node for node in network.graph.nodes
                    if 2 in network.graph.successors(node) and node != 2]
        if not upstream:
            pytest.skip("node 2 has no upstream feeder in this world")
        affected = np.abs(base.speed[300:330, upstream[0]]
                          - injected.speed[300:330, upstream[0]])
        assert affected.max() > 0.1

    def test_incident_recovered_after_duration(self, world):
        network, config = world
        base = TrafficSimulator(network, config, seed=3).run()
        injected = TrafficSimulator(network, config, seed=3).run(
            extra_incidents=[(100, 1, 0.5, 6)])
        # well after the incident clears, the worlds reconverge
        late = np.abs(base.speed[250:, :] - injected.speed[250:, :])
        assert late.max() < 0.5

    def test_logged(self, world):
        network, config = world
        injected = TrafficSimulator(network, config, seed=3).run(
            extra_incidents=[(300, 2, 0.5, 12)])
        assert (300, 2, 0.5, 12) in injected.incident_log

    def test_validation(self, world):
        network, config = world
        sim = TrafficSimulator(network, config, seed=3)
        with pytest.raises(ValueError, match="outside simulation"):
            sim.run(extra_incidents=[(10**6, 0, 0.5, 6)])
        with pytest.raises(ValueError, match="outside network"):
            sim.run(extra_incidents=[(10, 99, 0.5, 6)])
