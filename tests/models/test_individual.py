"""Model-specific behaviour: the architectural traits the paper discusses."""

import numpy as np
import pytest

from repro.models import create_model
from repro.models.stsgcn import _block_adjacency
from repro.nn import Tensor, no_grad


@pytest.fixture(scope="module")
def data(ci_dataset):
    x = Tensor(ci_dataset.supervised.train.x[:3])
    y_scaled = Tensor(ci_dataset.supervised.scaler.transform(
        ci_dataset.supervised.train.y[:3]))
    return ci_dataset, x, y_scaled


class TestSTGCN:
    def test_training_supervises_single_step(self, data):
        """Many-to-one: the training loss only depends on the first target."""
        ds, x, y_scaled = data
        model = create_model("stgcn", ds.num_nodes, ds.adjacency, seed=0)
        loss_a = model.training_loss(x, y_scaled).item()
        perturbed = Tensor(np.array(y_scaled.data))
        perturbed.data[:, 1:] += 100.0          # later steps should not matter
        loss_b = model.training_loss(x, perturbed).item()
        assert loss_a == pytest.approx(loss_b)

    def test_recursive_rollout_first_step_matches_single(self, data):
        ds, x, _ = data
        model = create_model("stgcn", ds.num_nodes, ds.adjacency, seed=0)
        with no_grad():
            model.eval()
            rollout = model(x)
            single = model._single_step(x)
        np.testing.assert_allclose(rollout.data[:, 0], single.data, atol=1e-10)

    def test_too_short_history_rejected(self, data):
        ds, _, _ = data
        with pytest.raises(ValueError, match="too short"):
            create_model("stgcn", ds.num_nodes, ds.adjacency, history=6)


class TestDCRNN:
    def test_teacher_forcing_changes_training_loss_path(self, data):
        ds, x, y_scaled = data
        always = create_model("dcrnn", ds.num_nodes, ds.adjacency, seed=0,
                              tf_ratio=1.0)
        never = create_model("dcrnn", ds.num_nodes, ds.adjacency, seed=0,
                             tf_ratio=0.0)
        never.load_state_dict(always.state_dict())
        loss_tf = always.training_loss(x, y_scaled).item()
        loss_free = never.training_loss(x, y_scaled).item()
        assert loss_tf != pytest.approx(loss_free)

    def test_no_teacher_forcing_at_eval(self, data):
        """forward() must be deterministic regardless of tf settings."""
        ds, x, _ = data
        model = create_model("dcrnn", ds.num_nodes, ds.adjacency, seed=0,
                             tf_ratio=1.0)
        with no_grad():
            model.eval()
            a = model(x).data
            b = model(x).data
        np.testing.assert_array_equal(a, b)


class TestGraphWaveNet:
    def test_adaptive_adjacency_is_row_stochastic(self, data):
        ds, _, _ = data
        model = create_model("graph-wavenet", ds.num_nodes, ds.adjacency, seed=0)
        adaptive = model.blocks[0].graph_conv.adaptive_adjacency()
        np.testing.assert_allclose(adaptive.data.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(adaptive.data >= 0)

    def test_receptive_field_covers_history(self, data):
        ds, _, _ = data
        model = create_model("graph-wavenet", ds.num_nodes, ds.adjacency, seed=0)
        assert model.receptive_field >= model.history

    def test_one_shot_multi_horizon(self, data):
        """All horizons come from one forward pass: perturbing any input step
        can affect every output step (no autoregressive loop)."""
        ds, x, _ = data
        model = create_model("graph-wavenet", ds.num_nodes, ds.adjacency, seed=0)
        with no_grad():
            model.eval()
            base = model(x).data
            bumped = Tensor(np.array(x.data))
            bumped.data[:, 0, :, 0] += 1.0
            out = model(bumped).data
        assert np.abs(out - base).max() > 0


class TestSTSGCN:
    def test_block_adjacency_structure(self):
        adjacency = np.array([[0.0, 1.0], [1.0, 0.0]])
        block = _block_adjacency(adjacency)
        assert block.shape == (6, 6)
        n = 2
        # temporal identity connections
        np.testing.assert_array_equal(block[0:n, n:2 * n], np.eye(n))
        np.testing.assert_array_equal(block[2 * n:3 * n, n:2 * n], np.eye(n))
        # no connections skipping two steps
        np.testing.assert_array_equal(block[0:n, 2 * n:3 * n], np.zeros((n, n)))

    def test_has_per_horizon_heads(self, data):
        ds, _, _ = data
        model = create_model("stsgcn", ds.num_nodes, ds.adjacency, seed=0)
        assert len(model.heads) == 12

    def test_largest_parameter_count_among_gcns(self, data):
        """Table III: STSGCN has the most parameters (per-step modules)."""
        ds, _, _ = data
        stsgcn = create_model("stsgcn", ds.num_nodes, ds.adjacency, seed=0)
        for other in ("stgcn", "stg2seq", "graph-wavenet"):
            model = create_model(other, ds.num_nodes, ds.adjacency, seed=0)
            assert stsgcn.num_parameters() > model.num_parameters()

    def test_history_too_short_for_layers(self, data):
        ds, _, _ = data
        with pytest.raises(ValueError, match="too short"):
            create_model("stsgcn", ds.num_nodes, ds.adjacency, history=4,
                         num_layers=2)


class TestGMAN:
    def test_future_time_embedding_wraps_midnight(self, data):
        ds, _, _ = data
        model = create_model("gman", ds.num_nodes, ds.adjacency, seed=0)
        # Window ending at the last slot of the day: future slots must wrap.
        x = np.zeros((1, 12, ds.num_nodes, 2))
        x[0, :, :, 1] = np.linspace(276 / 288, 287 / 288, 12)[:, None]
        ste_hist, ste_future = model._st_embeddings(Tensor(x))
        assert ste_future.shape == (1, 12, ds.num_nodes, model.d_model)

    def test_transform_attention_changes_time_axis(self, data):
        ds, _, _ = data
        model = create_model("gman", ds.num_nodes, ds.adjacency, seed=0,
                             horizon=6)
        x = Tensor(np.zeros((2, 12, ds.num_nodes, 2)))
        with no_grad():
            model.eval()
            out = model(x)
        assert out.shape == (2, 6, ds.num_nodes)


class TestSTMetaNet:
    def test_static_features_standardised(self, data):
        from repro.models.stmetanet import _node_static_features
        ds, _, _ = data
        feats = _node_static_features(ds.adjacency)
        assert feats.shape == (ds.num_nodes, 4)
        np.testing.assert_allclose(feats.mean(axis=0), 0.0, atol=1e-9)

    def test_meta_weights_differ_across_nodes(self, data):
        """The defining trait: generated weights are node-specific."""
        ds, _, _ = data
        model = create_model("st-metanet", ds.num_nodes, ds.adjacency, seed=0)
        meta = model._meta()
        generated = model.encoder.meta_gates(meta).data
        # at least two nodes get different generated weights
        assert np.abs(generated - generated[0]).max() > 1e-6


class TestASTGCN:
    def test_attention_matrices_are_distributions(self, data):
        ds, x, _ = data
        model = create_model("astgcn", ds.num_nodes, ds.adjacency, seed=0)
        block = model.blocks[0]
        inp = x.transpose(0, 2, 3, 1)       # (B, N, F, T)
        spatial = block.spatial_attention(inp)
        temporal = block.temporal_attention(inp)
        np.testing.assert_allclose(spatial.data.sum(axis=-1), 1.0, atol=1e-9)
        np.testing.assert_allclose(temporal.data.sum(axis=-1), 1.0, atol=1e-9)


class TestBaselines:
    def test_last_value_exact(self, data):
        ds, x, _ = data
        model = create_model("last-value", ds.num_nodes, ds.adjacency)
        with no_grad():
            out = model(x)
        for t in range(12):
            np.testing.assert_array_equal(out.data[:, t], x.data[:, -1, :, 0])

    def test_historical_average_exact(self, data):
        ds, x, _ = data
        model = create_model("historical-average", ds.num_nodes, ds.adjacency)
        with no_grad():
            out = model(x)
        np.testing.assert_allclose(out.data[:, 0], x.data[:, :, :, 0].mean(axis=1))

    def test_baselines_have_no_trainable_loss(self, data):
        ds, x, y = data
        for name in ("last-value", "historical-average"):
            model = create_model(name, ds.num_nodes, ds.adjacency)
            loss = model.training_loss(x, y)
            assert not loss.requires_grad

    def test_linear_baseline_trains(self, data):
        ds, x, y = data
        model = create_model("linear", ds.num_nodes, ds.adjacency, seed=0)
        loss = model.training_loss(x, y)
        loss.backward()
        assert model.fc.weight.grad is not None
