"""Contract tests shared by all registered models."""

import numpy as np
import pytest

from repro.models import (MODEL_REGISTRY, PAPER_MODELS, create_model,
                          model_names)
from repro.nn import Tensor, no_grad

ALL_MODELS = sorted(MODEL_REGISTRY)
TRAINABLE = [name for name in ALL_MODELS
             if name not in ("last-value", "historical-average")]


@pytest.fixture(scope="module")
def setup(ci_dataset):
    x = Tensor(ci_dataset.supervised.train.x[:3])
    y_scaled = Tensor(ci_dataset.supervised.scaler.transform(
        ci_dataset.supervised.train.y[:3]))
    return ci_dataset, x, y_scaled


class TestRegistry:
    def test_all_paper_models_registered(self):
        for name in PAPER_MODELS:
            assert name in MODEL_REGISTRY

    def test_create_unknown_raises(self, small_adjacency):
        with pytest.raises(KeyError, match="unknown model"):
            create_model("transformer-xl", small_adjacency.shape[0],
                         small_adjacency)

    def test_name_normalisation(self, small_adjacency):
        model = create_model("Graph_WaveNet", small_adjacency.shape[0],
                             small_adjacency)
        assert model.name == "graph-wavenet"

    def test_duplicate_registration_rejected(self):
        from repro.models.base import register_model, TrafficModel
        with pytest.raises(ValueError):
            @register_model("stgcn")
            class Duplicate(TrafficModel):
                pass

    def test_model_names_lists_registry(self):
        assert set(model_names()) == set(MODEL_REGISTRY)


class TestConstruction:
    def test_adjacency_shape_checked(self, small_adjacency):
        with pytest.raises(ValueError, match="adjacency"):
            create_model("stgcn", 99, small_adjacency)

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_instantiation(self, name, setup):
        ds, _, _ = setup
        model = create_model(name, ds.num_nodes, ds.adjacency, seed=1)
        assert model.num_nodes == ds.num_nodes

    @pytest.mark.parametrize("name", TRAINABLE)
    def test_seed_determinism(self, name, setup):
        ds, x, _ = setup
        a = create_model(name, ds.num_nodes, ds.adjacency, seed=7)
        b = create_model(name, ds.num_nodes, ds.adjacency, seed=7)
        with no_grad():
            a.eval(), b.eval()
            np.testing.assert_array_equal(a(x).data, b(x).data)

    @pytest.mark.parametrize("name", TRAINABLE)
    def test_different_seeds_differ(self, name, setup):
        ds, x, _ = setup
        a = create_model(name, ds.num_nodes, ds.adjacency, seed=1)
        b = create_model(name, ds.num_nodes, ds.adjacency, seed=2)
        with no_grad():
            a.eval(), b.eval()
            assert not np.array_equal(a(x).data, b(x).data)


class TestForwardContract:
    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_output_shape(self, name, setup):
        ds, x, _ = setup
        model = create_model(name, ds.num_nodes, ds.adjacency, seed=0)
        with no_grad():
            model.eval()
            out = model(x)
        assert out.shape == (3, 12, ds.num_nodes)

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_output_finite(self, name, setup):
        ds, x, _ = setup
        model = create_model(name, ds.num_nodes, ds.adjacency, seed=0)
        with no_grad():
            model.eval()
            assert np.isfinite(model(x).data).all()

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_input_validation(self, name, setup):
        ds, x, _ = setup
        model = create_model(name, ds.num_nodes, ds.adjacency, seed=0)
        with pytest.raises(ValueError):
            model(Tensor(np.zeros((2, 5, ds.num_nodes, 2))))   # wrong history
        with pytest.raises(ValueError):
            model(Tensor(np.zeros((2, 12, ds.num_nodes + 1, 2))))  # wrong N
        with pytest.raises(ValueError):
            model(Tensor(np.zeros((2, 12, ds.num_nodes))))     # wrong ndim


class TestTrainingContract:
    @pytest.mark.parametrize("name", TRAINABLE)
    def test_all_parameters_receive_gradients(self, name, setup):
        ds, x, y_scaled = setup
        model = create_model(name, ds.num_nodes, ds.adjacency, seed=0)
        loss = model.training_loss(x, y_scaled)
        loss.backward()
        missing = [pname for pname, p in model.named_parameters()
                   if p.grad is None]
        assert missing == [], f"{name}: no gradient for {missing}"

    @pytest.mark.parametrize("name", TRAINABLE)
    def test_loss_is_finite_scalar(self, name, setup):
        ds, x, y_scaled = setup
        model = create_model(name, ds.num_nodes, ds.adjacency, seed=0)
        loss = model.training_loss(x, y_scaled)
        assert loss.shape == ()
        assert np.isfinite(loss.item())

    @pytest.mark.parametrize("name", TRAINABLE)
    def test_one_sgd_step_reduces_loss(self, name, setup):
        """A gradient step on the same batch should not increase the loss."""
        from repro.nn.optim import SGD
        ds, x, y_scaled = setup
        # Disable teacher forcing so both loss evaluations see the same
        # computation (otherwise the comparison is stochastic).
        hparams = ({"tf_ratio": 0.0}
                   if name in ("dcrnn", "st-metanet") else {})
        model = create_model(name, ds.num_nodes, ds.adjacency, seed=0,
                             **hparams)
        optimizer = SGD(model.parameters(), lr=1e-3)
        loss_before = model.training_loss(x, y_scaled)
        loss_before.backward()
        optimizer.step()
        model.zero_grad()
        loss_after = model.training_loss(x, y_scaled)
        assert loss_after.item() <= loss_before.item() + 1e-6

    @pytest.mark.parametrize("name", TRAINABLE)
    def test_num_parameters_positive(self, name, setup):
        ds, _, _ = setup
        model = create_model(name, ds.num_nodes, ds.adjacency, seed=0)
        assert model.num_parameters() > 0


class TestStatePersistence:
    @pytest.mark.parametrize("name", TRAINABLE)
    def test_state_dict_roundtrip_preserves_predictions(self, name, setup):
        ds, x, _ = setup
        model = create_model(name, ds.num_nodes, ds.adjacency, seed=0)
        clone = create_model(name, ds.num_nodes, ds.adjacency, seed=99)
        clone.load_state_dict(model.state_dict())
        with no_grad():
            model.eval(), clone.eval()
            np.testing.assert_allclose(model(x).data, clone(x).data,
                                       atol=1e-12)
