"""Training dynamics: representative models actually learn.

One model per architectural family (Table II): spectral GCN + CNN (STGCN),
spatial GCN + RNN (DCRNN), spatial GCN + TCN (Graph-WaveNet), attention
(GMAN).  Each must reduce its training loss over a handful of optimizer
steps and beat the last-value baseline after a short training run.
"""

import numpy as np
import pytest

from repro.core import TrainingConfig, run_experiment, train_model
from repro.models import create_model
from repro.nn import Tensor
from repro.nn.optim import Adam

FAMILIES = ["stgcn", "dcrnn", "graph-wavenet", "gman"]


@pytest.fixture(scope="module")
def batch(ci_dataset):
    x = Tensor(ci_dataset.supervised.train.x[:32])
    y = Tensor(ci_dataset.supervised.scaler.transform(
        ci_dataset.supervised.train.y[:32]))
    return ci_dataset, x, y


class TestLossDecreases:
    @pytest.mark.parametrize("name", FAMILIES)
    def test_ten_steps_reduce_loss(self, name, batch):
        ds, x, y = batch
        model = create_model(name, ds.num_nodes, ds.adjacency, seed=0)
        optimizer = Adam(model.parameters(), lr=0.01)
        first = None
        last = None
        for _ in range(10):
            optimizer.zero_grad()
            loss = model.training_loss(x, y)
            loss.backward()
            optimizer.step()
            if first is None:
                first = loss.item()
            last = loss.item()
        assert last < first, f"{name}: {first:.4f} -> {last:.4f}"

    @pytest.mark.parametrize("name", ["graph-wavenet", "gman"])
    def test_beats_last_value_after_training(self, name, ci_dataset):
        config = TrainingConfig(epochs=3, max_batches_per_epoch=12)
        trained = run_experiment(name, ci_dataset, config, seed=0)
        baseline = run_experiment("last-value", ci_dataset, config, seed=0)
        assert (trained.evaluation.full[30].mae
                < baseline.evaluation.full[30].mae)

    def test_validation_tracks_improvement(self, ci_dataset):
        model = create_model("stg2seq", ci_dataset.num_nodes,
                             ci_dataset.adjacency, seed=0)
        history = train_model(model, ci_dataset,
                              TrainingConfig(epochs=4,
                                             max_batches_per_epoch=10))
        assert min(history.val_maes) <= history.val_maes[0]
