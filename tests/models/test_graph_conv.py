"""Shared graph-convolution building blocks."""

import numpy as np
import pytest

from repro.models.graph_conv import (ChebConv, DiffusionConv, cheb_supports,
                                     diffusion_supports)
from repro.nn import Tensor

from ..conftest import numerical_gradient


@pytest.fixture
def gen():
    return np.random.default_rng(5)


class TestSupports:
    def test_diffusion_support_count(self, small_adjacency):
        supports = diffusion_supports(small_adjacency, max_step=2)
        assert len(supports) == 5          # I + 2 forward + 2 backward
        np.testing.assert_array_equal(supports[0],
                                      np.eye(small_adjacency.shape[0]))

    def test_diffusion_powers(self, small_adjacency):
        supports = diffusion_supports(small_adjacency, max_step=2)
        np.testing.assert_allclose(supports[2], supports[1] @ supports[1],
                                   atol=1e-12)

    def test_diffusion_rows_substochastic(self, small_adjacency):
        for support in diffusion_supports(small_adjacency, 2):
            sums = support.sum(axis=1)
            assert np.all(sums <= 1.0 + 1e-9)

    def test_cheb_support_count(self, small_adjacency):
        assert len(cheb_supports(small_adjacency, 3)) == 3


class TestChebConv:
    def test_shape(self, small_adjacency, gen):
        n = small_adjacency.shape[0]
        conv = ChebConv(small_adjacency, 4, 7, order=3, rng=gen)
        out = conv(Tensor(np.zeros((2, 5, n, 4))))
        assert out.shape == (2, 5, n, 7)

    def test_param_count(self, small_adjacency, gen):
        conv = ChebConv(small_adjacency, 4, 7, order=3, rng=gen)
        assert conv.num_parameters() == 3 * 4 * 7 + 7

    def test_gradcheck(self, small_adjacency, gen):
        n = small_adjacency.shape[0]
        conv = ChebConv(small_adjacency, 2, 3, order=2, rng=gen)
        x_data = gen.normal(size=(1, n, 2))
        x = Tensor(x_data.copy(), requires_grad=True)
        conv(x).sum().backward()

        def value():
            return float(conv(Tensor(x_data)).data.sum())

        np.testing.assert_allclose(x.grad, numerical_gradient(value, x_data),
                                   atol=1e-5)

    def test_node_count_validated(self, small_adjacency, gen):
        conv = ChebConv(small_adjacency, 2, 3, rng=gen)
        with pytest.raises(ValueError, match="nodes"):
            conv(Tensor(np.zeros((1, small_adjacency.shape[0] + 1, 2))))


class TestDiffusionConv:
    def test_shape(self, small_adjacency, gen):
        n = small_adjacency.shape[0]
        conv = DiffusionConv(small_adjacency, 3, 5, max_step=2, rng=gen)
        out = conv(Tensor(np.zeros((4, n, 3))))
        assert out.shape == (4, n, 5)

    def test_information_propagates_one_hop(self, small_adjacency, gen):
        """Perturbing one node changes outputs at graph neighbours."""
        n = small_adjacency.shape[0]
        conv = DiffusionConv(small_adjacency, 1, 1, max_step=1, rng=gen)
        base = conv(Tensor(np.zeros((1, n, 1)))).data
        bumped_in = np.zeros((1, n, 1))
        bumped_in[0, 0, 0] = 1.0
        bumped = conv(Tensor(bumped_in)).data
        delta = np.abs(bumped - base)[0, :, 0]
        neighbours = np.where(small_adjacency[:, 0] > 0)[0]
        affected = np.where(delta > 1e-12)[0]
        assert 0 in affected                        # self (identity support)
        for node in affected:
            assert (node == 0 or small_adjacency[node, 0] > 0
                    or small_adjacency[0, node] > 0)

    def test_all_params_get_grads(self, small_adjacency, gen):
        n = small_adjacency.shape[0]
        conv = DiffusionConv(small_adjacency, 2, 2, rng=gen)
        x = Tensor(gen.normal(size=(2, n, 2)))
        conv(x).sum().backward()
        assert conv.weight.grad is not None
        assert conv.bias.grad is not None
