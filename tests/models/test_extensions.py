"""Extension features: graph-free baseline, scheduled sampling."""

import numpy as np
import pytest

from repro.models import create_model
from repro.nn import Tensor, no_grad


@pytest.fixture(scope="module")
def data(ci_dataset):
    x = Tensor(ci_dataset.supervised.train.x[:3])
    y_scaled = Tensor(ci_dataset.supervised.scaler.transform(
        ci_dataset.supervised.train.y[:3]))
    return ci_dataset, x, y_scaled


class TestGRUSeq2Seq:
    def test_no_cross_node_information_flow(self, data):
        """The defining property: perturbing node j never changes node i."""
        ds, x, _ = data
        model = create_model("gru-seq2seq", ds.num_nodes, ds.adjacency, seed=0)
        with no_grad():
            model.eval()
            base = model(x).data
            bumped = Tensor(np.array(x.data))
            bumped.data[:, :, 0, 0] += 5.0        # perturb node 0 only
            out = model(bumped).data
        assert np.abs(out[:, :, 0] - base[:, :, 0]).max() > 1e-6
        np.testing.assert_allclose(out[:, :, 1:], base[:, :, 1:], atol=1e-12)

    def test_graph_models_do_flow_information(self, data):
        """Contrast: a graph model propagates the same perturbation."""
        ds, x, _ = data
        model = create_model("dcrnn", ds.num_nodes, ds.adjacency, seed=0)
        # pick a node connected to node 0
        neighbours = np.where(
            (ds.adjacency[0] > 0) & (np.arange(ds.num_nodes) != 0))[0]
        if len(neighbours) == 0:
            pytest.skip("node 0 has no neighbours in this world")
        with no_grad():
            model.eval()
            base = model(x).data
            bumped = Tensor(np.array(x.data))
            bumped.data[:, :, 0, 0] += 5.0
            out = model(bumped).data
        assert np.abs(out[:, :, neighbours[0]] - base[:, :, neighbours[0]]).max() > 1e-9


class TestScheduledSampling:
    def test_probability_decays(self, data):
        ds, x, y = data
        model = create_model("dcrnn", ds.num_nodes, ds.adjacency, seed=0,
                             scheduled_sampling_decay=10.0)
        initial = model._teacher_probability()
        assert initial > 0.4
        for _ in range(5):
            model.training_loss(x, y)
        later = model._teacher_probability()
        assert later < initial

    def test_probability_goes_to_zero(self, data):
        ds, _, _ = data
        model = create_model("dcrnn", ds.num_nodes, ds.adjacency, seed=0,
                             scheduled_sampling_decay=5.0)
        model._global_step = 10_000
        assert model._teacher_probability() < 1e-3

    def test_fixed_ratio_when_disabled(self, data):
        ds, x, y = data
        model = create_model("dcrnn", ds.num_nodes, ds.adjacency, seed=0,
                             tf_ratio=0.3)
        model.training_loss(x, y)
        assert model._teacher_probability() == 0.3

    def test_no_overflow_at_huge_step(self, data):
        ds, _, _ = data
        model = create_model("dcrnn", ds.num_nodes, ds.adjacency, seed=0,
                             scheduled_sampling_decay=1.0)
        model._global_step = 10 ** 9
        probability = model._teacher_probability()
        assert 0.0 <= probability < 1e-6
