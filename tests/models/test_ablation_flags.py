"""Ablation switches: STGCN one-shot head, Graph-WaveNet fixed graph,
and the day-of-week third input feature."""

import numpy as np
import pytest

from repro.datasets import WindowConfig, load_dataset
from repro.models import create_model
from repro.nn import Tensor, no_grad


@pytest.fixture(scope="module")
def data(ci_dataset):
    x = Tensor(ci_dataset.supervised.train.x[:3])
    y_scaled = Tensor(ci_dataset.supervised.scaler.transform(
        ci_dataset.supervised.train.y[:3]))
    return ci_dataset, x, y_scaled


class TestSTGCNMultiStepHead:
    def test_one_shot_forward_shape(self, data):
        ds, x, _ = data
        model = create_model("stgcn", ds.num_nodes, ds.adjacency, seed=0,
                             multi_step_head=True)
        with no_grad():
            model.eval()
            out = model(x)
        assert out.shape == (3, 12, ds.num_nodes)

    def test_training_supervises_all_steps(self, data):
        ds, x, y_scaled = data
        model = create_model("stgcn", ds.num_nodes, ds.adjacency, seed=0,
                             multi_step_head=True)
        loss_a = model.training_loss(x, y_scaled).item()
        perturbed = Tensor(np.array(y_scaled.data))
        perturbed.data[:, -1] += 100.0
        loss_b = model.training_loss(x, perturbed).item()
        assert loss_a != pytest.approx(loss_b)   # later steps now matter

    def test_one_shot_has_more_head_params(self, data):
        ds, _, _ = data
        recursive = create_model("stgcn", ds.num_nodes, ds.adjacency, seed=0)
        one_shot = create_model("stgcn", ds.num_nodes, ds.adjacency, seed=0,
                                multi_step_head=True)
        assert one_shot.num_parameters() > recursive.num_parameters()

    def test_gradients_flow(self, data):
        ds, x, y_scaled = data
        model = create_model("stgcn", ds.num_nodes, ds.adjacency, seed=0,
                             multi_step_head=True)
        model.training_loss(x, y_scaled).backward()
        assert all(p.grad is not None for p in model.parameters())


class TestGWNetFixedGraph:
    def test_no_adaptive_params(self, data):
        ds, _, _ = data
        fixed = create_model("graph-wavenet", ds.num_nodes, ds.adjacency,
                             seed=0, adaptive_adjacency=False)
        names = [n for n, _ in fixed.named_parameters()]
        assert not any("embed_source" in n or "embed_target" in n
                       for n in names)

    def test_fewer_params_than_adaptive(self, data):
        ds, _, _ = data
        adaptive = create_model("graph-wavenet", ds.num_nodes, ds.adjacency,
                                seed=0)
        fixed = create_model("graph-wavenet", ds.num_nodes, ds.adjacency,
                             seed=0, adaptive_adjacency=False)
        assert fixed.num_parameters() < adaptive.num_parameters()

    def test_forward_and_gradients(self, data):
        ds, x, y_scaled = data
        fixed = create_model("graph-wavenet", ds.num_nodes, ds.adjacency,
                             seed=0, adaptive_adjacency=False)
        loss = fixed.training_loss(x, y_scaled)
        loss.backward()
        assert all(p.grad is not None for p in fixed.parameters())

    def test_adaptive_accessor_raises_when_disabled(self, data):
        ds, _, _ = data
        fixed = create_model("graph-wavenet", ds.num_nodes, ds.adjacency,
                             seed=0, adaptive_adjacency=False)
        with pytest.raises(RuntimeError):
            fixed.blocks[0].graph_conv.adaptive_adjacency()


class TestDayOfWeekFeature:
    def test_third_feature_present(self):
        data = load_dataset("pemsd8", scale="ci",
                            window=WindowConfig(include_day_of_week=True))
        assert data.supervised.train.x.shape[-1] == 3
        feature = data.supervised.train.x[:, :, :, 2]
        assert feature.min() >= 0.0
        assert feature.max() <= 1.0

    def test_models_accept_three_features(self):
        from repro.core import TrainingConfig, run_experiment
        data = load_dataset("pemsd8", scale="ci",
                            window=WindowConfig(include_day_of_week=True))
        result = run_experiment("stg2seq", data,
                                TrainingConfig(epochs=1,
                                               max_batches_per_epoch=2),
                                seed=0)
        assert np.isfinite(result.evaluation.full[15].mae)

    def test_requires_day_array(self):
        from repro.datasets import make_windows
        with pytest.raises(ValueError, match="day_of_week"):
            make_windows(np.random.default_rng(0).normal(50, 5, (300, 3)),
                         (np.arange(300) % 288) / 288,
                         WindowConfig(include_day_of_week=True))
