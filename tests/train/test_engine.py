"""The unified training engine: parity, callbacks, resume, schedules."""

import dataclasses

import numpy as np
import pytest

from repro.core import TrainingConfig, mae, predict, train_model
from repro.models import create_model
from repro.nn import Module, Parameter, Tensor
from repro.obs import EventBus, MemorySink
from repro.train import (Callback, CheckpointCallback, Engine,
                         default_callbacks)

FAST = TrainingConfig(epochs=2, batch_size=32, max_batches_per_epoch=3,
                      learning_rate=0.01)


def linear(ci_dataset, seed=0):
    return create_model("linear", ci_dataset.num_nodes,
                        ci_dataset.adjacency, seed=seed)


def capture_optimizer(captured):
    """An ``optimizer_factory`` that exposes the engine's optimizer."""
    from repro.train.engine import _default_optimizer

    def factory(model, config):
        captured["optimizer"] = _default_optimizer(model, config)
        return captured["optimizer"]

    return factory


class TestEngineParity:
    def test_fit_equals_train_model(self, ci_dataset):
        """``train_model`` is the engine; identical seeds, identical runs."""
        model_a = linear(ci_dataset)
        history_a = train_model(model_a, ci_dataset, FAST, seed=0)
        model_b = linear(ci_dataset)
        history_b = Engine(FAST).fit(model_b, ci_dataset, seed=0)
        assert history_a.train_losses == history_b.train_losses
        assert history_a.val_maes == history_b.val_maes
        assert history_a.best_epoch == history_b.best_epoch
        for (name, pa), (_, pb) in zip(model_a.named_parameters(),
                                       model_b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data, err_msg=name)

    def test_event_sequence_matches_legacy_loop(self, ci_dataset):
        """Three ``batch_end`` then one ``epoch_end`` per epoch, 1-based."""
        config = dataclasses.replace(FAST, grad_clip=1e9)   # never rescales
        sink = MemorySink()
        history = Engine(config).fit(linear(ci_dataset), ci_dataset,
                                     seed=0, bus=EventBus([sink]))
        kinds = [e.kind for e in sink.events if e.kind != "span"]
        assert kinds == (["batch_end"] * 3 + ["epoch_end"]) * 2

        batches = sink.of_kind("batch_end")
        assert [(e.epoch, e.batch) for e in batches] == [
            (1, 1), (1, 2), (1, 3), (2, 1), (2, 2), (2, 3)]
        for epoch_index, event in enumerate(sink.of_kind("epoch_end")):
            assert event.epoch == epoch_index + 1
            assert event.total_epochs == config.epochs
            assert event.train_loss == history.train_losses[epoch_index]
            assert event.val_mae == history.val_maes[epoch_index]
            assert event.seconds == history.epoch_seconds[epoch_index]

    def test_verbose_console_output_byte_identical(self, ci_dataset,
                                                   capsys):
        config = dataclasses.replace(FAST, verbose=True)
        history = Engine(config).fit(linear(ci_dataset), ci_dataset, seed=0)
        out = capsys.readouterr().out
        expected = "".join(
            f"  epoch {epoch + 1}/{config.epochs} "
            f"loss={history.train_losses[epoch]:.4f} "
            f"val_mae={history.val_maes[epoch]:.4f} "
            f"({history.epoch_seconds[epoch]:.1f}s)\n"
            for epoch in range(config.epochs))
        assert out == expected

    def test_default_optimizer_is_fused_arena_adam(self, ci_dataset):
        captured = {}
        engine = Engine(FAST, optimizer_factory=capture_optimizer(captured))
        model = linear(ci_dataset)
        engine.fit(model, ci_dataset, seed=0)
        optimizer = captured["optimizer"]
        assert optimizer.arena is not None
        assert optimizer.arena.covers(model.parameters())
        assert optimizer.weight_decay == FAST.weight_decay


class TestGradClipTelemetry:
    def test_emitted_only_when_rescaling(self, ci_dataset):
        sink = MemorySink()
        config = dataclasses.replace(FAST, grad_clip=1e-9)  # always clips
        Engine(config).fit(linear(ci_dataset), ci_dataset, seed=0,
                           bus=EventBus([sink]))
        kinds = [e.kind for e in sink.events if e.kind != "span"]
        assert kinds == ((["grad_clip", "batch_end"] * 3 + ["epoch_end"])
                         * 2)
        for event in sink.of_kind("grad_clip"):
            assert event.norm > event.max_norm
            assert event.max_norm == 1e-9

    def test_silent_when_inside_ball(self, ci_dataset):
        sink = MemorySink()
        config = dataclasses.replace(FAST, grad_clip=1e9)
        Engine(config).fit(linear(ci_dataset), ci_dataset, seed=0,
                           bus=EventBus([sink]))
        assert sink.of_kind("grad_clip") == []

    def test_disabled_clipping_skips_entirely(self, ci_dataset):
        sink = MemorySink()
        config = dataclasses.replace(FAST, grad_clip=0.0)
        history = Engine(config).fit(linear(ci_dataset), ci_dataset,
                                     seed=0, bus=EventBus([sink]))
        assert sink.of_kind("grad_clip") == []
        assert len(history.train_losses) == config.epochs


class FrozenModel(Module):
    """Has parameters, but its training loss is a constant (no gradient)."""

    def __init__(self):
        super().__init__()
        self.w = Parameter(np.ones(3))

    def forward(self, x):
        return x

    def training_loss(self, x, y):
        return Tensor(np.asarray(1.0))


class TestUntrainableModels:
    def test_detected_before_first_epoch(self, ci_dataset):
        sink = MemorySink()
        model = FrozenModel()
        model.eval()
        history = Engine(FAST).fit(model, ci_dataset, seed=0,
                                   bus=EventBus([sink]))
        assert history.train_losses == []
        assert history.val_maes == []
        assert sink.events == []                 # not a single batch ran
        assert model.training is False           # no stale train() mode

    def test_parameter_free_baseline_skipped(self, ci_dataset):
        model = create_model("last-value", ci_dataset.num_nodes,
                             ci_dataset.adjacency)
        history = Engine(FAST).fit(model, ci_dataset, seed=0)
        assert history.train_losses == []


class Recorder(Callback):
    def __init__(self):
        self.calls = []

    def on_fit_start(self, state):
        self.calls.append("fit_start")

    def on_epoch_start(self, state):
        self.calls.append("epoch_start")

    def on_after_backward(self, state):
        self.calls.append("after_backward")

    def on_batch_end(self, state):
        self.calls.append("batch_end")

    def on_epoch_train_end(self, state):
        self.calls.append("epoch_train_end")

    def on_epoch_end(self, state):
        self.calls.append("epoch_end")

    def on_fit_end(self, state):
        self.calls.append("fit_end")


class TestCallbackProtocol:
    def test_hook_order(self, ci_dataset):
        recorder = Recorder()
        config = TrainingConfig(epochs=1, max_batches_per_epoch=1)
        Engine(config, callbacks=[recorder]).fit(linear(ci_dataset),
                                                 ci_dataset, seed=0)
        assert recorder.calls == [
            "fit_start", "epoch_start", "after_backward", "batch_end",
            "epoch_train_end", "epoch_end", "fit_end"]

    def test_callback_stop_request_honoured(self, ci_dataset):
        class StopNow(Callback):
            def on_epoch_end(self, state):
                state.stop = True

        config = TrainingConfig(epochs=5, max_batches_per_epoch=1)
        callbacks = default_callbacks(config) + [StopNow()]
        history = Engine(config, callbacks=callbacks).fit(
            linear(ci_dataset), ci_dataset, seed=0)
        assert len(history.train_losses) == 1

    def test_unknown_schedule_rejected_at_fit_start(self, ci_dataset):
        config = TrainingConfig(epochs=1, lr_schedule="linear-warmup")
        with pytest.raises(ValueError, match="unknown lr_schedule"):
            Engine(config).fit(linear(ci_dataset), ci_dataset, seed=0)


class TestScheduleAndPatience:
    def test_best_restore_keeps_scheduled_lr(self, ci_dataset):
        """Restoring the best weights must not resurrect the pre-schedule
        learning rate: the optimizer stays where the schedule left it."""
        captured = {}
        config = TrainingConfig(epochs=4, max_batches_per_epoch=3,
                                learning_rate=0.1,
                                lr_schedule="exponential")
        engine = Engine(config,
                        optimizer_factory=capture_optimizer(captured))
        model = linear(ci_dataset)
        history = engine.fit(model, ci_dataset, seed=0)
        assert captured["optimizer"].lr == pytest.approx(0.1 * 0.9 ** 4,
                                                         rel=1e-12)
        prediction, _ = predict(model, ci_dataset.supervised.val,
                                ci_dataset.supervised.scaler)
        final_val = mae(prediction, ci_dataset.supervised.val.y)
        assert final_val == pytest.approx(min(history.val_maes), rel=1e-9)

    def test_early_stop_leaves_lr_at_stopping_epoch(self, ci_dataset):
        captured = {}
        config = TrainingConfig(epochs=50, max_batches_per_epoch=2,
                                learning_rate=0.3, patience=1,
                                lr_schedule="exponential")
        engine = Engine(config,
                        optimizer_factory=capture_optimizer(captured))
        history = engine.fit(linear(ci_dataset), ci_dataset, seed=0)
        epochs_ran = len(history.train_losses)
        assert epochs_ran < 50                  # patience actually fired
        assert captured["optimizer"].lr == pytest.approx(
            0.3 * 0.9 ** epochs_ran, rel=1e-12)


class TestCheckpointResume:
    def test_resume_continues_epochs_and_schedule(self, ci_dataset,
                                                  tmp_path):
        path = tmp_path / "run.npz"
        full = TrainingConfig(epochs=4, max_batches_per_epoch=2,
                              learning_rate=0.1, lr_schedule="exponential")
        half = dataclasses.replace(full, epochs=2)

        callbacks = default_callbacks(half) + [CheckpointCallback(path)]
        Engine(half, callbacks=callbacks).fit(linear(ci_dataset),
                                              ci_dataset, seed=0)
        metadata = _peek_metadata(path, linear(ci_dataset))
        assert metadata["epoch"] == 2
        assert metadata["scheduler_epoch"] == 2
        assert "val_mae" in metadata

        captured = {}
        engine = Engine(full, optimizer_factory=capture_optimizer(captured))
        resumed = engine.fit(linear(ci_dataset, seed=5), ci_dataset,
                             seed=0, resume_from=path)
        assert len(resumed.train_losses) == 2   # epochs 3 and 4 only
        # The schedule continued from the restored counter: four total
        # decay steps, not a restart from the config learning rate.
        assert captured["optimizer"].lr == pytest.approx(0.1 * 0.9 ** 4,
                                                         rel=1e-12)

    def test_checkpoint_every_n_epochs(self, ci_dataset, tmp_path):
        path = tmp_path / "run.npz"
        config = TrainingConfig(epochs=3, max_batches_per_epoch=1)
        sink = MemorySink()
        callbacks = default_callbacks(config) + [
            CheckpointCallback(path, every=2)]
        Engine(config, callbacks=callbacks).fit(
            linear(ci_dataset), ci_dataset, seed=0, bus=EventBus([sink]))
        saves = sink.of_kind("checkpoint_saved")
        assert len(saves) == 1                  # only epoch 2 qualifies
        assert _peek_metadata(path, linear(ci_dataset))["epoch"] == 2


def _peek_metadata(path, model):
    from repro.nn.checkpoint import load_checkpoint
    return load_checkpoint(path, model)


class TestEmptyEpochGuard:
    def test_max_batches_zero_rejected_upfront(self, ci_dataset):
        config = TrainingConfig(epochs=1, max_batches_per_epoch=0)
        with pytest.raises(ValueError, match="max_batches_per_epoch"):
            Engine(config).fit(linear(ci_dataset), ci_dataset, seed=0)

    def test_max_batches_negative_rejected(self, ci_dataset):
        config = TrainingConfig(epochs=1, max_batches_per_epoch=-3)
        with pytest.raises(ValueError, match="must be >= 1"):
            Engine(config).fit(linear(ci_dataset), ci_dataset, seed=0)

    def test_tiny_split_with_drop_last_loader_raises(self, ci_dataset):
        """A split smaller than one batch used to yield NaN epoch losses
        (np.mean of an empty list); now it fails loudly."""
        import repro.train.engine as engine_module
        from repro.datasets import DataLoader

        class DropLastLoader(DataLoader):
            def __init__(self, split, **kwargs):
                kwargs["drop_last"] = True
                super().__init__(split, **kwargs)

        config = TrainingConfig(epochs=1, batch_size=10 ** 6)
        engine = Engine(config)
        original = engine_module.DataLoader
        engine_module.DataLoader = DropLastLoader
        try:
            with pytest.raises(RuntimeError,
                               match="produced no training batches"):
                engine.fit(linear(ci_dataset), ci_dataset, seed=0)
        finally:
            engine_module.DataLoader = original


class TestTargetScalingHoist:
    def test_loader_targets_match_per_batch_transform(self, ci_dataset):
        """The hoisted target scaling must equal the historical per-batch
        ``scaler.transform(y)`` bit for bit."""
        from repro.datasets import DataLoader

        supervised = ci_dataset.supervised
        loader = DataLoader(supervised.train, batch_size=32, shuffle=True,
                            seed=0, target_scaler=supervised.scaler)
        reference = DataLoader(supervised.train, batch_size=32, shuffle=True,
                               seed=0)
        for (x, y_scaled, s), (x_ref, y_raw, s_ref) in zip(loader, reference):
            np.testing.assert_array_equal(x, x_ref)
            np.testing.assert_array_equal(s, s_ref)
            np.testing.assert_array_equal(
                y_scaled, supervised.scaler.transform(y_raw))

    def test_loss_parity_with_per_batch_transform(self, ci_dataset):
        """Training with hoisted scaling reproduces the legacy loop's
        losses exactly (same floats into the same loss)."""
        from repro.datasets import DataLoader
        from repro.nn.optim import Adam, clip_grad_norm

        supervised = ci_dataset.supervised
        config = FAST

        engine_model = linear(ci_dataset)
        engine_history = Engine(config).fit(engine_model, ci_dataset, seed=0)

        legacy_model = linear(ci_dataset)
        optimizer = Adam(legacy_model.flatten_parameters(),
                         lr=config.learning_rate,
                         weight_decay=config.weight_decay)
        loader = DataLoader(supervised.train, batch_size=config.batch_size,
                            shuffle=True, seed=0)
        legacy_losses = []
        for epoch in range(config.epochs):
            legacy_model.train()
            epoch_losses = []
            for batch_index, (x, y, _) in enumerate(loader):
                if batch_index >= config.max_batches_per_epoch:
                    break
                y_scaled = supervised.scaler.transform(y)   # per batch
                loss = legacy_model.training_loss(Tensor(x), Tensor(y_scaled))
                optimizer.zero_grad()
                loss.backward(free_graph=True)
                clip_grad_norm(optimizer.arena, config.grad_clip)
                optimizer.step()
                epoch_losses.append(loss.item())
            legacy_losses.append(float(np.mean(epoch_losses)))
        assert engine_history.train_losses == legacy_losses
        for (name, pa), (_, pb) in zip(engine_model.named_parameters(),
                                       legacy_model.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data, err_msg=name)
