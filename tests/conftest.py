"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.graph import build_network, gaussian_adjacency


@pytest.fixture(scope="session", autouse=True)
def _hermetic_cache(tmp_path_factory):
    """Point the dataset cache at a per-session temp dir so tests never
    read from (or pollute) the user's ``~/.cache/repro``."""
    import os

    cache_dir = tmp_path_factory.mktemp("repro-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    yield cache_dir
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


def numerical_gradient(func, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``func()`` w.r.t. ``array``.

    ``func`` must read ``array`` by reference (it is perturbed in place).
    """
    grad = np.zeros_like(array)
    iterator = np.nditer(array, flags=["multi_index"])
    for _ in iterator:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + eps
        plus = func()
        array[index] = original - eps
        minus = func()
        array[index] = original
        grad[index] = (plus - minus) / (2 * eps)
    return grad


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_network():
    return build_network(6, topology="corridor", seed=3)


@pytest.fixture(scope="session")
def small_adjacency(small_network):
    return gaussian_adjacency(small_network)


@pytest.fixture(scope="session")
def ci_dataset():
    """A tiny speed dataset shared across tests (expensive to build)."""
    return load_dataset("metr-la", scale="ci")


@pytest.fixture(scope="session")
def ci_flow_dataset():
    return load_dataset("pemsd8", scale="ci")
