"""End-to-end integration: full paper pipeline at miniature scale."""

import numpy as np
import pytest

from repro import TrainingConfig, load_dataset, run_experiment
from repro.core import (aggregate_runs, classify_intervals, fig1_table,
                        fig2_table, horizon_curve, leaderboard, predict,
                        save_results, load_results, table3)
from repro.models import create_model
from repro.nn import no_grad
from repro.nn.profiler import profile

FAST = TrainingConfig(epochs=2, max_batches_per_epoch=4)


class TestFullPipeline:
    """Dataset -> train -> evaluate -> aggregate -> report, twice over."""

    @pytest.fixture(scope="class")
    def results(self, ci_dataset, ci_flow_dataset):
        cells = []
        for data in (ci_dataset, ci_flow_dataset):
            for model in ("linear", "stg2seq"):
                runs = [run_experiment(model, data, FAST, seed=s)
                        for s in range(2)]
                cells.append(aggregate_runs(runs))
        return cells

    def test_speed_and_flow_cells(self, results):
        datasets = {r.dataset_name for r in results}
        assert datasets == {"metr-la", "pemsd8"}

    def test_all_tables_render(self, results):
        for dataset in ("metr-la", "pemsd8"):
            assert "MAE@15m" in fig1_table(results, dataset)
            assert "# params" in table3(results, dataset)
            assert "degr%" in fig2_table(results, dataset)
        assert "Friedman" in leaderboard(results)

    def test_json_roundtrip_preserves_tables(self, results, tmp_path):
        path = tmp_path / "cells.json"
        save_results(results, path)
        loaded = load_results(path)
        assert fig1_table(loaded, "metr-la") == fig1_table(results, "metr-la")

    def test_trained_beats_untrained(self, ci_dataset):
        trained = run_experiment("stg2seq", ci_dataset,
                                 TrainingConfig(epochs=3,
                                                max_batches_per_epoch=12),
                                 seed=0)
        untrained = run_experiment("stg2seq", ci_dataset,
                                   TrainingConfig(epochs=0), seed=0)
        assert (trained.evaluation.full[15].mae
                < untrained.evaluation.full[15].mae)

    def test_difficult_interval_consistency(self, results):
        """Difficult intervals are harder for trained models.

        (Not asserted for the barely-trained linear baseline: a model with
        a systematic bias can coincidentally do better inside volatile
        regions — the tendency is a property of fitted models, not a
        theorem.)
        """
        for cell in results:
            if cell.model_name != "stg2seq":
                continue
            for minutes in (15, 30, 60):
                hard = cell.metric(minutes, "mae", difficult=True).mean
                full = cell.metric(minutes, "mae").mean
                assert hard > full


class TestCrossModuleConsistency:
    def test_horizon_curve_matches_point_metrics(self, ci_dataset):
        model = create_model("linear", ci_dataset.num_nodes,
                             ci_dataset.adjacency, seed=0)
        from repro.core import train_model, evaluate_model
        train_model(model, ci_dataset, FAST)
        evaluation = evaluate_model(model, ci_dataset)
        prediction, _ = predict(model, ci_dataset.supervised.test,
                                ci_dataset.supervised.scaler)
        curve = horizon_curve(prediction, ci_dataset.supervised.test.y)
        assert curve[2] == pytest.approx(evaluation.full[15].mae)
        assert curve[5] == pytest.approx(evaluation.full[30].mae)
        assert curve[11] == pytest.approx(evaluation.full[60].mae)

    def test_pattern_classes_bracket_difficult_mae(self, ci_dataset):
        model = create_model("linear", ci_dataset.num_nodes,
                             ci_dataset.adjacency, seed=0)
        from repro.core import train_model, evaluate_patterns
        train_model(model, ci_dataset, FAST)
        prediction, _ = predict(model, ci_dataset.supervised.test,
                                ci_dataset.supervised.scaler)
        masks = classify_intervals(ci_dataset.supervised.series)
        split = ci_dataset.supervised.test
        metrics = evaluate_patterns(prediction, split.y, masks,
                                    split.start_index)
        hard = metrics["difficult"][15].mae
        classes = [metrics["recurring"][15].mae,
                   metrics["non_recurring"][15].mae]
        finite = [c for c in classes if np.isfinite(c)]
        assert min(finite) <= hard <= max(finite)

    def test_no_grad_halves_graph_nodes(self, ci_dataset):
        """Eval under no_grad must not build backward graphs."""
        from repro.nn import Tensor
        model = create_model("stg2seq", ci_dataset.num_nodes,
                             ci_dataset.adjacency, seed=0)
        x = Tensor(ci_dataset.supervised.train.x[:2])
        model.eval()
        with profile() as report:
            with no_grad():
                out = model(x)
        assert out.requires_grad is False
        # All created nodes must be grad-free leaves (parents dropped).
        assert report.total_nodes > 0

    def test_seed_chain_reproducibility(self, ci_dataset):
        """Same seed -> byte-identical metric values end to end."""
        a = run_experiment("stg2seq", ci_dataset, FAST, seed=3)
        b = run_experiment("stg2seq", ci_dataset, FAST, seed=3)
        assert a.evaluation.full[60].mae == b.evaluation.full[60].mae
        assert a.history.train_losses == b.history.train_losses
