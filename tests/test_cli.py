"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nope", "metr-la"])


class TestCommands:
    def test_datasets_lists_all_seven(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("metr-la", "pems-bay", "pemsd7m", "pemsd3", "pemsd4",
                     "pemsd7", "pemsd8"):
            assert name in out

    def test_models_lists_registry(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "graph-wavenet" in out
        assert "stsgcn" in out

    def test_run_prints_metrics(self, capsys):
        code = main(["run", "linear", "pemsd8", "--epochs", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MAE" in out
        assert "params=" in out

    def test_benchmark_and_save(self, capsys, tmp_path):
        path = tmp_path / "results.json"
        code = main(["benchmark", "--models", "linear", "last-value",
                     "--datasets", "pemsd8", "--epochs", "1",
                     "--repeats", "1", "--max-batches", "2",
                     "--save", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig.1" in out
        assert "Table III" in out
        payload = json.loads(path.read_text())
        assert len(payload) == 2

    def test_report_renders_saved_results(self, capsys, tmp_path):
        path = tmp_path / "results.json"
        main(["benchmark", "--models", "linear", "last-value",
              "--datasets", "pemsd8", "--epochs", "1", "--repeats", "1",
              "--max-batches", "2", "--save", str(path)])
        capsys.readouterr()
        assert main(["report", str(path), "--table", "table3"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert main(["report", str(path), "--table", "fig2",
                     "--dataset", "pemsd8"]) == 0
        assert "difficult" in capsys.readouterr().out

    def test_report_leaderboard(self, capsys, tmp_path):
        path = tmp_path / "results.json"
        main(["benchmark", "--models", "linear", "last-value",
              "historical-average", "--datasets", "pemsd8", "metr-la",
              "--epochs", "1", "--repeats", "1", "--max-batches", "1",
              "--save", str(path)])
        capsys.readouterr()
        assert main(["report", str(path), "--table", "leaderboard"]) == 0
        out = capsys.readouterr().out
        assert "Friedman" in out
        assert "rank@15m" in out

    def test_profile_prints_census(self, capsys):
        assert main(["profile", "stg2seq", "--dataset", "pemsd8",
                     "--batch-size", "2"]) == 0
        out = capsys.readouterr().out
        assert "op census" in out
        assert "matmul" in out
        assert "TOTAL" in out

    def test_simulate_writes_npz(self, capsys, tmp_path):
        path = tmp_path / "world.npz"
        assert main(["simulate", "pemsd8", str(path)]) == 0
        assert path.exists()
        from repro.datasets import load_saved_dataset
        loaded = load_saved_dataset(path)
        assert loaded.spec.name == "pemsd8"


class TestTraceCommands:
    def test_run_with_trace_writes_trace_and_manifest(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        code = main(["run", "linear", "pemsd8", "--epochs", "1",
                     "--trace", str(trace)])
        assert code == 0
        assert trace.exists()
        manifest = tmp_path / "run.json"
        payload = json.loads(manifest.read_text())
        assert payload["model"] == "linear"
        assert payload["wall_seconds"] > 0
        from repro.obs import read_trace, validate_trace
        assert validate_trace(trace) == []
        kinds = [e.kind for e in read_trace(trace)]
        assert "epoch_end" in kinds and "run_finished" in kinds
        assert "Trace written to" in capsys.readouterr().out

    def test_run_quiet_suppresses_epoch_lines(self, capsys):
        assert main(["run", "linear", "pemsd8", "--epochs", "1",
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "epoch 1/1" not in out
        assert "MAE" in out                      # summary still printed

    def test_run_verbose_prints_epoch_lines_by_default(self, capsys):
        assert main(["run", "linear", "pemsd8", "--epochs", "1"]) == 0
        assert "epoch 1/1" in capsys.readouterr().out

    def test_trace_summarize_renders_report(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        main(["run", "linear", "pemsd8", "--epochs", "1", "--quiet",
              "--trace", str(trace)])
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Trace [linear @ pemsd8, seed 0]" in out
        assert "val MAE" in out
        assert "hardMAE" in out

    def test_trace_summarize_rejects_invalid_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("definitely not json\n")
        assert main(["trace", "summarize", str(bad)]) == 1
        assert "invalid trace" in capsys.readouterr().err

    def test_trace_summarize_missing_file(self, capsys, tmp_path):
        assert main(["trace", "summarize", str(tmp_path / "nope.jsonl")]) == 1
        assert "cannot read trace" in capsys.readouterr().err

    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        trace = tmp_path_factory.mktemp("cli-trace") / "trace.jsonl"
        main(["run", "linear", "pemsd8", "--epochs", "1", "--quiet",
              "--trace", str(trace)])
        return trace

    def test_trace_spans_renders_table(self, capsys, traced):
        assert main(["trace", "spans", str(traced)]) == 0
        out = capsys.readouterr().out
        assert "root(s)" in out
        assert "experiment/run" in out
        assert "train/batch" in out
        assert "self s" in out

    def test_trace_export_chrome(self, capsys, traced, tmp_path):
        out_path = tmp_path / "timeline.json"
        assert main(["trace", "export", str(traced), "--format", "chrome",
                     "--output", str(out_path)]) == 0
        assert "perfetto" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert "X" in phases and "i" in phases
        assert payload["displayTimeUnit"] == "ms"

    def test_trace_export_default_output_path(self, capsys, traced):
        assert main(["trace", "export", str(traced)]) == 0
        default = traced.with_suffix(".jsonl.chrome.json")
        assert default.exists()

    def test_trace_tolerates_unknown_event_kinds(self, capsys, traced,
                                                 tmp_path):
        """A trace containing a foreign event kind summarizes with a
        warning instead of hard-failing (forward compatibility)."""
        mixed = tmp_path / "mixed.jsonl"
        mixed.write_text(traced.read_text()
                         + '{"event": "from_the_future", "t": 1.0}\n')
        assert main(["trace", "summarize", str(mixed)]) == 0
        captured = capsys.readouterr()
        assert "Trace [linear @ pemsd8, seed 0]" in captured.out
        assert "unknown event kind 'from_the_future'" in captured.err
        assert "line skipped" in captured.err

    def test_benchmark_trace_dir(self, capsys, tmp_path):
        out_dir = tmp_path / "traces"
        code = main(["benchmark", "--models", "linear",
                     "--datasets", "pemsd8", "--epochs", "1",
                     "--repeats", "2", "--max-batches", "2",
                     "--trace", str(out_dir)])
        assert code == 0
        for seed in range(2):
            assert (out_dir / f"linear_pemsd8_seed{seed}.jsonl").exists()
            assert (out_dir / f"linear_pemsd8_seed{seed}.run.json").exists()


class TestCacheCommands:
    @pytest.fixture
    def cache_dir(self, tmp_path, monkeypatch):
        directory = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(directory))
        return directory

    def test_ls_empty(self, capsys, cache_dir):
        assert main(["cache", "ls"]) == 0
        assert "cache empty" in capsys.readouterr().out

    def test_ls_lists_entries(self, capsys, cache_dir):
        from repro.datasets import load_dataset
        load_dataset("metr-la", scale="ci")
        assert main(["cache", "ls"]) == 0
        out = capsys.readouterr().out
        assert "metr-la" in out
        assert "1 entry" in out

    def test_info_renders_entry(self, capsys, cache_dir):
        from repro.datasets import DatasetCache, load_dataset
        load_dataset("pemsd8", scale="ci")
        (entry,) = DatasetCache().entries()
        assert main(["cache", "info", entry.key]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["name"] == "pemsd8"
        assert "speed" in payload["arrays"]

    def test_info_unknown_key(self, capsys, cache_dir):
        assert main(["cache", "info", "feedfacefeedface"]) == 1
        assert "no cache entry" in capsys.readouterr().err

    def test_clear_removes_everything(self, capsys, cache_dir):
        from repro.datasets import DatasetCache, load_dataset
        load_dataset("metr-la", scale="ci")
        assert main(["cache", "clear"]) == 0
        assert "removed 1 entry" in capsys.readouterr().out
        assert DatasetCache().entries() == []


class TestBenchDataCommand:
    def test_bench_data_quick(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out_json = tmp_path / "BENCH_data.json"
        code = main(["bench", "data", "--mode", "quick",
                     "--json", str(out_json)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Data pipeline benchmark suite" in out
        assert "dataset_load" in out
        payload = json.loads(out_json.read_text())
        assert payload["suite"] == "data"
        assert payload["mode"] == "quick"
        names = {case["name"] for case in payload["timings"]}
        assert names == {"dataset_load", "window_build", "train_epoch",
                         "resident_memory"}

    def test_bench_data_single_case(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = main(["bench", "data", "--mode", "quick",
                     "--case", "window_build"])
        assert code == 0
        out = capsys.readouterr().out
        assert "window_build" in out
        assert "dataset_load" not in out


class TestBenchObsCommand:
    def test_bench_obs_quick(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out_json = tmp_path / "BENCH_obs.json"
        code = main(["bench", "obs", "--mode", "quick",
                     "--json", str(out_json)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Observability benchmark suite" in out
        assert "traced_train_step" in out
        payload = json.loads(out_json.read_text())
        assert payload["suite"] == "obs"
        assert payload["mode"] == "quick"
        names = {case["name"] for case in payload["timings"]}
        assert names == {"traced_train_step", "span_noop_vs_recorded",
                         "metrics_registry"}
        (traced,) = [c for c in payload["timings"]
                     if c["name"] == "traced_train_step"]
        assert "overhead_pct" in traced["meta"]

    def test_bench_obs_single_case(self, capsys):
        code = main(["bench", "obs", "--mode", "quick",
                     "--case", "span_noop_vs_recorded"])
        assert code == 0
        out = capsys.readouterr().out
        assert "span_noop_vs_recorded" in out
        assert "traced_train_step" not in out

    def test_bench_obs_unknown_case(self, capsys):
        assert main(["bench", "obs", "--mode", "quick",
                     "--case", "nope"]) == 2
        assert "unknown bench case" in capsys.readouterr().err
