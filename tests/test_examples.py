"""Smoke tests: every example script runs end-to-end at minimal settings."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(monkeypatch, capsys, script: str, *args: str) -> str:
    monkeypatch.setattr(sys, "argv", [script, *args])
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "quickstart.py",
                          "--epochs", "1", "--model", "linear",
                          "--dataset", "pemsd8")
        assert "MAE" in out
        assert "hard MAE" in out

    def test_compare_models(self, monkeypatch, capsys, tmp_path):
        save = str(tmp_path / "out.json")
        out = run_example(monkeypatch, capsys, "compare_models.py",
                          "--models", "linear", "last-value",
                          "--dataset", "pemsd8", "--epochs", "1",
                          "--repeats", "1", "--max-batches", "2",
                          "--save", save)
        assert "Fig.1" in out
        assert Path(save).exists()

    def test_difficult_intervals(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "difficult_intervals.py",
                          "--model", "linear", "--dataset", "pemsd8",
                          "--epochs", "1")
        assert "Difficult intervals cover" in out
        assert "volatile" in out

    def test_custom_dataset(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "custom_dataset.py",
                          "--nodes", "8", "--days", "4", "--epochs", "1",
                          "--model", "linear")
        assert "Results on the custom dataset" in out

    def test_error_accumulation(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "error_accumulation.py",
                          "--models", "linear", "last-value",
                          "--epochs", "1", "--repeats", "2")
        assert "Per-step MAE curves" in out
        assert "60-minute MAE" in out

    def test_incident_response(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "incident_response.py",
                          "--model", "linear", "--epochs", "1")
        assert "multiplies the model's error" in out

    def test_export_and_analyze(self, monkeypatch, capsys, tmp_path):
        out = run_example(monkeypatch, capsys, "export_and_analyze.py",
                          "--model", "linear", "--dataset", "pemsd8",
                          "--epochs", "1", "--out", str(tmp_path))
        assert "Reloaded" in out
        assert "volatility" in out
        assert list(tmp_path.glob("*.npz"))
        assert list(tmp_path.glob("*.csv"))
