"""Cross-dataset leaderboard (extension): quantifying the conclusion.

The paper concludes Graph-WaveNet "shows the best average performance" and
GMAN "has an advantage in long-term predictions".  This bench turns those
statements into average ranks over the full 8-model × 7-dataset matrix plus
a Friedman test on whether the rank differences exceed chance.
"""

from repro.core import leaderboard, rank_models
from repro.datasets import dataset_names
from repro.models import PAPER_MODELS


def test_leaderboard(benchmark, matrix):
    def run():
        results = []
        for dataset in dataset_names():
            results.extend(matrix.cells(PAPER_MODELS, dataset))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Leaderboard: average rank across all 7 datasets")
    print(leaderboard(results))

    short = rank_models(results, minutes=15).average_rank()
    long = rank_models(results, minutes=60).average_rank()

    # The paper's headline conclusions, as rank statements:
    # Graph-WaveNet is a top-2 model at short horizons on average...
    assert sorted(short, key=short.get).index("graph-wavenet") <= 1
    # ...and GMAN is the top long-horizon model (or within the top 2).
    assert sorted(long, key=long.get).index("gman") <= 1
