"""Input-robustness probe (extension): degraded feeds at inference time.

The paper varies target difficulty (Fig. 2); this bench varies *input*
quality instead — dead detectors, noisy readings, stale feeds — on frozen
trained models, ranking architectures by how gracefully they degrade.
Models that aggregate spatially (graph convs/attention) can compensate for
dropped sensors with neighbours; the graph-free baseline cannot.
"""

from repro.core import (add_noise, drop_sensors, format_table,
                        robustness_probe, stale_feed, train_model)
from repro.models import create_model
from .conftest import BENCH_CONFIG

MODELS = ("graph-wavenet", "gman", "gru-seq2seq")
CORRUPTIONS = [drop_sensors(0.25), add_noise(0.5), stale_feed(3)]


def test_robustness_probe(benchmark, matrix):
    data = matrix.dataset("metr-la")

    def run():
        rows = {}
        for name in MODELS:
            model = create_model(name, data.num_nodes, data.adjacency, seed=0)
            train_model(model, data, BENCH_CONFIG, seed=0)
            rows[name] = robustness_probe(model, data, CORRUPTIONS, seed=0)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = []
    corruption_names = ["clean"] + [c.name for c in CORRUPTIONS]
    for name, results in rows.items():
        table.append([name] + [f"{results[c][15].mae:.3f}"
                               for c in corruption_names])
    print()
    print("Robustness: MAE@15m under input corruptions [metr-la]")
    print(format_table(["model"] + corruption_names, table))

    for name, results in rows.items():
        clean = results["clean"][15].mae
        # dropping a quarter of the sensors must hurt...
        assert results["drop25%"][15].mae > clean
        # ...but no model should collapse by more than ~10x at this scale.
        assert results["drop25%"][15].mae < 10 * clean
