"""Ablation (extension): the architecture-family comparisons of Sec. V-A/VI.

The paper attributes accuracy differences to architectural families:

- *spatial-based* GCNs (DCRNN, Graph-WaveNet, STSGCN, STG2Seq) vs.
  *spectral-based* GCNs (STGCN, ASTGCN) — spatial wins on average;
- *attention* temporal decoding (GMAN) vs. *RNN* seq2seq (DCRNN,
  ST-MetaNet) at long horizons — attention degrades less from 15m to 60m;
- *many-to-one* recursion (STGCN) shows the largest drop across horizons.

This bench recomputes those family aggregates from the METR-LA cells.
"""

import numpy as np

from repro.core import format_table
from repro.models import PAPER_MODELS

SPATIAL_GCN = ("dcrnn", "graph-wavenet", "stsgcn", "stg2seq")
SPECTRAL_GCN = ("stgcn", "astgcn")
RNN_TEMPORAL = ("dcrnn", "st-metanet")
ATTENTION_TEMPORAL = ("gman",)


def test_ablation_families(benchmark, matrix):
    def run():
        return matrix.cells(PAPER_MODELS, "metr-la")

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    by_name = {r.model_name: r for r in results}

    def family_mae(names, minutes):
        return float(np.mean([by_name[n].full[minutes]["mae"].mean
                              for n in names]))

    def growth(names):
        """Mean relative MAE growth from 15m to 60m (error accumulation)."""
        return float(np.mean([
            by_name[n].full[60]["mae"].mean / by_name[n].full[15]["mae"].mean
            for n in names]))

    rows = [
        ["spatial GCN", f"{family_mae(SPATIAL_GCN, 15):.3f}",
         f"{family_mae(SPATIAL_GCN, 60):.3f}", f"{growth(SPATIAL_GCN):.2f}x"],
        ["spectral GCN", f"{family_mae(SPECTRAL_GCN, 15):.3f}",
         f"{family_mae(SPECTRAL_GCN, 60):.3f}", f"{growth(SPECTRAL_GCN):.2f}x"],
        ["RNN temporal", f"{family_mae(RNN_TEMPORAL, 15):.3f}",
         f"{family_mae(RNN_TEMPORAL, 60):.3f}", f"{growth(RNN_TEMPORAL):.2f}x"],
        ["attention temporal", f"{family_mae(ATTENTION_TEMPORAL, 15):.3f}",
         f"{family_mae(ATTENTION_TEMPORAL, 60):.3f}",
         f"{growth(ATTENTION_TEMPORAL):.2f}x"],
        ["many-to-one (STGCN)", f"{family_mae(('stgcn',), 15):.3f}",
         f"{family_mae(('stgcn',), 60):.3f}", f"{growth(('stgcn',)):.2f}x"],
    ]
    print()
    print("Ablation: architecture families [metr-la]")
    print(format_table(["family", "MAE@15m", "MAE@60m", "60m/15m"], rows))

    # Long-horizon error exceeds short-horizon error for every family.
    for names in (SPATIAL_GCN, SPECTRAL_GCN, RNN_TEMPORAL,
                  ATTENTION_TEMPORAL):
        assert growth(names) > 1.0
