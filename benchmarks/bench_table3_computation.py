"""Table III: computation time of the models on METR-LA.

Regenerates training time per epoch, inference time over the test set, and
parameter counts for all eight models.

Expected shape (paper Table III): STGCN has the shortest training time per
epoch but a long inference time (many-to-one recursion); Graph-WaveNet's
inference is among the fastest (one-shot decoding); GMAN is the slowest to
train; STSGCN has the largest parameter count (per-horizon modules).
"""

from repro.core import table3
from repro.models import PAPER_MODELS


def test_table3_computation(benchmark, matrix):
    def run():
        return matrix.cells(PAPER_MODELS, "metr-la")

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(table3(results, "metr-la"))

    by_name = {r.model_name: r for r in results}
    # STSGCN has the largest parameter count (its per-step output modules).
    stsgcn_params = by_name["stsgcn"].num_parameters
    for other in ("stgcn", "graph-wavenet", "stg2seq"):
        assert stsgcn_params > by_name[other].num_parameters
    # STGCN's recursive many-to-one inference is slower than Graph-WaveNet's
    # one-shot decoding.
    assert (by_name["stgcn"].inference_seconds.mean
            > by_name["graph-wavenet"].inference_seconds.mean)
    # DCRNN's sequential encoder-decoder trains slower per epoch than STGCN's
    # fully convolutional stack.
    assert (by_name["dcrnn"].train_time_per_epoch.mean
            > by_name["stgcn"].train_time_per_epoch.mean)
