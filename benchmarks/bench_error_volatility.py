"""Sec. VI quantified: error correlates with local moving std.

The paper observes that "model performance is related to the (moving)
standard deviation of intervals" and leaves the investigation open.  This
bench measures the Pearson correlation between each window's local
volatility and the model's absolute error there, plus the binned
error-vs-volatility profile.
"""

import numpy as np

from repro.core import (error_volatility_correlation, format_table,
                        volatility_profile)
from repro.core.experiment import predict, train_model
from repro.models import create_model
from .conftest import BENCH_CONFIG

MODELS = ("graph-wavenet", "gman", "stgcn")


def test_error_volatility_correlation(benchmark, matrix):
    data = matrix.dataset("metr-la")
    split = data.supervised.test

    def run():
        results = {}
        for name in MODELS:
            model = create_model(name, data.num_nodes, data.adjacency, seed=0)
            train_model(model, data, BENCH_CONFIG, seed=0)
            prediction, _ = predict(model, split, data.supervised.scaler)
            r, p = error_volatility_correlation(
                prediction, split.y, data.supervised.series,
                split.start_index)
            profile = volatility_profile(prediction, split.y,
                                         data.supervised.series,
                                         split.start_index, bins=4)
            results[name] = (r, p, profile)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, (r, p, profile) in results.items():
        low = profile.mean_error[profile.counts > 0][0]
        high = profile.mean_error[profile.counts > 0][-1]
        rows.append([name, f"{r:.3f}", f"{p:.1e}",
                     f"{low:.2f}", f"{high:.2f}", f"{high / low:.1f}x"])
    print()
    print("Error vs local volatility [metr-la], 1-step-ahead")
    print(format_table(["model", "pearson r", "p", "calm-bin MAE",
                        "volatile-bin MAE", "ratio"], rows))

    # The paper's observation: errors concentrate in volatile intervals.
    # Per-window correlations are individually noisy, so the robust check
    # is the binned profile (volatile bin worse than calm bin) for every
    # model, plus significance of the correlation for the majority.
    significant = 0
    for name, (r, p, profile) in results.items():
        assert r > 0, f"{name}: correlation {r:.3f} not positive"
        valid = profile.mean_error[profile.counts > 0]
        assert valid[-1] > valid[0], f"{name}: volatile bin not worse"
        if p < 0.01:
            significant += 1
    assert significant >= 2
