"""Kernel speedups: the fast engine vs. the reference ``np.add.at`` paths.

Times every case in :mod:`repro.nn.kernel_bench` — conv2d forward/backward,
the raw col2im scatter, split/unbind view gradients, a GRU step, and a full
STGCN training step — under both engines in one process, prints the table,
and (in ``full`` mode) asserts the speedup floor this perf overhaul claims:
≥2x on the conv2d backward microbenchmark and ≥1.5x on the STGCN train
step.  ``REPRO_BENCH_KERNELS=quick`` runs tiny shapes for a sanity pass
without the threshold asserts (small-shape timings are noise-dominated).

The recorded run behind ``BENCH_kernels.json`` at the repo root comes from
the same suite via ``python -m repro bench kernels --mode full --json
BENCH_kernels.json``.
"""

from repro.nn.kernel_bench import bench_kernels, render_timings

#: Acceptance floors (full mode only): case name -> minimum speedup.
SPEEDUP_FLOORS = {
    "conv2d_backward": 2.0,
    "stgcn_train_step": 1.5,
}


def test_kernel_speedups(benchmark, kernel_bench_mode, bench_check):
    def run():
        return bench_kernels(mode=kernel_bench_mode)

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_timings(timings))

    by_name = {t.name: t for t in timings}
    for timing in timings:
        assert timing.reference_seconds > 0 and timing.fast_seconds > 0
    if kernel_bench_mode == "full":
        for name, floor in SPEEDUP_FLOORS.items():
            assert by_name[name].speedup >= floor, (
                f"{name}: {by_name[name].speedup:.2f}x < {floor}x floor")
    bench_check("kernels", timings, kernel_bench_mode)
