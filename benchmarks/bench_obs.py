"""Tracing-overhead budget: observability must be ~free when unobserved.

Times every case in :mod:`repro.obs.obs_bench` — a full traced-but-
unobserved ``Engine.fit`` vs. the same fit with spans force-disabled,
the ``span`` context manager recorded vs. no-op, and metrics-registry
hot loops — in one process.  In ``full`` mode it asserts the contract
the span tracing PR claims: tracing an unobserved training step costs
at most :data:`OVERHEAD_BUDGET_PCT` (2%), and recording real spans into
a sink stays cheap enough for per-batch use.  ``REPRO_BENCH_OBS=quick``
runs a smaller workload for a sanity pass without the budget assert
(sub-200ms fits are noise-dominated).

The recorded run behind ``BENCH_obs.json`` at the repo root comes from
the same suite via ``python -m repro bench obs --mode full --json
BENCH_obs.json``; ``REPRO_BENCH_CHECK=1`` (or ``repro bench check``)
gates fresh timings against it.
"""

from repro.nn.kernel_bench import render_timings
from repro.obs.gate import OVERHEAD_BUDGET_PCT
from repro.obs.obs_bench import bench_obs

#: Ceiling (full mode only) on recorded-span cost: even with a live
#: MemorySink every span must stay under this many microseconds.
RECORDED_SPAN_CEILING_US = 50.0


def test_observability_overhead(benchmark, obs_bench_mode, bench_check):
    def run():
        return bench_obs(mode=obs_bench_mode)

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_timings(timings))

    by_name = {t.name: t for t in timings}
    for timing in timings:
        assert timing.reference_seconds > 0 and timing.fast_seconds > 0
    spans = by_name["span_noop_vs_recorded"].meta
    assert spans["noop_ns_per_span"] < spans["recorded_ns_per_span"]
    if obs_bench_mode == "full":
        overhead = by_name["traced_train_step"].meta["overhead_pct"]
        assert overhead <= OVERHEAD_BUDGET_PCT, (
            f"tracing an unobserved fit costs {overhead:.2f}% "
            f"(> {OVERHEAD_BUDGET_PCT}% budget)")
        assert spans["recorded_ns_per_span"] <= RECORDED_SPAN_CEILING_US * 1e3, (
            f"recorded span costs {spans['recorded_ns_per_span']:.0f}ns "
            f"(> {RECORDED_SPAN_CEILING_US}us ceiling)")
    bench_check("obs", timings, obs_bench_mode)
