"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one of the paper's artefacts (Fig. 1, Fig. 2,
Fig. 3, Table III) by training the eight models under one protocol and
printing the corresponding rows.  Because several artefacts share the same
trained cells (e.g. Table III and Fig. 2 both use METR-LA), results are
cached per session by :class:`repro.core.BenchmarkMatrix`.

Environment knobs (all optional):

- ``REPRO_BENCH_SCALE``   dataset scale preset (default ``ci``)
- ``REPRO_BENCH_EPOCHS``  training epochs per run (default 3)
- ``REPRO_BENCH_BATCHES`` max mini-batches per epoch (default 12)
- ``REPRO_BENCH_REPEATS`` repeated seeds per cell (default 2; paper uses 5)
- ``REPRO_BENCH_CACHE``   directory for a persistent cell cache (off by
  default so every invocation measures fresh timings)
- ``REPRO_BENCH_TRACE``   directory for per-run telemetry: every trained
  seed writes a JSONL event trace and a ``.run.json`` manifest next to the
  benchmark's JSON results (see ``docs/observability.md``)
- ``REPRO_BENCH_KERNELS`` workload preset for the kernel suite in
  ``bench_kernels.py`` (default ``full``; ``quick`` for a fast sanity
  pass — speedup thresholds are only asserted in ``full`` mode)
- ``REPRO_BENCH_OPTIM``   workload preset for the optimizer suite in
  ``bench_optim.py`` (default ``full``; same quick/full semantics as the
  kernel suite)
- ``REPRO_BENCH_DATA``    workload preset for the data-pipeline suite in
  ``bench_data.py`` (default ``full``; same quick/full semantics — the
  cache-hit and memory floors are only asserted in ``full`` mode)
"""

from __future__ import annotations

import os

import pytest

from repro import TrainingConfig
from repro.core import BenchmarkMatrix

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "ci")
BENCH_EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "3"))
BENCH_BATCHES = int(os.environ.get("REPRO_BENCH_BATCHES", "12"))
BENCH_REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "2"))
BENCH_CACHE = os.environ.get("REPRO_BENCH_CACHE") or None
BENCH_TRACE = os.environ.get("REPRO_BENCH_TRACE") or None
BENCH_KERNELS_MODE = os.environ.get("REPRO_BENCH_KERNELS", "full")
BENCH_OPTIM_MODE = os.environ.get("REPRO_BENCH_OPTIM", "full")
BENCH_DATA_MODE = os.environ.get("REPRO_BENCH_DATA", "full")

BENCH_CONFIG = TrainingConfig(epochs=BENCH_EPOCHS, batch_size=32,
                              max_batches_per_epoch=BENCH_BATCHES,
                              learning_rate=0.01)


@pytest.fixture(scope="session")
def matrix():
    return BenchmarkMatrix(scale=BENCH_SCALE, config=BENCH_CONFIG,
                           repeats=BENCH_REPEATS, cache_dir=BENCH_CACHE,
                           trace_dir=BENCH_TRACE)


@pytest.fixture(scope="session")
def kernel_bench_mode():
    """Workload preset for the kernel suite (``REPRO_BENCH_KERNELS``)."""
    from repro.nn.kernel_bench import BENCH_MODES

    if BENCH_KERNELS_MODE not in BENCH_MODES:
        raise ValueError(
            f"REPRO_BENCH_KERNELS={BENCH_KERNELS_MODE!r} is not a known "
            f"mode; expected one of {sorted(BENCH_MODES)}")
    return BENCH_KERNELS_MODE


@pytest.fixture(scope="session")
def optim_bench_mode():
    """Workload preset for the optimizer suite (``REPRO_BENCH_OPTIM``)."""
    from repro.nn.optim_bench import OPTIM_BENCH_MODES

    if BENCH_OPTIM_MODE not in OPTIM_BENCH_MODES:
        raise ValueError(
            f"REPRO_BENCH_OPTIM={BENCH_OPTIM_MODE!r} is not a known "
            f"mode; expected one of {sorted(OPTIM_BENCH_MODES)}")
    return BENCH_OPTIM_MODE


@pytest.fixture(scope="session")
def data_bench_mode():
    """Workload preset for the data-pipeline suite (``REPRO_BENCH_DATA``)."""
    from repro.datasets.data_bench import DATA_BENCH_MODES

    if BENCH_DATA_MODE not in DATA_BENCH_MODES:
        raise ValueError(
            f"REPRO_BENCH_DATA={BENCH_DATA_MODE!r} is not a known "
            f"mode; expected one of {sorted(DATA_BENCH_MODES)}")
    return BENCH_DATA_MODE
