"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one of the paper's artefacts (Fig. 1, Fig. 2,
Fig. 3, Table III) by training the eight models under one protocol and
printing the corresponding rows.  Because several artefacts share the same
trained cells (e.g. Table III and Fig. 2 both use METR-LA), results are
cached per session by :class:`repro.core.BenchmarkMatrix`.

Environment knobs (all optional):

- ``REPRO_BENCH_SCALE``   dataset scale preset (default ``ci``)
- ``REPRO_BENCH_EPOCHS``  training epochs per run (default 3)
- ``REPRO_BENCH_BATCHES`` max mini-batches per epoch (default 12)
- ``REPRO_BENCH_REPEATS`` repeated seeds per cell (default 2; paper uses 5)
- ``REPRO_BENCH_CACHE``   directory for a persistent cell cache (off by
  default so every invocation measures fresh timings)
- ``REPRO_BENCH_TRACE``   directory for per-run telemetry: every trained
  seed writes a JSONL event trace and a ``.run.json`` manifest next to the
  benchmark's JSON results (see ``docs/observability.md``)
- ``REPRO_BENCH_KERNELS`` workload preset for the kernel suite in
  ``bench_kernels.py`` (default ``full``; ``quick`` for a fast sanity
  pass — speedup thresholds are only asserted in ``full`` mode)
- ``REPRO_BENCH_OPTIM``   workload preset for the optimizer suite in
  ``bench_optim.py`` (default ``full``; same quick/full semantics as the
  kernel suite)
- ``REPRO_BENCH_DATA``    workload preset for the data-pipeline suite in
  ``bench_data.py`` (default ``full``; same quick/full semantics — the
  cache-hit and memory floors are only asserted in ``full`` mode)
- ``REPRO_BENCH_OBS``     workload preset for the observability suite in
  ``bench_obs.py`` (default ``full``; the ≤2% tracing-overhead budget is
  only asserted in ``full`` mode)
- ``REPRO_BENCH_CHECK``   when set to ``1``/``true``, every suite above
  additionally gates its fresh timings against the committed
  ``BENCH_<suite>.json`` baseline via :func:`repro.obs.check_records`
  (off by default; only meaningful in ``full`` mode — other modes skip
  the comparison because workloads differ)
"""

from __future__ import annotations

import os

import pytest

from repro import TrainingConfig
from repro.core import BenchmarkMatrix

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "ci")
BENCH_EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "3"))
BENCH_BATCHES = int(os.environ.get("REPRO_BENCH_BATCHES", "12"))
BENCH_REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "2"))
BENCH_CACHE = os.environ.get("REPRO_BENCH_CACHE") or None
BENCH_TRACE = os.environ.get("REPRO_BENCH_TRACE") or None
BENCH_KERNELS_MODE = os.environ.get("REPRO_BENCH_KERNELS", "full")
BENCH_OPTIM_MODE = os.environ.get("REPRO_BENCH_OPTIM", "full")
BENCH_DATA_MODE = os.environ.get("REPRO_BENCH_DATA", "full")
BENCH_OBS_MODE = os.environ.get("REPRO_BENCH_OBS", "full")
BENCH_CHECK = os.environ.get("REPRO_BENCH_CHECK", "").lower() in (
    "1", "true", "yes", "on")

BENCH_CONFIG = TrainingConfig(epochs=BENCH_EPOCHS, batch_size=32,
                              max_batches_per_epoch=BENCH_BATCHES,
                              learning_rate=0.01)


@pytest.fixture(scope="session")
def matrix():
    return BenchmarkMatrix(scale=BENCH_SCALE, config=BENCH_CONFIG,
                           repeats=BENCH_REPEATS, cache_dir=BENCH_CACHE,
                           trace_dir=BENCH_TRACE)


@pytest.fixture(scope="session")
def kernel_bench_mode():
    """Workload preset for the kernel suite (``REPRO_BENCH_KERNELS``)."""
    from repro.nn.kernel_bench import BENCH_MODES

    if BENCH_KERNELS_MODE not in BENCH_MODES:
        raise ValueError(
            f"REPRO_BENCH_KERNELS={BENCH_KERNELS_MODE!r} is not a known "
            f"mode; expected one of {sorted(BENCH_MODES)}")
    return BENCH_KERNELS_MODE


@pytest.fixture(scope="session")
def optim_bench_mode():
    """Workload preset for the optimizer suite (``REPRO_BENCH_OPTIM``)."""
    from repro.nn.optim_bench import OPTIM_BENCH_MODES

    if BENCH_OPTIM_MODE not in OPTIM_BENCH_MODES:
        raise ValueError(
            f"REPRO_BENCH_OPTIM={BENCH_OPTIM_MODE!r} is not a known "
            f"mode; expected one of {sorted(OPTIM_BENCH_MODES)}")
    return BENCH_OPTIM_MODE


@pytest.fixture(scope="session")
def data_bench_mode():
    """Workload preset for the data-pipeline suite (``REPRO_BENCH_DATA``)."""
    from repro.datasets.data_bench import DATA_BENCH_MODES

    if BENCH_DATA_MODE not in DATA_BENCH_MODES:
        raise ValueError(
            f"REPRO_BENCH_DATA={BENCH_DATA_MODE!r} is not a known "
            f"mode; expected one of {sorted(DATA_BENCH_MODES)}")
    return BENCH_DATA_MODE


@pytest.fixture(scope="session")
def obs_bench_mode():
    """Workload preset for the observability suite (``REPRO_BENCH_OBS``)."""
    from repro.obs.obs_bench import OBS_BENCH_MODES

    if BENCH_OBS_MODE not in OBS_BENCH_MODES:
        raise ValueError(
            f"REPRO_BENCH_OBS={BENCH_OBS_MODE!r} is not a known "
            f"mode; expected one of {sorted(OBS_BENCH_MODES)}")
    return BENCH_OBS_MODE


@pytest.fixture(scope="session")
def bench_check():
    """Gate fresh suite timings against the committed baseline.

    Returns ``check(suite, timings, mode)``; when ``REPRO_BENCH_CHECK``
    is on and ``BENCH_<suite>.json`` exists at the repo root, the fresh
    timings are compared via :func:`repro.obs.check_records` and the
    test fails on any regression (mode mismatches are reported as
    skipped, never failed).  A no-op when the knob is off.
    """
    from pathlib import Path

    from repro.nn.kernel_bench import timings_to_record
    from repro.obs.gate import check_records, load_bench_record

    root = Path(__file__).resolve().parent.parent

    def check(suite, timings, mode):
        if not BENCH_CHECK:
            return None
        baseline_path = root / f"BENCH_{suite}.json"
        if not baseline_path.exists():
            return None
        current = timings_to_record(timings, mode, suite=suite)
        report = check_records(current, load_bench_record(baseline_path))
        print()
        print(report.render())
        assert report.passed, (
            f"bench check failed against {baseline_path.name}: "
            + "; ".join(f.detail or f.status for f in report.failures))
        return report

    return check
