"""Per-step error curves (extension of Fig. 1's three sampled horizons).

Renders the full 12-step MAE curve for an autoregressive model (DCRNN),
a one-shot TCN (Graph-WaveNet), and the attention decoder (GMAN) —
making the paper's Sec. VI error-accumulation lesson visible step by step.
"""

import numpy as np

from repro.core import horizon_curve, render_curves
from repro.core.experiment import predict, train_model
from repro.models import create_model
from .conftest import BENCH_CONFIG

MODELS = ("dcrnn", "graph-wavenet", "gman", "stgcn")


def test_horizon_curves(benchmark, matrix):
    data = matrix.dataset("metr-la")
    split = data.supervised.test

    def run():
        curves = {}
        for name in MODELS:
            model = create_model(name, data.num_nodes, data.adjacency, seed=0)
            train_model(model, data, BENCH_CONFIG, seed=0)
            prediction, _ = predict(model, split, data.supervised.scaler)
            curves[name] = horizon_curve(prediction, split.y)
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Per-step MAE curves [metr-la] (steps 1..12 = 5..60 minutes):")
    print(render_curves(curves))

    for name, curve in curves.items():
        assert np.isfinite(curve).all(), name
        # error grows with horizon for every model
        assert curve[-1] > curve[0], name
    # the autoregressive model's curve grows at least as fast as GMAN's
    from repro.core import curve_steepness
    assert (curve_steepness(curves["dcrnn"])
            > 0.8 * curve_steepness(curves["gman"]))
