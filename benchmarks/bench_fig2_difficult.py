"""Fig. 2: model accuracy on difficult intervals (METR-LA).

Regenerates both rows of the paper's Fig. 2: MAE restricted to the
upper-25% moving-std intervals of the test series, and the relative
performance degradation versus the full test set.

Expected shape (paper Sec. V-B): every model degrades substantially on the
difficult intervals (the paper reports 67–180%); rankings shift relative to
the full-test ordering; Graph-WaveNet/GMAN stay strongest in absolute MAE.
"""

import numpy as np

from repro.core import fig2_table
from repro.models import PAPER_MODELS


def test_fig2_difficult_intervals(benchmark, matrix):
    def run():
        return matrix.cells(PAPER_MODELS, "metr-la")

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(fig2_table(results, "metr-la"))

    # The paper's core finding: difficult intervals are harder for everyone.
    for result in results:
        for minutes in (15, 30, 60):
            hard = result.metric(minutes, "mae", difficult=True).mean
            full = result.metric(minutes, "mae").mean
            assert hard > full, (
                f"{result.model_name}@{minutes}m: difficult MAE {hard:.3f} "
                f"not worse than full {full:.3f}")
        assert result.degradation[15].mean > 0

    # Degradations are substantial (tens of percent on average).
    mean_degradation = np.mean([r.degradation[15].mean for r in results])
    assert mean_degradation > 10.0
