"""Fig. 1 (top row): accuracy of the eight models on the speed datasets.

Regenerates the paper's speed-prediction series: for each of METR-LA,
PeMS-BAY and PeMSD7(M), every model's MAE/RMSE/MAPE at the 15-, 30- and
60-minute horizons, mean ± std over repeated seeds.

Expected shape (paper Sec. V-A): Graph-WaveNet leads at 15/30 minutes;
GMAN is strongest (or close) at 60 minutes; ASTGCN trails on speed data.
"""

import pytest

from repro.core import fig1_table
from repro.datasets import SPEED_DATASETS
from repro.models import PAPER_MODELS


@pytest.mark.parametrize("dataset", SPEED_DATASETS)
def test_fig1_speed(benchmark, matrix, dataset):
    def run():
        return matrix.cells(PAPER_MODELS, dataset)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(fig1_table(results, dataset))

    # Sanity: every cell produced finite short-horizon MAE.
    for result in results:
        assert result.full[15]["mae"].mean > 0
    # Deep models beat chance: best model clearly better than worst at 15m.
    maes = {r.model_name: r.full[15]["mae"].mean for r in results}
    assert min(maes.values()) < max(maes.values())
