"""Data-pipeline speedups: lazy windows + the content-addressed cache.

Times every case in :mod:`repro.datasets.data_bench` — cold vs. cached
``load_dataset``, eager vs. lazy window construction, a full shuffled
training epoch under both pipelines, and tracemalloc peak memory of
building + iterating the dataset — in one process.  In ``full`` mode
(bench-scale worlds) it asserts the refactor's acceptance floors: cache
hits ≥5x faster than cold builds, lazy view construction ≥5x faster than
eager materialisation, lazy peak memory ≥4x below eager (measured and at
analytic paper scale), and lazy epoch throughput within 2x of eager.
``REPRO_BENCH_DATA=quick`` runs ci-scale worlds for a sanity pass without
the floors (tiny-world timings are noise-dominated).

The recorded run behind ``BENCH_data.json`` at the repo root comes from
the same suite via ``python -m repro bench data --mode full --json
BENCH_data.json``.
"""

from repro.datasets.data_bench import bench_data
from repro.nn.kernel_bench import render_timings

#: Acceptance floors (full mode only): case name -> minimum speedup.
SPEEDUP_FLOORS = {
    "dataset_load": 5.0,      # cache hit vs cold simulate+persist
    "window_build": 5.0,      # lazy views vs eager stacking
}

#: Lazy batch gathers may cost more per epoch than eager fancy-indexing;
#: they must stay within this factor (the trade buys ~24x memory).
EPOCH_SLOWDOWN_CEILING = 2.0

#: Peak-memory ratios (full mode only): eager must need at least this
#: multiple of the lazy pipeline's bytes, measured and at paper scale.
MEMORY_RATIO_FLOOR = 4.0


def test_data_pipeline_speedups(benchmark, data_bench_mode, bench_check):
    def run():
        return bench_data(mode=data_bench_mode)

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_timings(timings))

    by_name = {t.name: t for t in timings}
    for timing in timings:
        assert timing.reference_seconds > 0 and timing.fast_seconds > 0
    memory = by_name["resident_memory"].meta
    assert memory["eager_peak_bytes"] > memory["lazy_peak_bytes"]
    if data_bench_mode == "full":
        for name, floor in SPEEDUP_FLOORS.items():
            assert by_name[name].speedup >= floor, (
                f"{name}: {by_name[name].speedup:.2f}x < {floor}x floor")
        epoch = by_name["train_epoch"]
        assert epoch.speedup >= 1.0 / EPOCH_SLOWDOWN_CEILING, (
            f"train_epoch: lazy gathers {1 / epoch.speedup:.2f}x slower "
            f"than eager (> {EPOCH_SLOWDOWN_CEILING}x ceiling)")
        assert memory["memory_ratio"] >= MEMORY_RATIO_FLOOR, (
            f"measured peak-memory ratio {memory['memory_ratio']:.2f}x "
            f"< {MEMORY_RATIO_FLOOR}x floor")
        assert memory["paper_memory_ratio"] >= MEMORY_RATIO_FLOOR, (
            f"paper-scale memory ratio {memory['paper_memory_ratio']:.2f}x "
            f"< {MEMORY_RATIO_FLOOR}x floor")
    bench_check("data", timings, data_bench_mode)
