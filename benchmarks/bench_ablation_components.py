"""Component ablations (extension): testing the paper's causal attributions.

The paper *attributes* observed performance differences to specific design
choices; these benches test each attribution directly by toggling one
component at a time:

1. **Many-to-one decoding** (Sec. V-A): STGCN trained many-to-one vs. the
   same trunk with a one-shot multi-horizon head.  The paper blames STGCN's
   horizon-degradation and slow inference on recursion.
2. **Adaptive adjacency** (Graph-WaveNet's contribution): with vs. without
   the self-learned graph.
3. **Spatial modelling** (Sec. IV-A exclusion criterion): DCRNN vs. the
   identical GRU seq2seq with diffusion convolutions removed — the paper
   excluded graph-free models because "not considering graph structures...
   results in lower accuracy".
"""

from repro.core import aggregate_runs, format_table, run_experiment
from .conftest import BENCH_CONFIG, BENCH_REPEATS


def _cell(matrix, model, dataset_name, **hparams):
    data = matrix.dataset(dataset_name)
    runs = [run_experiment(model, data, BENCH_CONFIG, seed=seed, **hparams)
            for seed in range(BENCH_REPEATS)]
    return aggregate_runs(runs), runs


def test_ablation_many_to_one(benchmark, matrix):
    """STGCN: recursive many-to-one vs one-shot multi-horizon head."""

    def run():
        recursive = matrix.cell("stgcn", "metr-la")
        one_shot, _ = _cell(matrix, "stgcn", "metr-la", multi_step_head=True)
        return recursive, one_shot

    recursive, one_shot = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for label, cell in (("many-to-one (paper)", recursive),
                        ("one-shot head (ablation)", one_shot)):
        rows.append([label,
                     f"{cell.full[15]['mae'].mean:.3f}",
                     f"{cell.full[60]['mae'].mean:.3f}",
                     f"{cell.inference_seconds.mean:.3f}s"])
    print()
    print("Ablation: STGCN decoding [metr-la]")
    print(format_table(["variant", "MAE@15m", "MAE@60m", "inference"], rows))

    # The decisive attribution: recursion costs inference time — twelve
    # forward passes per forecast vs one.
    assert (recursive.inference_seconds.mean
            > 2.0 * one_shot.inference_seconds.mean)
    # Accuracy-wise the one-shot head must stay competitive; whether it
    # *beats* recursion at 60 m depends on the training budget (with our
    # short schedules the single-step objective trains faster), so we only
    # require it within 1.5x.
    assert (one_shot.full[60]["mae"].mean
            < 1.5 * recursive.full[60]["mae"].mean)
    assert one_shot.full[15]["mae"].mean < 1.5 * recursive.full[15]["mae"].mean


def test_ablation_adaptive_adjacency(benchmark, matrix):
    """Graph-WaveNet with vs without its self-learned adjacency."""

    def run():
        adaptive = matrix.cell("graph-wavenet", "metr-la")
        fixed, _ = _cell(matrix, "graph-wavenet", "metr-la",
                         adaptive_adjacency=False)
        return adaptive, fixed

    adaptive, fixed = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [["adaptive (paper)", f"{adaptive.full[15]['mae'].mean:.3f}",
             f"{adaptive.full[60]['mae'].mean:.3f}",
             f"{adaptive.num_parameters / 1000:.1f}k"],
            ["fixed supports only", f"{fixed.full[15]['mae'].mean:.3f}",
             f"{fixed.full[60]['mae'].mean:.3f}",
             f"{fixed.num_parameters / 1000:.1f}k"]]
    print()
    print("Ablation: Graph-WaveNet adjacency [metr-la]")
    print(format_table(["variant", "MAE@15m", "MAE@60m", "params"], rows))

    assert fixed.num_parameters < adaptive.num_parameters
    # Both variants must remain competitive (the fixed variant is the
    # published DCRNN-style support set); we assert both beat 2x the
    # adaptive error rather than a strict ordering, which is seed-noisy.
    assert fixed.full[15]["mae"].mean < 2.0 * adaptive.full[15]["mae"].mean


def test_ablation_spatial_modelling(benchmark, matrix):
    """DCRNN vs the same seq2seq without graph convolutions."""

    def run():
        graph = matrix.cell("dcrnn", "metr-la")
        no_graph, _ = _cell(matrix, "gru-seq2seq", "metr-la")
        return graph, no_graph

    graph, no_graph = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [["dcrnn (diffusion conv)", f"{graph.full[15]['mae'].mean:.3f}",
             f"{graph.full[60]['mae'].mean:.3f}"],
            ["gru-seq2seq (no graph)", f"{no_graph.full[15]['mae'].mean:.3f}",
             f"{no_graph.full[60]['mae'].mean:.3f}"]]
    print()
    print("Ablation: spatial modelling [metr-la]")
    print(format_table(["variant", "MAE@15m", "MAE@60m"], rows))

    # The paper's exclusion criterion: graph-free models are less accurate.
    # At tiny scale the gap can be modest; require the graph variant to be
    # at least competitive and report the numbers either way.
    assert graph.full[60]["mae"].mean < 1.5 * no_graph.full[60]["mae"].mean
