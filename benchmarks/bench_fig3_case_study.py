"""Fig. 3: per-road case study (PeMS-BAY, Graph-WaveNet).

Regenerates the paper's qualitative contrast: the same model tracks a road
with smooth dynamics closely (road "A", low MAE) while its error multiplies
on a road whose speed changes abruptly (road "B"), with the upper-25%
moving-std intervals marked on the trace.

Expected shape (paper Fig. 3): per-road MAE differs by a large factor
(the paper reports 1.0 vs 4.5, a 4.5× gap) and the volatile road's errors
concentrate inside the marked intervals.
"""

import numpy as np

from repro.core import difficult_mask, interval_segments, fig3_series, predict
from repro.core.intervals import moving_std


def test_fig3_case_study(benchmark, matrix):
    def run():
        runs = matrix.runs("graph-wavenet", "pems-bay")
        return runs[0]

    benchmark.pedantic(run, rounds=1, iterations=1)

    data = matrix.dataset("pems-bay")
    split = data.supervised.test
    # Re-create the trained model's 1-step-ahead trace: horizon step 1 of
    # consecutive windows reconstructs a contiguous prediction series.
    from repro.models import create_model
    from repro.core import TrainingConfig, train_model
    from .conftest import BENCH_CONFIG
    model = create_model("graph-wavenet", data.num_nodes, data.adjacency,
                         seed=0)
    train_model(model, data, BENCH_CONFIG, seed=0)
    prediction, _ = predict(model, split, data.supervised.scaler)

    one_step_pred = prediction[:, 0, :]                  # (S, N)
    one_step_true = split.y[:, 0, :]
    valid = one_step_true > 0
    per_road_mae = np.array([
        np.abs(one_step_pred[valid[:, n], n]
               - one_step_true[valid[:, n], n]).mean()
        for n in range(data.num_nodes)])

    # Choose the paper's two roads by test-window volatility.
    test_series = data.supervised.series[split.start_index[0]:
                                         split.start_index[-1] + 1]
    volatility = moving_std(test_series).mean(axis=0)
    smooth_road = int(volatility.argmin())
    volatile_road = int(volatility.argmax())

    hard = difficult_mask(data.supervised.series)
    print()
    for road in (smooth_road, volatile_road):
        offsets = split.start_index[:96]
        segments = interval_segments(hard[offsets, road])
        print(fig3_series(one_step_true[:96, road], one_step_pred[:96, road],
                          segments, road=road, max_points=24))
        print()
    print(f"per-road MAE: smooth road {smooth_road} = "
          f"{per_road_mae[smooth_road]:.2f}, volatile road {volatile_road} = "
          f"{per_road_mae[volatile_road]:.2f} "
          f"({per_road_mae[volatile_road] / per_road_mae[smooth_road]:.1f}x)")

    # The paper's contrast: the volatile road is substantially harder.
    assert per_road_mae[volatile_road] > per_road_mae[smooth_road]
