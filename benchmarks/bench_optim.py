"""Optimizer speedups: fused arena updates vs. the per-parameter loop.

Times every case in :mod:`repro.nn.optim_bench` — one step of each
optimizer (Adam, AdamW, SGD with momentum, RMSprop, Adagrad), global
gradient clipping, and ``zero_grad`` — on a synthetic model with hundreds
of small gate-sized parameters, under both paths in one process.  In
``full`` mode it asserts the speedup floor the flat-arena refactor claims:
≥2x on every optimizer step plus clipping and ``zero_grad``.
``REPRO_BENCH_OPTIM=quick`` runs tiny shapes for a sanity pass without the
threshold asserts (small-shape timings are noise-dominated).

The recorded run behind ``BENCH_optim.json`` at the repo root comes from
the same suite via ``python -m repro bench optim --mode full --json
BENCH_optim.json``.
"""

from repro.nn.kernel_bench import render_timings
from repro.nn.optim_bench import bench_optim

#: Acceptance floors (full mode only): case name -> minimum speedup.
SPEEDUP_FLOORS = {
    "adam_step": 2.0,
    "adamw_step": 2.0,
    "sgd_step": 2.0,
    "rmsprop_step": 2.0,
    "adagrad_step": 2.0,
    "clip_grad_norm": 2.0,
    "zero_grad": 2.0,
}


def test_optim_speedups(benchmark, optim_bench_mode, bench_check):
    def run():
        return bench_optim(mode=optim_bench_mode)

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_timings(timings))

    by_name = {t.name: t for t in timings}
    for timing in timings:
        assert timing.reference_seconds > 0 and timing.fast_seconds > 0
    if optim_bench_mode == "full":
        for name, floor in SPEEDUP_FLOORS.items():
            assert by_name[name].speedup >= floor, (
                f"{name}: {by_name[name].speedup:.2f}x < {floor}x floor")
    bench_check("optim", timings, optim_bench_mode)
