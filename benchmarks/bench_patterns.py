"""Recurring vs non-recurring difficult intervals (the paper's future work).

The paper's conclusion asks *why* model performance differs by traffic
pattern.  This bench splits METR-LA's difficult intervals into recurring
(rush-hour-like: volatile at the same time of day on most days) and
non-recurring (incident-like) and scores models separately on each —
non-recurring intervals are the harder class because they are
unpredictable from time-of-day features.
"""

import numpy as np

from repro.core import classify_intervals, evaluate_patterns, format_table
from repro.core.experiment import predict, train_model
from repro.models import create_model
from .conftest import BENCH_CONFIG

MODELS = ("graph-wavenet", "dcrnn", "st-metanet")


def test_patterns_recurring_vs_incident(benchmark, matrix):
    data = matrix.dataset("metr-la")
    masks = classify_intervals(data.supervised.series)
    split = data.supervised.test

    def run():
        rows = {}
        for name in MODELS:
            model = create_model(name, data.num_nodes, data.adjacency, seed=0)
            train_model(model, data, BENCH_CONFIG, seed=0)
            prediction, _ = predict(model, split, data.supervised.scaler)
            rows[name] = evaluate_patterns(prediction, split.y, masks,
                                           split.start_index)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"Difficult-interval composition: "
          f"{masks.recurring_fraction * 100:.0f}% recurring / "
          f"{(1 - masks.recurring_fraction) * 100:.0f}% non-recurring")
    table = []
    for name, metrics in rows.items():
        table.append([
            name,
            f"{metrics['difficult'][15].mae:.3f}",
            f"{metrics['recurring'][15].mae:.3f}",
            f"{metrics['non_recurring'][15].mae:.3f}",
        ])
    print(format_table(
        ["model", "all-hard MAE@15m", "recurring", "non-recurring"], table))

    for name, metrics in rows.items():
        hard = metrics["difficult"][15].mae
        assert np.isfinite(hard)
        # Each class is a subset of difficult cells; at least one class
        # must be at least as hard as the union's average.
        classes = [metrics["recurring"][15].mae,
                   metrics["non_recurring"][15].mae]
        finite = [c for c in classes if np.isfinite(c)]
        assert finite
        assert max(finite) >= hard - 1e-9
