"""Fig. 1 (bottom row): accuracy of the eight models on the flow datasets.

Regenerates the flow-prediction series for PeMSD3/4/7/8 at the three
horizons.  Expected shape (paper Sec. V-A): Graph-WaveNet and GMAN lead;
GMAN's advantage grows with horizon; errors are lower on PeMSD3/PeMSD8
than on PeMSD4/PeMSD7 in MAE/RMSE terms.
"""

import pytest

from repro.core import fig1_table
from repro.datasets import FLOW_DATASETS
from repro.models import PAPER_MODELS


@pytest.mark.parametrize("dataset", FLOW_DATASETS)
def test_fig1_flow(benchmark, matrix, dataset):
    def run():
        return matrix.cells(PAPER_MODELS, dataset)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(fig1_table(results, dataset))

    for result in results:
        assert result.full[15]["mae"].mean > 0
        # long-horizon error should not be dramatically below short-horizon
        assert (result.full[60]["mae"].mean
                > 0.5 * result.full[15]["mae"].mean)
