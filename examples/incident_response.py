#!/usr/bin/env python
"""Counterfactual incident study: how does a model react to a crash?

Builds two identical traffic worlds that differ by exactly one injected
incident, trains a model on the incident-free history, and compares its
predictions around the event — quantifying what the paper's difficult-
interval experiment measures in aggregate on a single, fully controlled
event.

Run:  python examples/incident_response.py --model graph-wavenet
"""

import argparse

import numpy as np

from repro import TrainingConfig
from repro.core import predict, sparkline, train_model
from repro.datasets import (SimulationConfig, TrafficSimulator, make_windows)
from repro.graph import build_network, gaussian_adjacency, network_stats
from repro.models import create_model, model_names


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="graph-wavenet",
                        choices=model_names())
    parser.add_argument("--epochs", type=int, default=3)
    parser.add_argument("--node", type=int, default=2,
                        help="sensor where the incident happens")
    parser.add_argument("--magnitude", type=float, default=0.6)
    parser.add_argument("--duration", type=int, default=12,
                        help="incident duration in 5-minute steps")
    args = parser.parse_args()

    network = build_network(10, topology="corridor", seed=5)
    print("Network:", network_stats(network).render())
    adjacency = gaussian_adjacency(network)
    config = SimulationConfig(num_days=5, incident_rate_per_day=0.5,
                              missing_rate=0.0)

    # The incident lands in the *test* region (last 20% of the series).
    total_steps = config.num_days * 288
    incident_step = int(total_steps * 0.9)
    base = TrafficSimulator(network, config, seed=11).run()
    shocked = TrafficSimulator(network, config, seed=11).run(
        extra_incidents=[(incident_step, args.node, args.magnitude,
                          args.duration)])

    def windows_for(sim):
        return make_windows(sim.speed, sim.time_of_day,
                            day_of_week=sim.day_of_week)

    data_base = windows_for(base)
    data_shock = windows_for(shocked)

    model = create_model(args.model, network.num_nodes, adjacency, seed=0)
    print(f"\nTraining {args.model} on the incident-free world ...")

    # Wrap in the LoadedDataset shape train_model expects.
    from repro.datasets.catalog import DatasetSpec, LoadedDataset
    spec = DatasetSpec(name="counterfactual", task="speed", region="Custom",
                       topology="corridor", paper_nodes=10, paper_days=5)
    wrapped = LoadedDataset(spec=spec, scale="custom", network=network,
                            adjacency=adjacency, simulation=base,
                            supervised=data_base)
    train_model(model, wrapped, TrainingConfig(epochs=args.epochs,
                                               verbose=True))

    pred_base, _ = predict(model, data_base.test, data_base.scaler)
    pred_shock, _ = predict(model, data_shock.test, data_shock.scaler)

    # One-step-ahead error around the incident, per world.
    def window_errors(pred, data):
        truth = data.test.y[:, 0, args.node]
        est = pred[:, 0, args.node]
        return np.abs(est - truth), data.test.start_index

    err_base, starts = window_errors(pred_base, data_base)
    err_shock, _ = window_errors(pred_shock, data_shock)
    around = ((starts >= incident_step - 6)
              & (starts < incident_step + args.duration + 6))

    print(f"\nIncident at step {incident_step}, sensor {args.node} "
          f"(magnitude {args.magnitude}, {args.duration * 5} minutes)")
    print(f"truth (shocked):  "
          f"{sparkline(data_shock.test.y[around, 0, args.node], 40)}")
    print(f"model prediction: "
          f"{sparkline(pred_shock[around, 0, args.node], 40)}")
    print(f"\n1-step MAE at sensor {args.node}:")
    print(f"  calm world, around event window : {err_base[around].mean():.2f}")
    print(f"  shocked world, same window      : {err_shock[around].mean():.2f}")
    print(f"  shocked world, elsewhere        : {err_shock[~around].mean():.2f}")
    ratio = err_shock[around].mean() / max(err_base[around].mean(), 1e-9)
    print(f"\nThe unannounced incident multiplies the model's error by "
          f"{ratio:.1f}x — the single-event view of the paper's Fig. 2.")


if __name__ == "__main__":
    main()
