#!/usr/bin/env python
"""Difficult-interval analysis: the paper's Sec. V-B experiment on one model.

Extracts the upper-25% moving-std intervals (30-minute window), evaluates a
trained model inside vs. outside them, and prints a Fig. 3-style per-road
trace for the smoothest and the most volatile sensor.

Run:  python examples/difficult_intervals.py --model gman --dataset pems-bay
"""

import argparse

import numpy as np

from repro import TrainingConfig, load_dataset, train_model
from repro.core import (difficult_mask, fig3_series, interval_segments,
                        predict)
from repro.core.intervals import moving_std
from repro.models import create_model, model_names


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="graph-wavenet",
                        choices=model_names())
    parser.add_argument("--dataset", default="pems-bay")
    parser.add_argument("--scale", default="ci")
    parser.add_argument("--epochs", type=int, default=3)
    parser.add_argument("--quantile", type=float, default=0.75,
                        help="moving-std quantile defining 'difficult'")
    parser.add_argument("--window", type=int, default=6,
                        help="moving-std window in 5-minute steps")
    args = parser.parse_args()

    data = load_dataset(args.dataset, scale=args.scale)
    model = create_model(args.model, data.num_nodes, data.adjacency, seed=0)
    print(f"Training {args.model} on {args.dataset} ...")
    train_model(model, data, TrainingConfig(epochs=args.epochs, verbose=True))

    split = data.supervised.test
    prediction, _ = predict(model, split, data.supervised.scaler)

    hard = difficult_mask(data.supervised.series, window=args.window,
                          quantile=args.quantile)
    print(f"\nDifficult intervals cover {hard.mean() * 100:.1f}% of all "
          f"sensor-steps (upper {100 * (1 - args.quantile):.0f}% moving std).")

    # Per-road 1-step-ahead error, and the Fig. 3 smooth-vs-volatile contrast.
    one_step_pred = prediction[:, 0, :]
    one_step_true = split.y[:, 0, :]
    valid = one_step_true > 0
    per_road_mae = np.array([
        np.abs(one_step_pred[valid[:, n], n]
               - one_step_true[valid[:, n], n]).mean()
        for n in range(data.num_nodes)])
    volatility = moving_std(data.supervised.series).mean(axis=0)
    smooth, volatile = int(volatility.argmin()), int(volatility.argmax())

    print(f"\nPer-road MAE: min={per_road_mae.min():.2f} "
          f"max={per_road_mae.max():.2f} "
          f"(volatile/smooth ratio "
          f"{per_road_mae[volatile] / per_road_mae[smooth]:.1f}x)\n")
    for road, label in ((smooth, "smooth"), (volatile, "volatile")):
        offsets = split.start_index[:96]
        segments = interval_segments(hard[offsets, road])
        print(f"--- {label} road ---")
        print(fig3_series(one_step_true[:96, road], one_step_pred[:96, road],
                          segments, road=road, max_points=16))
        print()


if __name__ == "__main__":
    main()
