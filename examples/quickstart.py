#!/usr/bin/env python
"""Quickstart: train one traffic forecaster and evaluate it paper-style.

Loads a synthetic METR-LA, trains Graph-WaveNet (the paper's overall
winner) for a few epochs, and prints MAE/RMSE/MAPE at the 15/30/60-minute
horizons on the full test set and on the difficult intervals.

Run:  python examples/quickstart.py [--model graph-wavenet] [--epochs 3]
"""

import argparse

from repro import TrainingConfig, load_dataset, run_experiment
from repro.models import model_names


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="graph-wavenet",
                        choices=model_names())
    parser.add_argument("--dataset", default="metr-la")
    parser.add_argument("--scale", default="ci",
                        choices=("ci", "bench", "paper"))
    parser.add_argument("--epochs", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(f"Loading {args.dataset} (scale={args.scale}) ...")
    data = load_dataset(args.dataset, scale=args.scale)
    print(f"  {data.num_nodes} sensors, "
          f"{len(data.supervised.series)} five-minute steps, "
          f"{data.supervised.train.num_samples} training windows")

    config = TrainingConfig(epochs=args.epochs, verbose=True)
    print(f"Training {args.model} for {args.epochs} epochs ...")
    result = run_experiment(args.model, data, config, seed=args.seed)

    evaluation = result.evaluation
    print(f"\n{args.model} on {args.dataset} "
          f"({evaluation.num_parameters / 1000:.1f}k parameters, "
          f"inference {evaluation.inference_seconds:.2f}s):")
    print(f"{'horizon':>8} {'MAE':>8} {'RMSE':>8} {'MAPE':>8} "
          f"{'hard MAE':>9} {'degr.':>7}")
    for minutes in (15, 30, 60):
        full = evaluation.full[minutes]
        hard = evaluation.difficult[minutes]
        print(f"{minutes:>6}m  {full.mae:>8.3f} {full.rmse:>8.3f} "
              f"{full.mape:>7.1f}% {hard.mae:>9.3f} "
              f"{evaluation.degradation(minutes):>+6.1f}%")


if __name__ == "__main__":
    main()
