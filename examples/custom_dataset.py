#!/usr/bin/env python
"""Bring your own dataset: simulate a custom city and benchmark on it.

Shows the full substrate API: build a road network, configure the traffic
simulator (rush intensity, incidents, missing data), window the series, and
train a model — without going through the named Table I catalog.

Run:  python examples/custom_dataset.py --nodes 12 --days 5 --topology radial
"""

import argparse

import numpy as np

from repro import TrainingConfig
from repro.core import evaluate_model, train_model
from repro.datasets import SimulationConfig, TrafficSimulator, make_windows
from repro.datasets.catalog import DatasetSpec, LoadedDataset
from repro.graph import build_network, gaussian_adjacency
from repro.models import create_model, model_names


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=10)
    parser.add_argument("--days", type=int, default=5)
    parser.add_argument("--topology", default="radial",
                        choices=("corridor", "grid", "radial"))
    parser.add_argument("--task", default="speed", choices=("speed", "flow"))
    parser.add_argument("--incident-rate", type=float, default=2.0,
                        help="incidents per day (drives difficult intervals)")
    parser.add_argument("--model", default="stg2seq", choices=model_names())
    parser.add_argument("--epochs", type=int, default=3)
    args = parser.parse_args()

    # 1. A road network of your own design.
    network = build_network(args.nodes, topology=args.topology, seed=7)
    adjacency = gaussian_adjacency(network)
    print(f"Built a {args.topology} network: {network.num_nodes} sensors, "
          f"{network.graph.number_of_edges()} directed edges")

    # 2. A traffic world with your own dynamics.
    sim_config = SimulationConfig(num_days=args.days,
                                  rush_intensity=0.5,
                                  incident_rate_per_day=args.incident_rate,
                                  missing_rate=0.02)
    simulation = TrafficSimulator(network, sim_config, seed=21).run()
    values = (simulation.speed if args.task == "speed" else simulation.flow)
    print(f"Simulated {len(values)} five-minute steps "
          f"({len(simulation.incident_log)} incidents, "
          f"{simulation.missing_mask.mean() * 100:.1f}% missing readings)")

    # 3. Window it and wrap it like a catalog dataset.
    supervised = make_windows(values, simulation.time_of_day)
    spec = DatasetSpec(name="my-city", task=args.task, region="Custom",
                       topology=args.topology, paper_nodes=args.nodes,
                       paper_days=args.days)
    data = LoadedDataset(spec=spec, scale="custom", network=network,
                         adjacency=adjacency, simulation=simulation,
                         supervised=supervised)

    # 4. Train and evaluate with the paper's protocol.
    model = create_model(args.model, data.num_nodes, adjacency, seed=0)
    print(f"\nTraining {args.model} "
          f"({model.num_parameters() / 1000:.1f}k parameters) ...")
    train_model(model, data, TrainingConfig(epochs=args.epochs, verbose=True))
    evaluation = evaluate_model(model, data)

    print("\nResults on the custom dataset:")
    for minutes in (15, 30, 60):
        full = evaluation.full[minutes]
        print(f"  {minutes:>2}m: MAE={full.mae:.3f} RMSE={full.rmse:.3f} "
              f"MAPE={full.mape:.1f}%  "
              f"(difficult-interval MAE={evaluation.difficult[minutes].mae:.3f})")


if __name__ == "__main__":
    main()
