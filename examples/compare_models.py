#!/usr/bin/env python
"""Model comparison: a miniature of the paper's Fig. 1 experiment.

Trains a chosen set of models on one dataset under identical settings
(the paper's controlled-environment premise), repeats over seeds, and
prints the mean±std accuracy table plus a computation-time summary.

Run:  python examples/compare_models.py --dataset pemsd8 \\
          --models graph-wavenet gman stgcn --repeats 2
"""

import argparse

from repro import TrainingConfig, load_dataset, run_experiment
from repro.core import aggregate_runs, fig1_table, table3
from repro.models import PAPER_MODELS, model_names


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="metr-la")
    parser.add_argument("--models", nargs="+", default=list(PAPER_MODELS[:4]),
                        choices=model_names())
    parser.add_argument("--scale", default="ci")
    parser.add_argument("--epochs", type=int, default=3)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--max-batches", type=int, default=16)
    parser.add_argument("--save", help="write aggregated results to JSON")
    args = parser.parse_args()

    data = load_dataset(args.dataset, scale=args.scale)
    config = TrainingConfig(epochs=args.epochs,
                            max_batches_per_epoch=args.max_batches)

    results = []
    for model_name in args.models:
        print(f"[{model_name}] training {args.repeats} seeds ...")
        runs = [run_experiment(model_name, data, config, seed=seed)
                for seed in range(args.repeats)]
        results.append(aggregate_runs(runs))

    print()
    print(fig1_table(results, args.dataset))
    print()
    print(table3(results, args.dataset))

    if args.save:
        from repro.core import save_results
        save_results(results, args.save)
        print(f"\nSaved results to {args.save}")


if __name__ == "__main__":
    main()
