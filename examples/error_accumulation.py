#!/usr/bin/env python
"""Error accumulation: the paper's Sec. VI lesson, measured per step.

Trains an autoregressive seq2seq model (DCRNN) and a one-shot decoder
(Graph-WaveNet) on the same data and renders the full 12-step error curve
for each — the RNN's curve steepens with depth while the one-shot decoder
stays flatter, plus a Welch test on whether the 60-minute gap is
significant across seeds.

Run:  python examples/error_accumulation.py [--epochs 2] [--repeats 2]
"""

import argparse

from repro import TrainingConfig, load_dataset, run_experiment
from repro.core import (compare_models, horizon_curve, predict,
                        render_curves, train_model)
from repro.models import create_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="metr-la")
    parser.add_argument("--models", nargs="+",
                        default=["dcrnn", "graph-wavenet", "gman"])
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=2)
    args = parser.parse_args()

    data = load_dataset(args.dataset, scale="ci")
    config = TrainingConfig(epochs=args.epochs, max_batches_per_epoch=12)

    curves = {}
    all_runs = {}
    for name in args.models:
        print(f"Training {name} ({args.repeats} seeds) ...")
        runs = [run_experiment(name, data, config, seed=seed)
                for seed in range(args.repeats)]
        all_runs[name] = runs
        # Per-step curve from a fresh seed-0 model (same protocol).
        model = create_model(name, data.num_nodes, data.adjacency, seed=0)
        train_model(model, data, config, seed=0)
        prediction, _ = predict(model, data.supervised.test,
                                data.supervised.scaler)
        curves[name] = horizon_curve(prediction, data.supervised.test.y)

    print("\nPer-step MAE curves (steps 1..12 = 5..60 minutes):")
    print(render_curves(curves))

    if len(args.models) >= 2 and args.repeats >= 2:
        a, b = args.models[0], args.models[1]
        comparison = compare_models(all_runs[a], all_runs[b], minutes=60)
        verdict = ("significant" if comparison.significant()
                   else "not significant")
        print(f"\n60-minute MAE: {a}={comparison.mean_a:.3f} vs "
              f"{b}={comparison.mean_b:.3f} -> {comparison.better} better "
              f"(p={comparison.p_value:.3f}, {verdict} at alpha=0.05, "
              f"n={args.repeats})")


if __name__ == "__main__":
    main()
