#!/usr/bin/env python
"""Export predictions and analyse them offline.

Trains a model, exports its test-set forecasts to ``.npz``/CSV, then
demonstrates the offline analysis loop: reload the dump, recompute metrics,
per-sensor error maps, and the error-vs-volatility profile (Sec. VI) —
without touching the model again.

Run:  python examples/export_and_analyze.py --model stsgcn --out /tmp/preds
"""

import argparse
from pathlib import Path

import numpy as np

from repro import TrainingConfig, load_dataset
from repro.core import (evaluate_horizons, export_predictions,
                        load_predictions, per_sensor_errors,
                        predictions_to_csv, train_model, volatility_profile)
from repro.models import create_model, model_names


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="graph-wavenet",
                        choices=model_names())
    parser.add_argument("--dataset", default="metr-la")
    parser.add_argument("--epochs", type=int, default=3)
    parser.add_argument("--out", default="/tmp/repro-preds",
                        help="output directory")
    args = parser.parse_args()

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    npz_path = out_dir / f"{args.model}-{args.dataset}.npz"
    csv_path = out_dir / f"{args.model}-{args.dataset}-step1.csv"

    data = load_dataset(args.dataset, scale="ci")
    model = create_model(args.model, data.num_nodes, data.adjacency, seed=0)
    print(f"Training {args.model} on {args.dataset} ...")
    train_model(model, data, TrainingConfig(epochs=args.epochs, verbose=True))

    export_predictions(model, data, npz_path)
    predictions_to_csv(npz_path, csv_path, horizon_step=0)
    print(f"\nWrote {npz_path} and {csv_path}")

    # ---- offline analysis: nothing below touches the model -------------
    prediction, target, start_index, meta = load_predictions(npz_path)
    print(f"\nReloaded: {meta['model']} on {meta['dataset']} "
          f"({prediction.shape[0]} windows)")

    metrics = evaluate_horizons(prediction, target)
    for minutes, m in metrics.items():
        print(f"  {minutes:>2}m: MAE={m.mae:.3f} RMSE={m.rmse:.3f} "
              f"MAPE={m.mape:.1f}%")

    errors = per_sensor_errors(prediction, target)
    worst = int(np.nanargmax(errors))
    best = int(np.nanargmin(errors))
    print(f"\nPer-sensor 1-step MAE: best sensor {best} "
          f"({errors[best]:.2f}), worst sensor {worst} "
          f"({errors[worst]:.2f})")

    profile = volatility_profile(prediction, target, data.supervised.series,
                                 start_index, bins=4)
    print("\nError vs local volatility (Sec. VI):")
    print(profile.render())


if __name__ == "__main__":
    main()
