"""Road-network statistics.

Table I characterises datasets by sensor count only; network *structure*
(connectivity, path lengths, degree spread) also shapes how much a graph
model can exploit — these statistics let experiments report it.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from .road_network import RoadNetwork

__all__ = ["NetworkStats", "network_stats"]


@dataclass
class NetworkStats:
    """Summary statistics of a sensor network."""

    num_nodes: int
    num_edges: int
    mean_out_degree: float
    max_out_degree: int
    mean_edge_km: float
    diameter_km: float            # longest finite shortest-path distance
    strongly_connected: bool
    mean_shortest_path_km: float  # over finite pairs

    def render(self) -> str:
        return (f"{self.num_nodes} sensors, {self.num_edges} edges, "
                f"out-degree {self.mean_out_degree:.2f} "
                f"(max {self.max_out_degree}), "
                f"edge {self.mean_edge_km:.2f} km, "
                f"diameter {self.diameter_km:.1f} km, "
                f"{'strongly' if self.strongly_connected else 'weakly'} "
                f"connected")


def network_stats(network: RoadNetwork) -> NetworkStats:
    """Compute structural statistics of a road network."""
    graph = network.graph
    out_degrees = [d for _, d in graph.out_degree()]
    edge_lengths = [attrs["distance"]
                    for _, _, attrs in graph.edges(data=True)]
    dist = network.distance_matrix()
    finite = dist[np.isfinite(dist) & (dist > 0)]
    return NetworkStats(
        num_nodes=network.num_nodes,
        num_edges=graph.number_of_edges(),
        mean_out_degree=float(np.mean(out_degrees)),
        max_out_degree=int(np.max(out_degrees)),
        mean_edge_km=float(np.mean(edge_lengths)) if edge_lengths else 0.0,
        diameter_km=float(finite.max()) if finite.size else 0.0,
        strongly_connected=nx.is_strongly_connected(graph),
        mean_shortest_path_km=float(finite.mean()) if finite.size else 0.0)
