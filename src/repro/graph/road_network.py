"""Synthetic road-network topologies.

The PeMS datasets are loop-detector networks on California freeways.  Since
the Caltrans feeds are unavailable offline, we synthesise road networks with
the same structural character: long directed corridors (freeways), grid
interchanges (urban meshes), and radial hubs (downtown funnels).  Sensors
sit on edges of the physical road; distances between sensors drive the
Gaussian-kernel adjacency exactly as in the paper (Sec. IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

__all__ = ["RoadNetwork", "build_network"]


@dataclass
class RoadNetwork:
    """A sensor network over a road system.

    Attributes
    ----------
    graph:
        Directed networkx graph; nodes are sensor ids ``0..N-1`` and edge
        attribute ``distance`` is the driving distance (km) between sensors.
    positions:
        ``(N, 2)`` planar sensor coordinates (km), used for visualisation
        and for deriving distances.
    free_flow_speed:
        ``(N,)`` per-sensor free-flow speed (mph), heterogeneous across the
        network like real freeway segments.
    capacity:
        ``(N,)`` per-sensor capacity (vehicles / 5 min) for the fundamental
        diagram used by flow datasets.
    """

    graph: nx.DiGraph
    positions: np.ndarray
    free_flow_speed: np.ndarray
    capacity: np.ndarray

    @property
    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    def distance_matrix(self) -> np.ndarray:
        """All-pairs shortest driving distance (km); inf when unreachable."""
        n = self.num_nodes
        dist = np.full((n, n), np.inf)
        np.fill_diagonal(dist, 0.0)
        lengths = dict(nx.all_pairs_dijkstra_path_length(self.graph, weight="distance"))
        for src, targets in lengths.items():
            for dst, d in targets.items():
                dist[src, dst] = d
        return dist

    def downstream_hops(self) -> dict[int, list[int]]:
        """Successors of every node — used by congestion-wave propagation."""
        return {node: list(self.graph.successors(node)) for node in self.graph.nodes}


def _corridor(num_nodes: int, rng: np.random.Generator, spacing_km: float) -> nx.DiGraph:
    """A two-direction freeway corridor: nodes alternate directions."""
    graph = nx.DiGraph()
    graph.add_nodes_from(range(num_nodes))
    half = num_nodes // 2
    for i in range(half - 1):  # eastbound chain
        d = spacing_km * (0.7 + 0.6 * rng.random())
        graph.add_edge(i, i + 1, distance=d)
    for i in range(half, num_nodes - 1):  # westbound chain
        d = spacing_km * (0.7 + 0.6 * rng.random())
        graph.add_edge(i + 1, i, distance=d)
    # on/off ramps connecting the two directions sporadically
    for i in range(0, half - 1, max(2, half // 4)):
        j = min(num_nodes - 1, half + i)
        graph.add_edge(i, j, distance=spacing_km * 1.5)
        graph.add_edge(j, i, distance=spacing_km * 1.5)
    return graph


def _grid(num_nodes: int, rng: np.random.Generator, spacing_km: float) -> nx.DiGraph:
    """An urban mesh: approximately square grid with directed arterials."""
    side = max(2, int(np.ceil(np.sqrt(num_nodes))))
    graph = nx.DiGraph()
    graph.add_nodes_from(range(num_nodes))

    def nid(r: int, c: int) -> int:
        return r * side + c

    for r in range(side):
        for c in range(side):
            here = nid(r, c)
            if here >= num_nodes:
                continue
            for dr, dc in ((0, 1), (1, 0)):
                nr, nc = r + dr, c + dc
                neighbor = nid(nr, nc)
                if nr < side and nc < side and neighbor < num_nodes:
                    d = spacing_km * (0.7 + 0.6 * rng.random())
                    graph.add_edge(here, neighbor, distance=d)
                    # Most grid streets are two-way; some are one-way pairs.
                    if rng.random() < 0.8:
                        graph.add_edge(neighbor, here, distance=d)
    return graph


def _radial(num_nodes: int, rng: np.random.Generator, spacing_km: float) -> nx.DiGraph:
    """Radial hub: spokes feeding a centre, plus a ring road."""
    graph = nx.DiGraph()
    graph.add_nodes_from(range(num_nodes))
    num_spokes = max(3, num_nodes // 6)
    per_spoke = max(1, (num_nodes - 1) // num_spokes)
    node = 1
    ring: list[int] = []
    for _ in range(num_spokes):
        previous = 0  # hub
        for depth in range(per_spoke):
            if node >= num_nodes:
                break
            d = spacing_km * (0.7 + 0.6 * rng.random())
            graph.add_edge(node, previous, distance=d)   # inbound
            graph.add_edge(previous, node, distance=d)   # outbound
            if depth == per_spoke - 1:
                ring.append(node)
            previous = node
            node += 1
    for a, b in zip(ring, ring[1:] + ring[:1]):
        if a != b:
            d = spacing_km * (1.0 + rng.random())
            graph.add_edge(a, b, distance=d)
            graph.add_edge(b, a, distance=d)
    return graph


_TOPOLOGIES = {"corridor": _corridor, "grid": _grid, "radial": _radial}


def build_network(num_nodes: int, topology: str = "corridor", seed: int = 0,
                  spacing_km: float = 1.2,
                  free_flow_mph: tuple[float, float] = (55.0, 70.0),
                  capacity_veh: tuple[float, float] = (150.0, 450.0)) -> RoadNetwork:
    """Construct a synthetic sensor network.

    Parameters
    ----------
    num_nodes:
        Number of sensors (the paper's datasets range 170–883; scaled
        presets use 12–32).
    topology:
        ``corridor`` (freeway, METR-LA-like), ``grid`` (urban mesh,
        PeMS-BAY-like) or ``radial`` (hub-and-spoke).
    seed:
        Seeds both structure randomness and per-sensor attributes.
    """
    if num_nodes < 2:
        raise ValueError(f"need at least 2 sensors, got {num_nodes}")
    if topology not in _TOPOLOGIES:
        raise ValueError(
            f"unknown topology {topology!r}; choose from {sorted(_TOPOLOGIES)}")
    rng = np.random.default_rng(seed)
    graph = _TOPOLOGIES[topology](num_nodes, rng, spacing_km)

    # Ensure weak connectivity so every sensor correlates with some neighbour.
    undirected = graph.to_undirected()
    components = list(nx.connected_components(undirected))
    for comp_a, comp_b in zip(components, components[1:]):
        a = next(iter(comp_a))
        b = next(iter(comp_b))
        graph.add_edge(a, b, distance=spacing_km * 2.0)
        graph.add_edge(b, a, distance=spacing_km * 2.0)

    positions = _layout_positions(graph, rng)
    free_flow = rng.uniform(*free_flow_mph, size=num_nodes)
    capacity = rng.uniform(*capacity_veh, size=num_nodes)
    return RoadNetwork(graph=graph, positions=positions,
                       free_flow_speed=free_flow, capacity=capacity)


def _layout_positions(graph: nx.DiGraph, rng: np.random.Generator) -> np.ndarray:
    layout = nx.spring_layout(graph.to_undirected(), seed=int(rng.integers(1 << 31)))
    return np.array([layout[node] for node in sorted(graph.nodes)]) * 10.0
