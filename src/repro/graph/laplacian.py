"""Spectral and diffusion graph operators.

Two families are needed (paper Table II):

- *Spectral* GCNs (STGCN, ASTGCN) convolve with Chebyshev polynomials of the
  scaled Laplacian ``L~ = 2L/lambda_max - I``.
- *Spatial* GCNs (DCRNN, Graph-WaveNet, STSGCN, STG2Seq) use random-walk
  transition matrices ``D_O^-1 W`` (forward) and ``D_I^-1 W^T`` (backward).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "normalized_laplacian", "scaled_laplacian", "chebyshev_polynomials",
    "random_walk_matrix", "reverse_random_walk_matrix", "dual_random_walk",
]


def normalized_laplacian(adjacency: np.ndarray) -> np.ndarray:
    """Symmetric normalised Laplacian ``I - D^-1/2 W D^-1/2``.

    The adjacency is symmetrised first (spectral theory needs symmetric W).
    """
    weights = np.maximum(adjacency, adjacency.T)
    degree = weights.sum(axis=1)
    inv_sqrt = np.where(degree > 0, 1.0 / np.sqrt(np.where(degree > 0, degree, 1.0)), 0.0)
    lap = -weights * inv_sqrt[:, None] * inv_sqrt[None, :]
    np.fill_diagonal(lap, 1.0 + np.diag(lap))
    return lap


def scaled_laplacian(adjacency: np.ndarray, lambda_max: float | None = None) -> np.ndarray:
    """``2L/lambda_max - I`` with eigenvalues in [-1, 1]."""
    lap = normalized_laplacian(adjacency)
    if lambda_max is None:
        eigenvalues = np.linalg.eigvalsh((lap + lap.T) / 2.0)
        lambda_max = float(eigenvalues.max())
    if lambda_max <= 0:
        lambda_max = 2.0
    return 2.0 * lap / lambda_max - np.eye(lap.shape[0])


def chebyshev_polynomials(adjacency: np.ndarray, order: int) -> list[np.ndarray]:
    """Chebyshev basis ``T_0..T_{order-1}`` of the scaled Laplacian.

    ``order`` is K in the papers (K-hop receptive field).
    """
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    scaled = scaled_laplacian(adjacency)
    n = scaled.shape[0]
    polys = [np.eye(n)]
    if order >= 2:
        polys.append(scaled)
    for _ in range(2, order):
        polys.append(2.0 * scaled @ polys[-1] - polys[-2])
    return polys


def random_walk_matrix(adjacency: np.ndarray) -> np.ndarray:
    """Forward transition matrix ``D_O^-1 W``."""
    degree = adjacency.sum(axis=1)
    inv = np.where(degree > 0, 1.0 / np.where(degree > 0, degree, 1.0), 0.0)
    return adjacency * inv[:, None]


def reverse_random_walk_matrix(adjacency: np.ndarray) -> np.ndarray:
    """Backward transition matrix ``D_I^-1 W^T`` (reverse diffusion)."""
    return random_walk_matrix(adjacency.T)


def dual_random_walk(adjacency: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(forward, backward) diffusion supports used by DCRNN/Graph-WaveNet."""
    return random_walk_matrix(adjacency), reverse_random_walk_matrix(adjacency)
