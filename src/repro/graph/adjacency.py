"""Weighted adjacency construction (paper Sec. IV-B).

Edge weights follow the Gaussian kernel used by STGCN / DCRNN /
Graph-WaveNet: ``W_ij = exp(-dist_ij^2 / sigma^2)`` where ``sigma`` is the
standard deviation of finite pairwise distances, with entries below a
sparsity threshold zeroed.
"""

from __future__ import annotations

import numpy as np

from .road_network import RoadNetwork

__all__ = ["gaussian_adjacency", "binary_adjacency", "row_normalize", "symmetrize"]


def gaussian_adjacency(network: RoadNetwork, threshold: float = 0.1,
                       max_hops_km: float | None = None) -> np.ndarray:
    """Gaussian-kernel weighted adjacency from driving distances.

    Parameters
    ----------
    threshold:
        Weights below this value are zeroed (the k=0.1 sparsity threshold of
        DCRNN).
    max_hops_km:
        Optional hard cut on distance before applying the kernel.
    """
    dist = network.distance_matrix()
    finite = dist[np.isfinite(dist) & (dist > 0)]
    if finite.size == 0:
        raise ValueError("network has no finite positive distances")
    sigma = finite.std()
    if sigma == 0:
        sigma = finite.mean() or 1.0
    with np.errstate(over="ignore"):
        weights = np.exp(-np.square(dist / sigma))
    weights[~np.isfinite(dist)] = 0.0
    if max_hops_km is not None:
        weights[dist > max_hops_km] = 0.0
    weights[weights < threshold] = 0.0
    np.fill_diagonal(weights, 1.0)
    return weights


def binary_adjacency(network: RoadNetwork) -> np.ndarray:
    """0/1 connectivity matrix (direct edges only, plus self-loops)."""
    n = network.num_nodes
    adj = np.zeros((n, n))
    for src, dst in network.graph.edges:
        adj[src, dst] = 1.0
    np.fill_diagonal(adj, 1.0)
    return adj


def row_normalize(adjacency: np.ndarray) -> np.ndarray:
    """Random-walk normalisation ``D^-1 A`` (rows sum to one where nonzero)."""
    degree = adjacency.sum(axis=1, keepdims=True)
    safe = np.where(degree > 0, degree, 1.0)
    return adjacency / safe


def symmetrize(adjacency: np.ndarray) -> np.ndarray:
    """Maximum-symmetrisation: W <- max(W, W^T)."""
    return np.maximum(adjacency, adjacency.T)
