"""Road-network and graph-operator substrate."""

from .adjacency import binary_adjacency, gaussian_adjacency, row_normalize, symmetrize
from .laplacian import (chebyshev_polynomials, dual_random_walk,
                        normalized_laplacian, random_walk_matrix,
                        reverse_random_walk_matrix, scaled_laplacian)
from .metrics import NetworkStats, network_stats
from .road_network import RoadNetwork, build_network

__all__ = [
    "RoadNetwork", "build_network", "NetworkStats", "network_stats",
    "gaussian_adjacency", "binary_adjacency", "row_normalize", "symmetrize",
    "normalized_laplacian", "scaled_laplacian", "chebyshev_polynomials",
    "random_walk_matrix", "reverse_random_walk_matrix", "dual_random_walk",
]
