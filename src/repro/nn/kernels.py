"""Shared convolution kernel machinery: cached im2col and fast col2im.

Every conv-based model in the zoo (STGCN, Graph-WaveNet, ASTGCN, STSGCN)
funnels through :func:`repro.nn.functional.conv2d`, so the speed of the
im2col gather and — above all — the col2im scatter in the backward pass
sets the floor for every Table III-style cost comparison.  This module
keeps that floor close to the numpy speed-of-light:

- :func:`col_indices` builds the im2col row/column index grids once per
  geometry ``(H, W, kernel, stride, dilation)`` and caches them (the grids
  are read-only so cache hits are safe to share between calls).
- :func:`col2im` scatters column gradients back to the input *without*
  ``np.add.at``: for each of the ``kh*kw`` kernel taps, the output grid
  maps to a strided, overlap-free view of the input, so the scatter is a
  handful of vectorised in-place adds.  The ``(1, k)`` stride-1 temporal
  kernels the TCN models use reduce to ``k`` shifted adds along the time
  axis.  Kernels with very many taps switch to a single flat
  ``np.bincount`` scatter instead.
- :func:`col2im_reference` is the original ``np.add.at`` implementation,
  kept as the ground truth for the equivalence tests and as the baseline
  the kernel benchmarks measure speedups against.
- :func:`conv_forward_contract`, :func:`conv_weight_grad_contract`, and
  :func:`conv_col_grad_contract` route the three conv contractions through
  BLAS (``matmul``/``tensordot``) instead of ``np.einsum``'s generic
  sum-of-products loops; the reference mode keeps the einsum paths.

The :func:`use_reference_kernels` context switches the whole engine (conv
scatter, index caching, basic-index gradients, ``unbind``/``split`` views)
back to the pre-optimisation reference paths so a single process can time
"before" and "after" honestly — see ``repro bench kernels`` and
``docs/performance.md``.
"""

from __future__ import annotations

import contextlib
import functools

import numpy as np

__all__ = [
    "col_indices", "col_indices_cache_info", "clear_col_indices_cache",
    "im2col", "col2im", "col2im_reference",
    "conv_forward_contract", "conv_weight_grad_contract",
    "conv_col_grad_contract",
    "use_reference_kernels", "reference_kernels_enabled",
]

# Taps beyond this count make one flat bincount cheaper than per-tap adds.
_BINCOUNT_TAP_THRESHOLD = 64

_REFERENCE = False


@contextlib.contextmanager
def use_reference_kernels():
    """Route all kernels through the slow reference paths inside the block.

    Used by the benchmark suite to measure the pre-optimisation baseline in
    the same process, and by the equivalence tests to obtain ground-truth
    gradients.
    """
    global _REFERENCE
    previous = _REFERENCE
    _REFERENCE = True
    try:
        yield
    finally:
        _REFERENCE = previous


def reference_kernels_enabled() -> bool:
    """Whether the engine is currently in reference-kernel mode."""
    return _REFERENCE


# --------------------------------------------------------------------- #
# im2col index grids (cached per geometry)
# --------------------------------------------------------------------- #
def _build_col_indices(height: int, width: int, kh: int, kw: int,
                       stride: tuple[int, int], dilation: tuple[int, int]):
    sh, sw = stride
    dh, dw = dilation
    out_h = (height - dh * (kh - 1) - 1) // sh + 1
    out_w = (width - dw * (kw - 1) - 1) // sw + 1
    i0 = dh * np.repeat(np.arange(kh), kw)
    j0 = dw * np.tile(np.arange(kw), kh)
    i1 = sh * np.repeat(np.arange(out_h), out_w)
    j1 = sw * np.tile(np.arange(out_w), out_h)
    rows = i0[:, None] + i1[None, :]          # (kh*kw, out_h*out_w)
    cols = j0[:, None] + j1[None, :]
    return rows, cols, out_h, out_w


@functools.lru_cache(maxsize=256)
def _cached_col_indices(height: int, width: int, kh: int, kw: int,
                        stride: tuple[int, int], dilation: tuple[int, int]):
    rows, cols, out_h, out_w = _build_col_indices(
        height, width, kh, kw, stride, dilation)
    # Cache entries are shared between callers; freeze them so an
    # accidental in-place edit cannot corrupt every later convolution.
    rows.setflags(write=False)
    cols.setflags(write=False)
    return rows, cols, out_h, out_w


def col_indices(height: int, width: int, kernel: tuple[int, int],
                stride: tuple[int, int] = (1, 1),
                dilation: tuple[int, int] = (1, 1)):
    """im2col gather indices for one convolution geometry.

    Returns ``(rows, cols, out_h, out_w)`` where ``rows``/``cols`` are
    ``(kh*kw, out_h*out_w)`` index grids.  Results are cached per geometry
    (and returned read-only); in reference mode the grids are rebuilt on
    every call, matching the pre-optimisation engine.
    """
    kh, kw = kernel
    key = (int(height), int(width), int(kh), int(kw),
           (int(stride[0]), int(stride[1])),
           (int(dilation[0]), int(dilation[1])))
    if _REFERENCE:
        return _build_col_indices(*key)
    return _cached_col_indices(*key)


def col_indices_cache_info():
    """``functools`` cache statistics for the index-grid cache."""
    return _cached_col_indices.cache_info()


def clear_col_indices_cache() -> None:
    """Drop all cached index grids (tests and memory-pressure hooks)."""
    _cached_col_indices.cache_clear()


# --------------------------------------------------------------------- #
# im2col / col2im
# --------------------------------------------------------------------- #
def im2col(x_data: np.ndarray, kernel: tuple[int, int],
           stride: tuple[int, int] = (1, 1),
           dilation: tuple[int, int] = (1, 1)):
    """Gather patches: ``(B, C, H, W) -> (B, C*kh*kw, L)`` plus out shape."""
    batch, channels, height, width = x_data.shape
    kh, kw = kernel
    rows, cols, out_h, out_w = col_indices(height, width, kernel,
                                           stride, dilation)
    patches = x_data[:, :, rows, cols]         # (B, C, kh*kw, L)
    return patches.reshape(batch, channels * kh * kw, -1), out_h, out_w


def _out_grid(height: int, width: int, kh: int, kw: int,
              stride: tuple[int, int], dilation: tuple[int, int]):
    sh, sw = stride
    dh, dw = dilation
    out_h = (height - dh * (kh - 1) - 1) // sh + 1
    out_w = (width - dw * (kw - 1) - 1) // sw + 1
    return out_h, out_w


def col2im(g_cols: np.ndarray, shape: tuple[int, int, int, int],
           kernel: tuple[int, int], stride: tuple[int, int] = (1, 1),
           dilation: tuple[int, int] = (1, 1)) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back onto the input.

    ``g_cols`` is ``(B, C, kh*kw, L)`` with ``L = out_h*out_w``; the result
    has ``shape = (B, C, H, W)``.  For any stride, the ``L`` output
    positions of one kernel tap land on *distinct* input cells, so the
    scatter decomposes into ``kh*kw`` overlap-free strided-slice adds — no
    ``np.add.at``.  Degenerate many-tap kernels fall back to one flat
    :func:`np.bincount` scatter.
    """
    batch, channels, height, width = shape
    kh, kw = kernel
    sh, sw = stride
    dh, dw = dilation
    out_h, out_w = _out_grid(height, width, kh, kw, stride, dilation)
    if kh * kw > _BINCOUNT_TAP_THRESHOLD:
        return _col2im_bincount(g_cols, shape, kernel, stride, dilation)
    g = g_cols.reshape(batch, channels, kh, kw, out_h, out_w)
    gx = np.zeros(shape, dtype=g_cols.dtype)
    for ki in range(kh):
        row = dh * ki
        row_slice = slice(row, row + sh * out_h, sh)
        for kj in range(kw):
            col = dw * kj
            gx[:, :, row_slice, col:col + sw * out_w:sw] += g[:, :, ki, kj]
    return gx


def _col2im_bincount(g_cols: np.ndarray, shape: tuple[int, int, int, int],
                     kernel: tuple[int, int], stride: tuple[int, int],
                     dilation: tuple[int, int]) -> np.ndarray:
    """Flat ``np.bincount`` scatter — one pass regardless of tap count."""
    batch, channels, height, width = shape
    rows, cols, _, _ = col_indices(height, width, kernel, stride, dilation)
    plane = height * width
    spatial = (rows * width + cols).ravel()                 # (K*L,)
    flat = g_cols.reshape(batch * channels, -1)
    index = (np.arange(batch * channels)[:, None] * plane
             + spatial[None, :]).ravel()
    summed = np.bincount(index, weights=flat.ravel(),
                         minlength=batch * channels * plane)
    return summed.reshape(shape).astype(g_cols.dtype, copy=False)


def col2im_reference(g_cols: np.ndarray, shape: tuple[int, int, int, int],
                     kernel: tuple[int, int],
                     stride: tuple[int, int] = (1, 1),
                     dilation: tuple[int, int] = (1, 1)) -> np.ndarray:
    """Original ``np.add.at`` scatter — ground truth for equivalence tests
    and the baseline for the kernel benchmarks."""
    batch, channels, height, width = shape
    kh, kw = kernel
    rows, cols, _, _ = col_indices(height, width, kernel, stride, dilation)
    gx = np.zeros(shape, dtype=g_cols.dtype)
    np.add.at(gx, (slice(None), slice(None), rows, cols),
              g_cols.reshape(batch, channels, kh * kw, -1))
    return gx


# --------------------------------------------------------------------- #
# conv contractions — BLAS GEMMs on the fast path, the original
# ``np.einsum`` sum-of-products loops on the reference path.
# --------------------------------------------------------------------- #
def conv_forward_contract(w_mat: np.ndarray,
                          cols_mat: np.ndarray) -> np.ndarray:
    """``(Cout, CK) @ (B, CK, L) -> (B, Cout, L)`` output contraction."""
    if _REFERENCE:
        return np.einsum("ok,bkl->bol", w_mat, cols_mat)
    return np.matmul(w_mat, cols_mat)


def conv_weight_grad_contract(g_mat: np.ndarray,
                              cols_mat: np.ndarray) -> np.ndarray:
    """``(B, Cout, L) x (B, CK, L) -> (Cout, CK)`` weight gradient."""
    if _REFERENCE:
        return np.einsum("bol,bkl->ok", g_mat, cols_mat)
    return np.tensordot(g_mat, cols_mat, axes=([0, 2], [0, 2]))


def conv_col_grad_contract(w_mat: np.ndarray,
                           g_mat: np.ndarray) -> np.ndarray:
    """``(Cout, CK).T @ (B, Cout, L) -> (B, CK, L)`` column gradient."""
    if _REFERENCE:
        return np.einsum("ok,bol->bkl", w_mat, g_mat)
    return np.matmul(w_mat.T, g_mat)
