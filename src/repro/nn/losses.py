"""Masked regression losses.

Real loop-detector feeds contain missing readings recorded as zeros; the
standard protocol (introduced by DCRNN and followed by the paper's models)
masks those entries out of both the loss and the evaluation metrics.  The
``null_value`` convention matches that literature: entries equal to
``null_value`` in the *target* are excluded.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .tensor import Tensor

__all__ = ["masked_mae", "masked_mse", "masked_rmse", "masked_huber"]


def _mask_for(target: Tensor, null_value: float | None
              ) -> tuple[np.ndarray, Tensor]:
    """Return (weights, cleaned target).

    Weights are normalised so the loss is the mean over valid entries; null
    entries in the target are replaced with 0 so NaN payloads cannot leak
    through the multiplication (NaN * 0 is NaN).
    """
    if null_value is None:
        return np.ones_like(target.data), target
    if np.isnan(null_value):
        mask = ~np.isnan(target.data)
    else:
        mask = ~np.isclose(target.data, null_value)
    clean = Tensor(np.where(mask, target.data, 0.0))
    weights = mask.astype(target.data.dtype)
    total = weights.mean()
    if total == 0:
        # Degenerate batch: all entries null.  Zero weights make the loss 0
        # rather than dividing by zero.
        return weights, clean
    return weights / total, clean


def masked_mae(prediction: Tensor, target: Tensor,
               null_value: float | None = 0.0) -> Tensor:
    """Mean absolute error over non-null target entries."""
    weights, target = _mask_for(target, null_value)
    return ((prediction - target).abs() * Tensor(weights)).mean()


def masked_mse(prediction: Tensor, target: Tensor,
               null_value: float | None = 0.0) -> Tensor:
    weights, target = _mask_for(target, null_value)
    diff = prediction - target
    return (diff * diff * Tensor(weights)).mean()


def masked_rmse(prediction: Tensor, target: Tensor,
                null_value: float | None = 0.0) -> Tensor:
    return masked_mse(prediction, target, null_value).sqrt()


def masked_huber(prediction: Tensor, target: Tensor, delta: float = 1.0,
                 null_value: float | None = 0.0) -> Tensor:
    weights, target = _mask_for(target, null_value)
    return (F.huber(prediction - target, delta) * Tensor(weights)).mean()
