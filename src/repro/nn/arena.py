"""Flat parameter arena: every ``Parameter`` as a view into one buffer.

The optimizer hot loop used to pay one round of numpy-call overhead per
parameter — DCRNN-sized models carry hundreds of small gate matrices, so
``Adam.step`` spent more time dispatching tiny ufuncs than doing math.  A
:class:`ParameterArena` packs every parameter of a module tree into one
contiguous float buffer (and a twin buffer for gradients), then rebinds
each ``Parameter`` so its ``data`` is a reshaped view of the arena.  The
parameters keep working exactly as before (layers read and write their
views in place), while global operations — optimizer moment updates,
weight decay, gradient clipping, ``zero_grad`` — collapse to single
vectorized ops over the flat buffers.

Gradients land in the arena too: an arena-bound ``Parameter`` keeps a
persistent flat gradient view (``Parameter.zero_grad`` zeroes it in place
instead of dropping it to ``None``), so the autograd engine's in-place
accumulation writes straight into ``ParameterArena.grad``.

The per-parameter layout is recorded as a list of :class:`ParamSpec`
(name/shape/offset) — the same spec the checkpoint format persists, so an
optimizer state written from an arena can be restored into per-parameter
buffers and vice versa (see :mod:`repro.nn.checkpoint`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ParamSpec", "ParameterArena"]


@dataclass(frozen=True)
class ParamSpec:
    """Placement of one parameter inside a flat arena buffer."""

    name: str
    shape: tuple[int, ...]
    offset: int

    @property
    def size(self) -> int:
        """Number of scalar elements the parameter occupies."""
        return int(np.prod(self.shape)) if self.shape else 1


class ParameterArena:
    """One contiguous data + grad buffer covering a list of parameters.

    Construction copies every parameter's current values into the flat
    ``data`` buffer and rebinds each ``Parameter`` in place:

    - ``param.data`` becomes a reshaped view of ``arena.data``;
    - ``param.grad`` becomes a reshaped view of ``arena.grad`` (zeroed, or
      seeded with the pre-existing gradient when one was set).

    Use :meth:`repro.nn.Module.flatten_parameters` rather than
    constructing arenas directly — it deduplicates shared parameters and
    memoises the arena on the module.
    """

    def __init__(self, named_parameters):
        named = list(named_parameters)
        if not named:
            raise ValueError("cannot build an arena with no parameters")
        seen: set[int] = set()
        unique = []
        for name, param in named:
            if id(param) in seen:       # shared/tied parameters appear once
                continue
            seen.add(id(param))
            unique.append((name, param))
        dtype = np.result_type(*(p.data.dtype for _, p in unique))

        specs: list[ParamSpec] = []
        offset = 0
        for name, param in unique:
            specs.append(ParamSpec(name=name, shape=tuple(param.shape),
                                   offset=offset))
            offset += param.size
        self.specs: tuple[ParamSpec, ...] = tuple(specs)
        self.data = np.empty(offset, dtype=dtype)
        self.grad = np.zeros(offset, dtype=dtype)
        self.parameters = tuple(param for _, param in unique)

        for spec, param in zip(self.specs, self.parameters):
            stop = spec.offset + spec.size
            self.data[spec.offset:stop] = param.data.ravel()
            data_view = self.data[spec.offset:stop].reshape(spec.shape)
            grad_view = self.grad[spec.offset:stop].reshape(spec.shape)
            if param.grad is not None:
                grad_view[...] = param.grad
            param.data = data_view
            param._grad_view = grad_view
            param._arena = self
            param.grad = grad_view

    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Total number of scalar parameters in the arena."""
        return self.data.size

    def __len__(self) -> int:
        return len(self.parameters)

    def covers(self, parameters) -> bool:
        """Whether this arena binds exactly ``parameters`` (same order)."""
        parameters = list(parameters)
        return (len(parameters) == len(self.parameters)
                and all(a is b for a, b in zip(parameters, self.parameters))
                and all(p.data.base is not None
                        and self._owns(p.data) for p in parameters))

    def _owns(self, view: np.ndarray) -> bool:
        base = view
        while base.base is not None:
            base = base.base
        return base is self.data

    def zero_grad(self) -> None:
        """Zero the whole gradient buffer (one memset) and re-arm views."""
        self.grad.fill(0.0)
        for param in self.parameters:
            param.grad = param._grad_view

    def sync_grads(self) -> None:
        """Re-point stray gradients back into the arena.

        Code that assigns ``param.grad`` directly (tests, hand-rolled
        updates) bypasses the arena views; this copies such gradients into
        the flat buffer so fused optimizer math sees them.  ``None`` grads
        become zeros — the arena's semantics for "no gradient".
        """
        for param in self.parameters:
            if param.grad is param._grad_view:
                continue
            if param.grad is None:
                param._grad_view.fill(0.0)
            else:
                param._grad_view[...] = param.grad
            param.grad = param._grad_view

    def state_like(self) -> tuple[np.ndarray, list[np.ndarray]]:
        """A zeroed flat buffer plus its per-parameter views.

        Optimizers allocate their moment/velocity state this way so the
        fused path updates the flat array while the reference per-parameter
        loop updates the views — one set of numbers, two access patterns.
        """
        flat = np.zeros_like(self.data)
        views = [flat[s.offset:s.offset + s.size].reshape(s.shape)
                 for s in self.specs]
        return flat, views

    def grad_norm(self) -> float:
        """Global L2 norm of the gradient buffer (single reduction)."""
        g = self.grad
        return float(np.sqrt(float((g * g).sum())))

    def __repr__(self) -> str:
        return (f"ParameterArena({len(self.parameters)} parameters, "
                f"{self.size:,} elements, dtype={self.data.dtype})")
