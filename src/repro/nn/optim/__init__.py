"""Optimizers and LR schedulers.

All optimizers run fused single-array updates when handed a
:class:`~repro.nn.arena.ParameterArena` (or parameters bound to one);
:func:`use_reference_optim` switches them back to the per-parameter
reference loop for equivalence tests and benchmarks.
"""

from .adam import Adam, AdamW
from .optimizer import (Optimizer, clip_grad_norm, reference_optim_enabled,
                        use_reference_optim)
from .schedulers import CosineAnnealingLR, ExponentialLR, StepLR
from .rmsprop import Adagrad, RMSprop
from .sgd import SGD

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "RMSprop", "Adagrad",
           "clip_grad_norm", "use_reference_optim",
           "reference_optim_enabled",
           "StepLR", "ExponentialLR", "CosineAnnealingLR"]
