"""Optimizers and LR schedulers."""

from .adam import Adam, AdamW
from .optimizer import Optimizer, clip_grad_norm
from .schedulers import CosineAnnealingLR, ExponentialLR, StepLR
from .rmsprop import Adagrad, RMSprop
from .sgd import SGD

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "RMSprop", "Adagrad",
           "clip_grad_norm",
           "StepLR", "ExponentialLR", "CosineAnnealingLR"]
