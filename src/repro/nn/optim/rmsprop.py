"""RMSprop and Adagrad — adaptive-rate optimizers for sweep comparisons.

Both take the fused single-array path over a parameter arena when one is
available, with the per-parameter loop kept as the reference path (see
:func:`~repro.nn.optim.use_reference_optim`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..module import Parameter
from .optimizer import Optimizer

__all__ = ["RMSprop", "Adagrad"]


class RMSprop(Optimizer):
    """RMSprop (Tieleman & Hinton): EMA of squared gradients."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 0.01,
                 alpha: float = 0.99, eps: float = 1e-8,
                 weight_decay: float = 0.0, momentum: float = 0.0):
        super().__init__(parameters, lr)
        self.alpha = alpha
        self.eps = eps
        self.weight_decay = weight_decay
        self.momentum = momentum
        self._square_avg_flat, self._square_avg = self._state_buffers()
        self._buffer_flat, self._buffer = self._state_buffers()

    def step(self) -> None:
        if self._fused():
            self._step_fused()
        else:
            self._step_loop()

    def _step_fused(self) -> None:
        data, grad = self.arena.data, self.arena.grad
        square_avg = self._square_avg_flat
        if self.weight_decay:
            grad = grad + self.weight_decay * data
        square_avg *= self.alpha
        square_avg += (1.0 - self.alpha) * grad * grad
        update = grad / (np.sqrt(square_avg) + self.eps)
        if self.momentum:
            buffer = self._buffer_flat
            buffer *= self.momentum
            buffer += update
            update = buffer
        data -= self.lr * update

    def _step_loop(self) -> None:
        for param, square_avg, buffer in zip(self.parameters,
                                             self._square_avg, self._buffer):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            square_avg *= self.alpha
            square_avg += (1.0 - self.alpha) * grad * grad
            update = grad / (np.sqrt(square_avg) + self.eps)
            if self.momentum:
                buffer *= self.momentum
                buffer += update
                update = buffer
            param.data -= self.lr * update


class Adagrad(Optimizer):
    """Adagrad (Duchi et al.): per-coordinate accumulated squared gradients."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 0.01,
                 eps: float = 1e-10, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.eps = eps
        self.weight_decay = weight_decay
        self._accumulator_flat, self._accumulator = self._state_buffers()

    def step(self) -> None:
        if self._fused():
            self._step_fused()
        else:
            self._step_loop()

    def _step_fused(self) -> None:
        data, grad = self.arena.data, self.arena.grad
        accumulator = self._accumulator_flat
        if self.weight_decay:
            grad = grad + self.weight_decay * data
        accumulator += grad * grad
        data -= self.lr * grad / (np.sqrt(accumulator) + self.eps)

    def _step_loop(self) -> None:
        for param, accumulator in zip(self.parameters, self._accumulator):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            accumulator += grad * grad
            param.data -= self.lr * grad / (np.sqrt(accumulator) + self.eps)
