"""RMSprop and Adagrad — adaptive-rate optimizers for sweep comparisons."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..module import Parameter
from .optimizer import Optimizer

__all__ = ["RMSprop", "Adagrad"]


class RMSprop(Optimizer):
    """RMSprop (Tieleman & Hinton): EMA of squared gradients."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 0.01,
                 alpha: float = 0.99, eps: float = 1e-8,
                 weight_decay: float = 0.0, momentum: float = 0.0):
        super().__init__(parameters, lr)
        self.alpha = alpha
        self.eps = eps
        self.weight_decay = weight_decay
        self.momentum = momentum
        self._square_avg = [np.zeros_like(p.data) for p in self.parameters]
        self._buffer = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, square_avg, buffer in zip(self.parameters,
                                             self._square_avg, self._buffer):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            square_avg *= self.alpha
            square_avg += (1.0 - self.alpha) * grad * grad
            update = grad / (np.sqrt(square_avg) + self.eps)
            if self.momentum:
                buffer *= self.momentum
                buffer += update
                update = buffer
            param.data -= self.lr * update


class Adagrad(Optimizer):
    """Adagrad (Duchi et al.): per-coordinate accumulated squared gradients."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 0.01,
                 eps: float = 1e-10, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.eps = eps
        self.weight_decay = weight_decay
        self._accumulator = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, accumulator in zip(self.parameters, self._accumulator):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            accumulator += grad * grad
            param.data -= self.lr * grad / (np.sqrt(accumulator) + self.eps)
