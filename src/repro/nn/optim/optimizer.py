"""Optimizer base class and gradient clipping."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..module import Parameter

__all__ = ["Optimizer", "clip_grad_norm"]


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Clip gradients in place to a global L2 norm; returns the pre-clip norm.

    All the paper's seq2seq models (DCRNN, ST-MetaNet) rely on clipping for
    stable training; we apply it uniformly across models.
    """
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g * g).sum()) for g in grads)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for g in grads:
            g *= scale
    return total


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters: Sequence[Parameter], lr: float):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError
