"""Optimizer base class, gradient clipping, and the fused/reference switch.

Optimizers accept either a plain sequence of :class:`Parameter` objects or
a :class:`repro.nn.arena.ParameterArena` (one flat buffer covering every
parameter — see :meth:`repro.nn.Module.flatten_parameters`).  When an
arena is available, ``step()`` runs *fused*: the whole update is a handful
of vectorized ops over the flat data/grad/state arrays instead of one
Python round per parameter.  The original per-parameter loop is kept as
the reference path — :func:`use_reference_optim` routes every optimizer
back through it inside a ``with`` block, mirroring
:func:`repro.nn.kernels.use_reference_kernels`, so equivalence tests and
``repro bench optim`` can compare both paths in one process.
"""

from __future__ import annotations

import contextlib
from typing import Sequence

import numpy as np

from ..arena import ParameterArena
from ..module import Parameter

__all__ = ["Optimizer", "clip_grad_norm", "use_reference_optim",
           "reference_optim_enabled"]

_REFERENCE = False


@contextlib.contextmanager
def use_reference_optim():
    """Route optimizer steps through the per-parameter reference loop.

    Arena-backed optimizers normally take the fused single-array path;
    inside this block they fall back to the original per-parameter loop
    (over the same arena-view state, so the numbers stay comparable).
    Used by the equivalence tests and the ``repro bench optim`` suite to
    time before/after honestly in a single process.
    """
    global _REFERENCE
    previous = _REFERENCE
    _REFERENCE = True
    try:
        yield
    finally:
        _REFERENCE = previous


def reference_optim_enabled() -> bool:
    """Whether optimizers are currently forced onto the reference loop."""
    return _REFERENCE


def clip_grad_norm(parameters: Sequence[Parameter] | ParameterArena,
                   max_norm: float) -> float:
    """Clip gradients in place to a global L2 norm; returns the pre-clip norm.

    All the paper's seq2seq models (DCRNN, ST-MetaNet) rely on clipping for
    stable training; we apply it uniformly across models.  Passing a
    :class:`~repro.nn.arena.ParameterArena` computes the norm and rescale
    as two vectorized ops on the flat gradient buffer; a parameter sequence
    uses the original per-parameter loop.
    """
    if isinstance(parameters, ParameterArena) and not _REFERENCE:
        total = parameters.grad_norm()
        if total > max_norm and total > 0.0:
            parameters.grad *= max_norm / total
        return total
    if isinstance(parameters, ParameterArena):
        parameters = parameters.parameters
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g * g).sum()) for g in grads)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for g in grads:
            g *= scale
    return total


def _shared_arena(parameters: list[Parameter]) -> ParameterArena | None:
    """The arena that binds exactly ``parameters`` in order, if any."""
    if not parameters:
        return None
    arena = getattr(parameters[0], "_arena", None)
    if arena is None:
        return None
    if len(parameters) != len(arena.parameters):
        return None
    if all(a is b for a, b in zip(parameters, arena.parameters)):
        return arena
    return None


class Optimizer:
    """Base optimizer holding a parameter list (optionally arena-backed).

    ``parameters`` may be a sequence of :class:`Parameter` or a
    :class:`~repro.nn.arena.ParameterArena`.  A plain sequence whose
    entries are all views of one arena (in arena order) is promoted to the
    fused path automatically, so ``Adam(model.parameters())`` after
    ``model.flatten_parameters()`` fuses too.
    """

    def __init__(self, parameters: Sequence[Parameter] | ParameterArena,
                 lr: float):
        if isinstance(parameters, ParameterArena):
            self.arena: ParameterArena | None = parameters
            self.parameters = list(parameters.parameters)
        else:
            self.parameters = list(parameters)
            self.arena = _shared_arena(self.parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def _state_buffers(self) -> tuple[np.ndarray | None, list[np.ndarray]]:
        """One zeroed state buffer per parameter (flat + views when fused).

        Arena-backed optimizers get a flat array whose per-parameter views
        are what the reference loop iterates, so the fused and loop paths
        share state; plain optimizers get independent per-parameter
        arrays and no flat buffer.
        """
        if self.arena is not None:
            return self.arena.state_like()
        return None, [np.zeros_like(p.data) for p in self.parameters]

    def _fused(self) -> bool:
        """Whether this step should take the fused single-array path."""
        if self.arena is None or _REFERENCE:
            return False
        self.arena.sync_grads()
        return True

    def zero_grad(self) -> None:
        if self.arena is not None:
            self.arena.zero_grad()
            return
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError
