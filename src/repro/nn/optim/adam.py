"""Adam / AdamW — the optimizer family used by every model in the paper.

Both optimizers carry two execution paths: the fused single-array update
over a :class:`~repro.nn.arena.ParameterArena` (the default when the model
was flattened) and the original per-parameter loop, kept as the reference
path behind :func:`~repro.nn.optim.use_reference_optim`.  The two paths
share the same moment buffers (the loop iterates views of the fused flat
arrays), so switching mid-run is safe.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..module import Parameter
from .optimizer import Optimizer

__all__ = ["Adam", "AdamW"]


class Adam(Optimizer):
    """Adam (Kingma & Ba).  ``weight_decay`` here is L2-regularisation
    folded into the gradient (torch.optim.Adam semantics)."""

    #: AdamW flips this: decay is applied directly to the weights instead
    #: of being folded into the gradient.
    _decoupled_decay = False

    def __init__(self, parameters: Sequence[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m_flat, self._m = self._state_buffers()
        self._v_flat, self._v = self._state_buffers()
        self._decay_scratch: np.ndarray | None = None   # fused L2 temp

    def step(self) -> None:
        self._step_count += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1 ** self._step_count
        bias2 = 1.0 - beta2 ** self._step_count
        if self._fused():
            self._step_fused(beta1, beta2, bias1, bias2)
        else:
            self._step_loop(beta1, beta2, bias1, bias2)

    def _step_fused(self, beta1: float, beta2: float,
                    bias1: float, bias2: float) -> None:
        data, grad = self.arena.data, self.arena.grad
        m, v = self._m_flat, self._v_flat
        if self.weight_decay:
            if self._decoupled_decay:
                data -= self.lr * self.weight_decay * data
            else:
                # L2 term folded into the gradient.  Built in a persistent
                # scratch buffer: a fresh arena-sized temp every step costs
                # more than the math at this size.  Bitwise-identical to
                # ``grad + weight_decay * data`` (IEEE mul/add commute).
                if (self._decay_scratch is None
                        or self._decay_scratch.shape != grad.shape):
                    self._decay_scratch = np.empty_like(grad)
                np.multiply(data, self.weight_decay, out=self._decay_scratch)
                np.add(self._decay_scratch, grad, out=self._decay_scratch)
                grad = self._decay_scratch
        m *= beta1
        m += (1.0 - beta1) * grad
        v *= beta2
        v += (1.0 - beta2) * grad * grad
        data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

    def _step_loop(self, beta1: float, beta2: float,
                   bias1: float, bias2: float) -> None:
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                if self._decoupled_decay:
                    param.data -= self.lr * self.weight_decay * param.data
                else:
                    grad = grad + self.weight_decay * param.data
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter).

    Decay multiplies the weights directly (``w -= lr * wd * w``) instead of
    entering the moment estimates — a first-class branch in both update
    paths rather than the old mutate-``weight_decay``-and-restore hack.
    """

    _decoupled_decay = True
