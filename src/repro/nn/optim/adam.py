"""Adam / AdamW — the optimizer family used by every model in the paper."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..module import Parameter
from .optimizer import Optimizer

__all__ = ["Adam", "AdamW"]


class Adam(Optimizer):
    """Adam (Kingma & Ba).  ``weight_decay`` here is L2-regularisation
    folded into the gradient (torch.optim.Adam semantics)."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1 ** self._step_count
        bias2 = 1.0 - beta2 ** self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def step(self) -> None:
        if self.weight_decay:
            for param in self.parameters:
                if param.grad is not None:
                    param.data -= self.lr * self.weight_decay * param.data
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay
