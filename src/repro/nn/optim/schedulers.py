"""Learning-rate schedulers."""

from __future__ import annotations

from .optimizer import Optimizer

__all__ = ["StepLR", "ExponentialLR", "CosineAnnealingLR"]


class _Scheduler:
    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self._lr_at(self.epoch)

    def _lr_at(self, epoch: int) -> float:
        raise NotImplementedError


class StepLR(_Scheduler):
    """Multiply LR by ``gamma`` every ``step_size`` epochs (DCRNN-style)."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def _lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class ExponentialLR(_Scheduler):
    def __init__(self, optimizer: Optimizer, gamma: float = 0.95):
        super().__init__(optimizer)
        self.gamma = gamma

    def _lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** epoch


class CosineAnnealingLR(_Scheduler):
    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.t_max = t_max
        self.eta_min = eta_min

    def _lr_at(self, epoch: int) -> float:
        import math
        phase = min(epoch, self.t_max) / self.t_max
        return (self.eta_min +
                (self.base_lr - self.eta_min) * 0.5 * (1 + math.cos(math.pi * phase)))
