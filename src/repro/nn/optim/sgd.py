"""Stochastic gradient descent with optional momentum and weight decay.

Fused single-array updates over a parameter arena by default; the original
per-parameter loop stays available as the reference path (see
:func:`~repro.nn.optim.use_reference_optim`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..module import Parameter
from .optimizer import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    def __init__(self, parameters: Sequence[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity_flat, self._velocity = self._state_buffers()

    def step(self) -> None:
        if self._fused():
            self._step_fused()
        else:
            self._step_loop()

    def _step_fused(self) -> None:
        data, grad = self.arena.data, self.arena.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * data
        if self.momentum:
            velocity = self._velocity_flat
            velocity *= self.momentum
            velocity += grad
            grad = velocity
        data -= self.lr * grad

    def _step_loop(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad
