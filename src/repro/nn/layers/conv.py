"""Convolution layers (1-D and 2-D, with dilation — needed by the TCN models).

Graph-WaveNet and STGCN use dilated/causal temporal convolutions over input
shaped ``(batch, channels, nodes, time)``; ``Conv2d`` with a ``(1, k)``
kernel implements exactly that.
"""

from __future__ import annotations

import numpy as np

from .. import functional as F
from .. import init
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["Conv1d", "Conv2d"]


def _pair(value) -> tuple[int, int]:
    if isinstance(value, tuple):
        return value
    return (value, value)


class Conv2d(Module):
    """2-D convolution over ``(B, C_in, H, W)`` input."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size,
                 stride=1, padding=0, dilation=1, bias: bool = True,
                 *, rng: np.random.Generator):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        self.dilation = _pair(dilation)
        shape = (out_channels, in_channels, *self.kernel_size)
        self.weight = Parameter(init.kaiming_uniform(shape, rng))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride,
                        padding=self.padding, dilation=self.dilation)

    def __repr__(self) -> str:
        return (f"Conv2d({self.in_channels}, {self.out_channels}, "
                f"kernel_size={self.kernel_size}, dilation={self.dilation})")


class Conv1d(Module):
    """1-D convolution over ``(B, C_in, L)`` input."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, dilation: int = 1,
                 bias: bool = True, *, rng: np.random.Generator):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.dilation = dilation
        shape = (out_channels, in_channels, kernel_size)
        self.weight = Parameter(init.kaiming_uniform(shape, rng))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        weight4 = self.weight.expand_dims(2)
        x4 = x.expand_dims(2)
        out = F.conv2d(x4, weight4, self.bias, stride=(1, self.stride),
                       padding=(0, self.padding), dilation=(1, self.dilation))
        return out.squeeze(2)

    def __repr__(self) -> str:
        return (f"Conv1d({self.in_channels}, {self.out_channels}, "
                f"kernel_size={self.kernel_size}, dilation={self.dilation})")
