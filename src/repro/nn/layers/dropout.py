"""Dropout layer with its own seeded generator for reproducible training."""

from __future__ import annotations

import numpy as np

from .. import functional as F
from ..module import Module
from ..tensor import Tensor

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode or when ``p == 0``."""

    def __init__(self, p: float = 0.1, *, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self._rng)
