"""Normalisation layers."""

from __future__ import annotations

import numpy as np

from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["LayerNorm", "BatchNorm"]


class LayerNorm(Module):
    """Layer normalisation over the trailing ``normalized_shape`` axes."""

    def __init__(self, normalized_shape, eps: float = 1e-5):
        super().__init__()
        if isinstance(normalized_shape, int):
            normalized_shape = (normalized_shape,)
        self.normalized_shape = tuple(normalized_shape)
        self.eps = eps
        self.gamma = Parameter(np.ones(self.normalized_shape))
        self.beta = Parameter(np.zeros(self.normalized_shape))

    def forward(self, x: Tensor) -> Tensor:
        axes = tuple(range(x.ndim - len(self.normalized_shape), x.ndim))
        mean = x.mean(axis=axes, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=axes, keepdims=True)
        normalised = centered / (var + self.eps).sqrt()
        return normalised * self.gamma + self.beta


class BatchNorm(Module):
    """Batch normalisation over all axes except ``channel_axis``.

    Keeps running statistics for eval mode, matching torch.nn.BatchNorm2d
    behaviour for input ``(B, C, H, W)`` with ``channel_axis=1``.
    """

    def __init__(self, num_features: int, channel_axis: int = 1,
                 eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.channel_axis = channel_axis
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        axis = self.channel_axis % x.ndim
        reduce_axes = tuple(i for i in range(x.ndim) if i != axis)
        shape = [1] * x.ndim
        shape[axis] = self.num_features

        if self.training:
            mean = x.mean(axis=reduce_axes, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=reduce_axes, keepdims=True)
            self.running_mean *= (1.0 - self.momentum)
            self.running_mean += self.momentum * mean.data.reshape(-1)
            self.running_var *= (1.0 - self.momentum)
            self.running_var += self.momentum * var.data.reshape(-1)
            normalised = centered / (var + self.eps).sqrt()
        else:
            mean = Tensor(self.running_mean.reshape(shape))
            var = Tensor(self.running_var.reshape(shape))
            normalised = (x - mean) / (var + self.eps).sqrt()

        gamma = self.gamma.reshape(*shape)
        beta = self.beta.reshape(*shape)
        return normalised * gamma + beta
