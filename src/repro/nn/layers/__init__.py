"""Neural-network layers built on the autograd tensor."""

from .attention import GraphAttention, MultiHeadAttention, scaled_dot_product_attention
from .conv import Conv1d, Conv2d
from .dropout import Dropout
from .embedding import Embedding
from .linear import Linear
from .norm import BatchNorm, LayerNorm
from .recurrent import GRU, GRUCell, LSTM, LSTMCell

__all__ = [
    "Linear", "Conv1d", "Conv2d", "GRU", "GRUCell", "LSTM", "LSTMCell",
    "MultiHeadAttention", "GraphAttention", "scaled_dot_product_attention",
    "LayerNorm", "BatchNorm", "Embedding", "Dropout",
]
