"""Recurrent layers (GRU family) — the temporal backbone of DCRNN/ST-MetaNet.

The cells operate on flattened node-batches: traffic models treat every node
of every sample as an independent recurrence, so inputs are
``(batch*nodes, features)`` per step.
"""

from __future__ import annotations

import numpy as np

from .. import functional as F
from .. import init
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["GRUCell", "GRU", "LSTMCell", "LSTM"]


class GRUCell(Module):
    """Standard gated recurrent unit cell.

    Gates use a single fused weight for efficiency:
    ``[r, z] = sigmoid(x @ W_xg + h @ W_hg + b_g)``,
    ``c = tanh(x @ W_xc + (r * h) @ W_hc + b_c)``,
    ``h' = z * h + (1 - z) * c``.
    """

    def __init__(self, input_size: int, hidden_size: int, *,
                 rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_xg = Parameter(init.xavier_uniform((input_size, 2 * hidden_size), rng))
        self.w_hg = Parameter(init.xavier_uniform((hidden_size, 2 * hidden_size), rng))
        self.b_g = Parameter(np.ones(2 * hidden_size))  # bias=1 helps gradient flow
        self.w_xc = Parameter(init.xavier_uniform((input_size, hidden_size), rng))
        self.w_hc = Parameter(init.xavier_uniform((hidden_size, hidden_size), rng))
        self.b_c = Parameter(np.zeros(hidden_size))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        gates = (x.matmul(self.w_xg) + h.matmul(self.w_hg) + self.b_g).sigmoid()
        r, z = F.split(gates, 2, axis=-1)
        candidate = (x.matmul(self.w_xc) + (r * h).matmul(self.w_hc) + self.b_c).tanh()
        return z * h + (1.0 - z) * candidate


class LSTMCell(Module):
    """Long short-term memory cell with fused gate weights.

    ``[i, f, g, o] = x W_x + h W_h + b``; forget-gate bias initialised to 1
    (the standard trick for gradient flow early in training).
    """

    def __init__(self, input_size: int, hidden_size: int, *,
                 rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_x = Parameter(init.xavier_uniform((input_size, 4 * hidden_size), rng))
        self.w_h = Parameter(init.xavier_uniform((hidden_size, 4 * hidden_size), rng))
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size:2 * hidden_size] = 1.0       # forget gate
        self.bias = Parameter(bias)

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]
                ) -> tuple[Tensor, Tensor]:
        h, c = state
        fused = x.matmul(self.w_x) + h.matmul(self.w_h) + self.bias
        i_gate, f_gate, g_gate, o_gate = F.split(fused, 4, axis=-1)
        i_gate = i_gate.sigmoid()
        f_gate = f_gate.sigmoid()
        o_gate = o_gate.sigmoid()
        g_gate = g_gate.tanh()
        c_next = f_gate * c + i_gate * g_gate
        h_next = o_gate * c_next.tanh()
        return h_next, c_next


class LSTM(Module):
    """Multi-step LSTM over ``(batch, time, features)``.

    Returns ``(outputs, (h_list, c_list))`` with outputs
    ``(batch, time, hidden)``.
    """

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1,
                 *, rng: np.random.Generator):
        super().__init__()
        from ..module import ModuleList
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.cells = ModuleList(
            [LSTMCell(input_size if i == 0 else hidden_size, hidden_size,
                      rng=rng) for i in range(num_layers)])

    def forward(self, x: Tensor, state=None):
        batch, time, _ = x.shape
        if state is None:
            h = [Tensor(np.zeros((batch, self.hidden_size)))
                 for _ in range(self.num_layers)]
            c = [Tensor(np.zeros((batch, self.hidden_size)))
                 for _ in range(self.num_layers)]
        else:
            h, c = [list(s) for s in state]
        outputs = []
        # unbind makes the T per-step slices share one gradient buffer
        # instead of T full-size scatters on the backward pass.
        for step in F.unbind(x, axis=1):
            for layer, cell in enumerate(self.cells):
                h[layer], c[layer] = cell(step, (h[layer], c[layer]))
                step = h[layer]
            outputs.append(step)
        return F.stack(outputs, axis=1), (h, c)


class GRU(Module):
    """Multi-step GRU over input ``(batch, time, features)``.

    Returns ``(outputs, last_hidden)`` where outputs is
    ``(batch, time, hidden)``.
    """

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1,
                 *, rng: np.random.Generator):
        super().__init__()
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        from ..module import ModuleList
        self.cells = ModuleList(
            [GRUCell(input_size if i == 0 else hidden_size, hidden_size, rng=rng)
             for i in range(num_layers)])

    def forward(self, x: Tensor, h0: list[Tensor] | None = None):
        batch, time, _ = x.shape
        if h0 is None:
            h0 = [Tensor(np.zeros((batch, self.hidden_size)))
                  for _ in range(self.num_layers)]
        hidden = list(h0)
        outputs = []
        for step in F.unbind(x, axis=1):
            for layer, cell in enumerate(self.cells):
                hidden[layer] = cell(step, hidden[layer])
                step = hidden[layer]
            outputs.append(step)
        return F.stack(outputs, axis=1), hidden
