"""Attention layers — used by ASTGCN, GMAN, and the GAT in ST-MetaNet.

The paper implements GAT with DGL; here the same computation is expressed
directly with dense masked attention over the (small) road graph, which is
exact for graphs of this size.
"""

from __future__ import annotations

import numpy as np

from .. import functional as F
from .. import init
from ..module import Module, Parameter
from ..tensor import Tensor
from .linear import Linear

__all__ = ["scaled_dot_product_attention", "MultiHeadAttention", "GraphAttention"]

_NEG_INF = -1e9


def scaled_dot_product_attention(q: Tensor, k: Tensor, v: Tensor,
                                 mask: np.ndarray | None = None) -> Tensor:
    """Attention over the last two axes of ``(..., L_q, d)`` tensors.

    ``mask`` is a boolean array broadcastable to the score shape; ``False``
    entries are excluded from the softmax.
    """
    d = q.shape[-1]
    scores = q.matmul(k.swapaxes(-1, -2)) * (1.0 / np.sqrt(d))
    if mask is not None:
        scores = scores + Tensor(np.where(mask, 0.0, _NEG_INF))
    weights = F.softmax(scores, axis=-1)
    return weights.matmul(v)


class MultiHeadAttention(Module):
    """Multi-head attention with fused projections.

    Input/outputs are ``(batch, length, d_model)``; an optional key-padding
    or structural mask of shape broadcastable to ``(batch, heads, L_q, L_k)``
    restricts attention.
    """

    def __init__(self, d_model: int, num_heads: int, *, rng: np.random.Generator):
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(f"d_model={d_model} not divisible by heads={num_heads}")
        self.d_model = d_model
        self.num_heads = num_heads
        self.d_head = d_model // num_heads
        self.proj_q = Linear(d_model, d_model, rng=rng)
        self.proj_k = Linear(d_model, d_model, rng=rng)
        self.proj_v = Linear(d_model, d_model, rng=rng)
        self.proj_out = Linear(d_model, d_model, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, length, _ = x.shape
        return (x.reshape(batch, length, self.num_heads, self.d_head)
                .transpose(0, 2, 1, 3))

    def forward(self, query: Tensor, key: Tensor, value: Tensor,
                mask: np.ndarray | None = None) -> Tensor:
        batch, length_q, _ = query.shape
        q = self._split_heads(self.proj_q(query))
        k = self._split_heads(self.proj_k(key))
        v = self._split_heads(self.proj_v(value))
        attended = scaled_dot_product_attention(q, k, v, mask=mask)
        merged = attended.transpose(0, 2, 1, 3).reshape(batch, length_q, self.d_model)
        return self.proj_out(merged)


class GraphAttention(Module):
    """Single GAT layer (dense masked formulation) over a fixed graph.

    Input ``(batch, nodes, features)``; attention coefficients follow
    Velickovic et al.: ``e_ij = LeakyReLU(a^T [W h_i || W h_j])`` restricted
    to graph edges (self-loops included).
    """

    def __init__(self, in_features: int, out_features: int, adjacency: np.ndarray,
                 num_heads: int = 2, *, rng: np.random.Generator):
        super().__init__()
        self.num_heads = num_heads
        self.out_features = out_features
        mask = (np.asarray(adjacency) > 0) | np.eye(adjacency.shape[0], dtype=bool)
        self.register_buffer("edge_mask", mask)
        self.weight = Parameter(
            init.xavier_uniform((num_heads, in_features, out_features), rng))
        self.attn_src = Parameter(init.xavier_uniform((num_heads, out_features), rng))
        self.attn_dst = Parameter(init.xavier_uniform((num_heads, out_features), rng))

    def forward(self, x: Tensor) -> Tensor:
        # h: (batch, heads, nodes, out)
        h = F.einsum("bnf,hfo->bhno", x, self.weight)
        score_src = F.einsum("bhno,ho->bhn", h, self.attn_src)
        score_dst = F.einsum("bhno,ho->bhn", h, self.attn_dst)
        scores = (score_src.expand_dims(3) + score_dst.expand_dims(2)).leaky_relu(0.2)
        scores = scores + Tensor(np.where(self.edge_mask, 0.0, _NEG_INF))
        weights = F.softmax(scores, axis=-1)            # (batch, heads, n, n)
        out = weights.matmul(h)                          # (batch, heads, n, out)
        batch, _, nodes, _ = out.shape
        # Average heads (GAT-style for final layers; concat is equivalent in
        # capacity at our scale and averaging keeps widths fixed).
        return out.mean(axis=1)
