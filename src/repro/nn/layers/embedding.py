"""Embedding lookup (used by GMAN's time-of-day embedding)."""

from __future__ import annotations

import numpy as np

from .. import init
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["Embedding"]


class Embedding(Module):
    """Lookup table: integer indices -> dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int, *,
                 rng: np.random.Generator):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            rng.normal(0.0, 1.0 / np.sqrt(embedding_dim),
                       size=(num_embeddings, embedding_dim)))

    def forward(self, indices) -> Tensor:
        index_array = np.asarray(indices, dtype=np.int64)
        if index_array.min() < 0 or index_array.max() >= self.num_embeddings:
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings})")
        return self.weight[index_array]
