"""Dense layer."""

from __future__ import annotations

import numpy as np

from .. import init
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["Linear"]


class Linear(Module):
    """Affine map ``y = x @ W^T + b`` applied over the last axis.

    Accepts input of any leading shape ``(..., in_features)``.
    """

    def __init__(self, in_features: int, out_features: int,
                 bias: bool = True, *, rng: np.random.Generator):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight.swapaxes(0, 1))
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (f"Linear(in_features={self.in_features}, "
                f"out_features={self.out_features}, bias={self.bias is not None})")
