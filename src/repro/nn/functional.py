"""Functional operations on :class:`~repro.nn.tensor.Tensor`.

These are the ops that do not fit naturally as tensor methods: multi-input
ops (``concat``, ``stack``, ``where``, ``einsum``), view fan-outs
(``split``, ``unbind`` — shared-buffer backward), normalised activations
(``softmax``, ``log_softmax``), convolution kernels (im2col-based, backed
by :mod:`repro.nn.kernels`), and stochastic ops (``dropout``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from . import kernels as _kernels
# Imported after .tensor so the obs package (whose metrics module pulls in
# the profiler, and with it the tensor module) never re-enters a partially
# initialised import; kernels.py itself stays obs-free for the same reason.
from .tensor import Tensor, is_grad_enabled, unbroadcast
from ..obs.spans import span

__all__ = [
    "relu", "leaky_relu", "sigmoid", "tanh", "softmax", "log_softmax", "gelu",
    "concat", "stack", "split", "unbind", "where", "einsum", "dropout",
    "conv2d", "conv1d", "unfold2d", "huber",
]


# --------------------------------------------------------------------- #
# thin wrappers so models can use a functional style
# --------------------------------------------------------------------- #
def relu(x: Tensor) -> Tensor:
    return x.relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    return x.leaky_relu(negative_slope)


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def gelu(x: Tensor) -> Tensor:
    """Tanh-approximate GELU."""
    inner = 0.7978845608028654 * (x + 0.044715 * x * x * x)
    return 0.5 * x * (1.0 + inner.tanh())


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    shifted_data = x.data - x.data.max(axis=axis, keepdims=True)
    exp_data = np.exp(shifted_data)
    out_data = exp_data / exp_data.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray) -> None:
        dot = (g * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (g - dot))

    return Tensor._make(out_data, (x,), backward, "softmax")


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_norm
    soft = np.exp(out_data)

    def backward(g: np.ndarray) -> None:
        x._accumulate(g - soft * g.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward, "log_softmax")


# --------------------------------------------------------------------- #
# multi-input ops
# --------------------------------------------------------------------- #
def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * g.ndim
            index[axis] = slice(start, stop)
            t._accumulate(g[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), backward, "concat")


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray) -> None:
        for i, t in enumerate(tensors):
            t._accumulate(np.take(g, i, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward, "stack")


def _slice_views(x: Tensor, indices: Sequence[tuple], op: str) -> list[Tensor]:
    """Basic-index views of ``x`` whose gradients share one buffer.

    Naively, N views of one tensor cost N full-size zero allocations on the
    backward pass (one per ``getitem`` node).  Here every view writes its
    gradient slice into a single shared buffer held by an *anchor* node
    that sits between ``x`` and the views; reverse-topological order
    guarantees all views run before the anchor, which then hands the
    buffer to ``x`` in one pass.  In reference-kernel mode the views fall
    back to plain ``getitem`` nodes (the pre-optimisation behaviour).
    """
    if (not x.requires_grad or not is_grad_enabled()
            or _kernels.reference_kernels_enabled()):
        return [x[idx] for idx in indices]

    def anchor_backward(g: np.ndarray) -> None:
        x._accumulate(g)

    anchor = Tensor._make(x.data, (x,), anchor_backward, op)
    shape, dtype = x.shape, x.data.dtype
    views = []
    for idx in indices:
        def view_backward(g: np.ndarray, idx=idx) -> None:
            if anchor.grad is None:
                anchor.grad = np.zeros(shape, dtype=dtype)
            anchor.grad[idx] += g

        views.append(Tensor._make(x.data[idx], (anchor,), view_backward, op))
    return views


def split(x: Tensor, sections: int, axis: int = 0) -> list[Tensor]:
    """Split into ``sections`` equal chunks along ``axis``.

    The chunks' backward passes accumulate through one shared buffer (see
    :func:`_slice_views`), so a split costs a single full-size gradient
    allocation instead of one per chunk — and never hits ``np.add.at``.
    """
    if x.shape[axis] % sections != 0:
        raise ValueError(
            f"axis {axis} of size {x.shape[axis]} is not divisible by {sections}")
    size = x.shape[axis] // sections
    prefix = (slice(None),) * (axis % x.ndim)
    indices = [prefix + (slice(i * size, (i + 1) * size),)
               for i in range(sections)]
    return _slice_views(x, indices, "split")


def unbind(x: Tensor, axis: int = 0) -> list[Tensor]:
    """Unpack ``x`` into views along ``axis`` (like ``torch.unbind``).

    ``unbind(x, 1)[t]`` equals ``x[:, t]``; the recurrent stacks and
    seq2seq codecs use it so that T per-step slices cost one shared
    gradient buffer on the backward pass instead of T full-size scatters.
    """
    axis = range(x.ndim)[axis]          # normalises and bounds-checks
    prefix = (slice(None),) * axis
    indices = [prefix + (i,) for i in range(x.shape[axis])]
    return _slice_views(x, indices, "unbind")


def where(condition, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select; ``condition`` is a plain bool array."""
    condition = np.asarray(condition, dtype=bool)
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    out_data = np.where(condition, a.data, b.data)

    def backward(g: np.ndarray) -> None:
        a._accumulate(unbroadcast(np.where(condition, g, 0.0), a.shape))
        b._accumulate(unbroadcast(np.where(condition, 0.0, g), b.shape))

    return Tensor._make(out_data, (a, b), backward, "where")


def einsum(subscripts: str, a: Tensor, b: Tensor) -> Tensor:
    """Two-operand einsum with autograd.

    The gradient w.r.t. each operand is itself an einsum with permuted
    subscripts (``out,other->operand``).  This requires every index of an
    operand to appear in the output or the other operand, and no repeated
    indices within one operand — which holds for all graph-convolution
    contractions used in this package.
    """
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    if "..." in subscripts:
        raise ValueError("ellipsis subscripts are not supported")
    lhs, out_sub = subscripts.replace(" ", "").split("->")
    a_sub, b_sub = lhs.split(",")
    if len(set(a_sub)) != len(a_sub) or len(set(b_sub)) != len(b_sub):
        raise ValueError("repeated indices within one operand are not supported")
    for idx in a_sub:
        if idx not in out_sub and idx not in b_sub:
            raise ValueError(f"index {idx!r} of first operand is summed alone")
    for idx in b_sub:
        if idx not in out_sub and idx not in a_sub:
            raise ValueError(f"index {idx!r} of second operand is summed alone")

    out_data = np.einsum(subscripts, a.data, b.data)

    def backward(g: np.ndarray) -> None:
        a._accumulate(np.einsum(f"{out_sub},{b_sub}->{a_sub}", g, b.data))
        b._accumulate(np.einsum(f"{out_sub},{a_sub}->{b_sub}", g, a.data))

    return Tensor._make(out_data, (a, b), backward, "einsum")


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: identity at eval time."""
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep) / keep

    def backward(g: np.ndarray) -> None:
        x._accumulate(g * mask)

    return Tensor._make(x.data * mask, (x,), backward, "dropout")


def huber(x: Tensor, delta: float = 1.0) -> Tensor:
    """Elementwise Huber penalty of ``x`` (used by masked losses)."""
    abs_data = np.abs(x.data)
    quadratic = abs_data <= delta
    out_data = np.where(quadratic, 0.5 * x.data ** 2,
                        delta * (abs_data - 0.5 * delta))

    def backward(g: np.ndarray) -> None:
        x._accumulate(g * np.where(quadratic, x.data, delta * np.sign(x.data)))

    return Tensor._make(out_data, (x,), backward, "huber")


# --------------------------------------------------------------------- #
# convolution (im2col — see repro.nn.kernels for the index cache and the
# fast col2im scatter)
# --------------------------------------------------------------------- #
def unfold2d(x_data: np.ndarray, kernel: tuple[int, int],
             stride: tuple[int, int] = (1, 1),
             dilation: tuple[int, int] = (1, 1)):
    """im2col on raw data: (B, C, H, W) -> (B, C*kh*kw, L), plus out shape."""
    return _kernels.im2col(x_data, kernel, stride, dilation)


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           stride: tuple[int, int] = (1, 1),
           padding: tuple[int, int] = (0, 0),
           dilation: tuple[int, int] = (1, 1)) -> Tensor:
    """2-D convolution.

    ``x``: (B, C_in, H, W); ``weight``: (C_out, C_in, kh, kw);
    ``bias``: (C_out,) or None.  Padding is symmetric zero padding.

    The im2col index grids are cached per geometry, the three matrix
    contractions run on BLAS (:func:`repro.nn.kernels.conv_forward_contract`
    and friends), and the backward input scatter uses the vectorised
    :func:`repro.nn.kernels.col2im` (strided slice adds / bincount) rather
    than ``np.add.at``.
    """
    stride = (int(stride[0]), int(stride[1]))
    dilation = (int(dilation[0]), int(dilation[1]))
    if padding != (0, 0):
        x = x.pad(((0, 0), (0, 0), (padding[0], padding[0]),
                   (padding[1], padding[1])))
    batch, c_in, height, width = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"conv2d channel mismatch: input {c_in} vs weight {c_in_w}")

    with span("kernel/conv2d", batch=batch, kernel=(kh, kw)):
        rows, cols, out_h, out_w = _kernels.col_indices(
            height, width, (kh, kw), stride, dilation)
        patches = x.data[:, :, rows, cols]                    # (B, C, K, L)
        cols_mat = patches.reshape(batch, c_in * kh * kw, -1)  # (B, CK, L)
        w_mat = weight.data.reshape(c_out, -1)                # (Cout, CK)
        out_data = _kernels.conv_forward_contract(w_mat, cols_mat)
        if bias is not None:
            out_data = out_data + bias.data[None, :, None]
        out_data = out_data.reshape(batch, c_out, out_h, out_w)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g: np.ndarray) -> None:
        with span("kernel/conv2d_backward", batch=batch, kernel=(kh, kw)):
            g_mat = g.reshape(batch, c_out, -1)              # (B, Cout, L)
            # weight grad
            gw = _kernels.conv_weight_grad_contract(g_mat, cols_mat)
            weight._accumulate(gw.reshape(weight.shape))
            if bias is not None:
                bias._accumulate(g_mat.sum(axis=(0, 2)))
            # input grad: scatter columns back
            g_cols = _kernels.conv_col_grad_contract(w_mat, g_mat)
            g_cols = g_cols.reshape(batch, c_in, kh * kw, -1)
            col2im = (_kernels.col2im_reference
                      if _kernels.reference_kernels_enabled()
                      else _kernels.col2im)
            gx = col2im(g_cols, (batch, c_in, height, width), (kh, kw),
                        stride, dilation)
            x._accumulate(gx)

    return Tensor._make(out_data, parents, backward, "conv2d")


def conv1d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           stride: int = 1, padding: int = 0, dilation: int = 1) -> Tensor:
    """1-D convolution via conv2d.  ``x``: (B, C, L); ``weight``: (Cout, Cin, k)."""
    x4 = x.expand_dims(2)                                 # (B, C, 1, L)
    w4 = weight.expand_dims(2)                            # (Cout, Cin, 1, k)
    out = conv2d(x4, w4, bias, stride=(1, stride),
                 padding=(0, padding), dilation=(1, dilation))
    return out.squeeze(2)
