"""Numerical gradient checking — public utility for extension authors.

Any new op or layer added to :mod:`repro.nn` should pass
:func:`check_gradients`, which compares reverse-mode gradients against
central differences.  The test suite uses the same machinery for every op.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(func: Callable[[], float], array: np.ndarray,
                       eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``func()`` w.r.t. ``array``.

    ``func`` must read ``array`` by reference: it is perturbed in place and
    restored after each evaluation.
    """
    grad = np.zeros_like(array)
    iterator = np.nditer(array, flags=["multi_index"])
    for _ in iterator:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + eps
        plus = func()
        array[index] = original - eps
        minus = func()
        array[index] = original
        grad[index] = (plus - minus) / (2 * eps)
    return grad


def check_gradients(func: Callable[..., Tensor],
                    inputs: Sequence[np.ndarray],
                    atol: float = 1e-5, rtol: float = 1e-4,
                    eps: float = 1e-6) -> bool:
    """Verify ``func(*tensors).sum()`` gradients against central differences.

    Parameters
    ----------
    func:
        Maps input Tensors to an output Tensor (any shape; the check sums
        it to a scalar).
    inputs:
        Raw arrays; each is checked as a differentiable input.

    Returns True on success; raises ``AssertionError`` with the offending
    input index otherwise.
    """
    arrays = [np.array(a, dtype=float) for a in inputs]
    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    func(*tensors).sum().backward()

    for i, (array, tensor) in enumerate(zip(arrays, tensors)):
        def value() -> float:
            fresh = [Tensor(a) for a in arrays]
            return float(func(*fresh).data.sum())

        expected = numerical_gradient(value, arrays[i], eps)
        if tensor.grad is None:
            raise AssertionError(f"input {i} received no gradient")
        if not np.allclose(tensor.grad, expected, atol=atol, rtol=rtol):
            worst = np.abs(tensor.grad - expected).max()
            raise AssertionError(
                f"input {i}: max gradient error {worst:.3e} exceeds "
                f"tolerance (atol={atol}, rtol={rtol})")
    return True
