"""A reverse-mode automatic differentiation engine on top of numpy.

This module is the substrate that replaces PyTorch in the reproduction: every
model in :mod:`repro.models` is built from :class:`Tensor` operations so that
all eight architectures share one set of kernels, exactly as the paper runs
all models on one framework to keep comparisons fair.

The design is a classic dynamic tape: each :class:`Tensor` produced by an
operation keeps references to its parents and a closure that propagates the
output gradient to them.  Calling :meth:`Tensor.backward` topologically sorts
the tape and accumulates gradients into ``.grad`` (a plain numpy array).

Broadcasting follows numpy semantics; gradients of broadcast operands are
reduced back to the operand shape with :func:`unbroadcast`.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

from .kernels import reference_kernels_enabled

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "unbroadcast"]

# Global switch consulted when deciding whether a new node joins the tape.
_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (like torch.no_grad)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""
    return _GRAD_ENABLED


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so its shape matches ``shape`` after broadcasting.

    Summation is the adjoint of numpy broadcasting: axes that were added are
    summed away, and axes that were stretched from size one are summed with
    ``keepdims``.
    """
    if grad.shape == shape:
        return grad
    # Sum away leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were broadcast from size 1.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _scatter_add(target: np.ndarray, index, grad: np.ndarray) -> None:
    """Unbuffered scatter-add (``np.add.at``) — the slow general path.

    Kept as a module-level seam so tests can count how often the engine
    falls off the basic-index fast path.
    """
    np.add.at(target, index, grad)


def _is_basic_index(index) -> bool:
    """True when ``index`` triggers only numpy *basic* indexing.

    Basic indices (ints, slices, Ellipsis, newaxis) select each input
    element at most once, so the adjoint is a plain in-place add on a view
    — no duplicate handling needed.  Arrays, lists and boolean masks are
    *advanced* indexing and may repeat elements.
    """
    items = index if isinstance(index, tuple) else (index,)
    for item in items:
        if item is None or item is Ellipsis:
            continue
        if isinstance(item, (int, np.integer, slice)):
            continue
        return False
    return True


def _normalize_pad_width(pad_width, ndim: int) -> tuple[tuple[int, int], ...]:
    """Expand ``pad_width`` to per-axis ``(before, after)`` pairs.

    Follows :func:`numpy.pad` semantics: a scalar pads every side of every
    axis, a single ``(before, after)`` pair applies to all axes, and a
    sequence of per-axis pairs is used as given.  Anything else (wrong
    arity, negative or non-integer amounts) raises instead of silently
    mis-slicing the backward pass.
    """
    array = np.asarray(pad_width)
    if array.dtype.kind not in "iu":
        raise TypeError(
            f"pad_width must contain integers, got dtype {array.dtype}")
    try:
        pairs = np.broadcast_to(array, (ndim, 2))
    except ValueError:
        raise ValueError(
            f"pad_width {pad_width!r} is not broadcastable to ({ndim}, 2) "
            f"for a {ndim}-d tensor") from None
    if pairs.size and pairs.min() < 0:
        raise ValueError(f"pad_width must be non-negative, got {pad_width!r}")
    return tuple((int(before), int(after)) for before, after in pairs)


def _freed_backward(grad: np.ndarray) -> None:
    """Placeholder closure installed by ``backward(free_graph=True)``."""
    raise RuntimeError(
        "backward through a freed graph: this tensor's tape was released "
        "by backward(free_graph=True); rebuild the graph to differentiate "
        "again")


def _as_array(value, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        raise TypeError("expected raw data, got Tensor")
    array = np.asarray(value, dtype=dtype)
    if array.dtype.kind not in "fiub":
        raise TypeError(f"unsupported dtype {array.dtype}")
    if array.dtype.kind in "iub":
        array = array.astype(np.float64 if dtype is None else dtype)
    return array


class Tensor:
    """A numpy-backed array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload.  Integer input is promoted to float.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "op")

    def __init__(self, data, requires_grad: bool = False, *, dtype=None,
                 _parents: tuple["Tensor", ...] = (),
                 _backward: Callable[[np.ndarray], None] | None = None,
                 op: str = ""):
        self.data = _as_array(data, dtype)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._parents = _parents if self.requires_grad else ()
        self._backward = _backward if self.requires_grad else None
        self.op = op

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph construction helper
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None], op: str) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        return Tensor(data, requires_grad=requires,
                      _parents=tuple(parents), _backward=backward, op=op)

    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            # Copy so later in-place += does not alias caller buffers.
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            # Reuse the existing buffer: one pass, no temporary.
            np.add(self.grad, grad, out=self.grad)

    # ------------------------------------------------------------------ #
    # backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: np.ndarray | None = None, *,
                 free_graph: bool = False) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (so scalars need no argument, matching the
        usual loss.backward() idiom).

        With ``free_graph=True`` the tape is torn down as soon as the pass
        completes: intermediate nodes drop their parent references,
        backward closures, and gradient buffers, so the whole graph (and
        every activation captured by its closures) becomes collectible
        immediately.  This cuts peak RSS during training, where each batch
        builds a fresh graph anyway; a second backward through a freed
        graph raises ``RuntimeError``.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor shape {self.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        # Reset *intermediate* gradients (nodes produced by ops) so repeated
        # backward passes through the same graph do not re-propagate stale
        # values; leaves (parameters/inputs, _backward is None) accumulate
        # across calls as usual.
        for node in topo:
            if node._backward is not None:
                node.grad = None

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                if free_graph:
                    # All consumers already ran (reverse-topological order),
                    # so this buffer can never be read again.
                    node.grad = None
        if free_graph:
            for node in topo:
                if node._backward is not None:
                    node._parents = ()
                    node._backward = _freed_backward

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(g: np.ndarray) -> None:
            self._accumulate(unbroadcast(g, self.shape))
            other._accumulate(unbroadcast(g, other.shape))

        return self._make(out_data, (self, other), backward, "add")

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data - other.data

        def backward(g: np.ndarray) -> None:
            self._accumulate(unbroadcast(g, self.shape))
            other._accumulate(unbroadcast(-g, other.shape))

        return self._make(out_data, (self, other), backward, "sub")

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(g: np.ndarray) -> None:
            self._accumulate(unbroadcast(g * other.data, self.shape))
            other._accumulate(unbroadcast(g * self.data, other.shape))

        return self._make(out_data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(g: np.ndarray) -> None:
            self._accumulate(unbroadcast(g / other.data, self.shape))
            other._accumulate(
                unbroadcast(-g * self.data / (other.data ** 2), other.shape))

        return self._make(out_data, (self, other), backward, "div")

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            self._accumulate(-g)

        return self._make(-self.data, (self,), backward, "neg")

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward, "pow")

    def __matmul__(self, other) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other) -> "Tensor":
        """Batched matrix multiply following numpy @ semantics."""
        other = self._coerce(other)
        out_data = self.data @ other.data
        a, b = self.data, other.data

        def backward(g: np.ndarray) -> None:
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(g * b)
                other._accumulate(g * a)
                return
            if a.ndim == 1:  # (k,) @ (..., k, n) -> (..., n)
                ga = (g[..., None, :] * b).sum(axis=-1)
                self._accumulate(unbroadcast(ga, a.shape))
                other._accumulate(unbroadcast(a[:, None] * g[..., None, :], b.shape))
                return
            if b.ndim == 1:  # (..., m, k) @ (k,) -> (..., m)
                self._accumulate(unbroadcast(g[..., :, None] * b, a.shape))
                other._accumulate(unbroadcast((a * g[..., :, None]).sum(axis=tuple(range(a.ndim - 1))), b.shape))
                return
            ga = g @ np.swapaxes(b, -1, -2)
            gb = np.swapaxes(a, -1, -2) @ g
            self._accumulate(unbroadcast(ga, a.shape))
            other._accumulate(unbroadcast(gb, b.shape))

        return self._make(out_data, (self, other), backward, "matmul")

    # ------------------------------------------------------------------ #
    # elementwise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * out_data)

        return self._make(out_data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g / self.data)

        return self._make(out_data, (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * 0.5 / out_data)

        return self._make(out_data, (self,), backward, "sqrt")

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * np.sign(self.data))

        return self._make(out_data, (self,), backward, "abs")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * (1.0 - out_data ** 2))

        return self._make(out_data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic.
        out_data = np.where(self.data >= 0,
                            1.0 / (1.0 + np.exp(-np.clip(self.data, -60, None))),
                            np.exp(np.clip(self.data, None, 60)) /
                            (1.0 + np.exp(np.clip(self.data, None, 60))))

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward, "sigmoid")

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, 0.0)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * mask)

        return self._make(out_data, (self,), backward, "relu")

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, negative_slope * self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * np.where(mask, 1.0, negative_slope))

        return self._make(out_data, (self,), backward, "leaky_relu")

    def log1p(self) -> "Tensor":
        out_data = np.log1p(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g / (1.0 + self.data))

        return self._make(out_data, (self,), backward, "log1p")

    def softplus(self) -> "Tensor":
        """Numerically stable ``log(1 + exp(x))``."""
        out_data = np.where(self.data > 30, self.data,
                            np.log1p(np.exp(np.clip(self.data, None, 30))))

        def backward(g: np.ndarray) -> None:
            sig = np.where(self.data >= 0,
                           1.0 / (1.0 + np.exp(-np.clip(self.data, -60, None))),
                           np.exp(np.clip(self.data, None, 60))
                           / (1.0 + np.exp(np.clip(self.data, None, 60))))
            self._accumulate(g * sig)

        return self._make(out_data, (self,), backward, "softplus")

    def sin(self) -> "Tensor":
        out_data = np.sin(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * np.cos(self.data))

        return self._make(out_data, (self,), backward, "sin")

    def cos(self) -> "Tensor":
        out_data = np.cos(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(-g * np.sin(self.data))

        return self._make(out_data, (self,), backward, "cos")

    def clip(self, low: float | None, high: float | None) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = np.ones_like(self.data, dtype=bool)
        if low is not None:
            mask &= self.data >= low
        if high is not None:
            mask &= self.data <= high

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * mask)

        return self._make(out_data, (self,), backward, "clip")

    def maximum(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = np.maximum(self.data, other.data)
        take_self = self.data >= other.data

        def backward(g: np.ndarray) -> None:
            self._accumulate(unbroadcast(g * take_self, self.shape))
            other._accumulate(unbroadcast(g * ~take_self, other.shape))

        return self._make(out_data, (self, other), backward, "maximum")

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        in_shape = self.shape

        def backward(g: np.ndarray) -> None:
            gg = g
            if not keepdims and axis is not None:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % len(in_shape) for a in axes)
                for a in sorted(axes):
                    gg = np.expand_dims(gg, a)
            self._accumulate(np.broadcast_to(gg, in_shape).astype(self.data.dtype))

        return self._make(out_data, (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        expanded = self.data.max(axis=axis, keepdims=True)
        mask = self.data == expanded
        # Split gradient among ties, like numpy-consistent subgradient.
        counts = mask.sum(axis=axis, keepdims=True)

        def backward(g: np.ndarray) -> None:
            gg = g
            if not keepdims and axis is not None:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.ndim for a in axes)
                for a in sorted(axes):
                    gg = np.expand_dims(gg, a)
            elif not keepdims and axis is None:
                gg = np.asarray(g).reshape((1,) * self.ndim)
            self._accumulate(np.broadcast_to(gg, self.shape) * mask / counts)

        return self._make(out_data, (self,), backward, "max")

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Population variance (ddof=0), differentiable."""
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        out = (centered * centered).mean(axis=axis, keepdims=keepdims)
        return out

    def std(self, axis=None, keepdims: bool = False,
            eps: float = 0.0) -> "Tensor":
        """Population standard deviation; ``eps`` guards the sqrt at 0."""
        variance = self.var(axis=axis, keepdims=keepdims)
        if eps:
            variance = variance + eps
        return variance.sqrt()

    def norm(self, axis=None, keepdims: bool = False) -> "Tensor":
        """L2 norm over ``axis`` (all axes when None)."""
        return (self * self).sum(axis=axis, keepdims=keepdims).sqrt()

    def cumsum(self, axis: int) -> "Tensor":
        out_data = np.cumsum(self.data, axis=axis)

        def backward(g: np.ndarray) -> None:
            # Adjoint of cumsum is reversed cumsum along the same axis.
            flipped = np.flip(g, axis=axis)
            self._accumulate(np.flip(np.cumsum(flipped, axis=axis), axis=axis))

        return self._make(out_data, (self,), backward, "cumsum")

    def argmax(self, axis=None) -> np.ndarray:
        """Index of the maximum (plain numpy; no gradient flows)."""
        return self.data.argmax(axis=axis)

    def argmin(self, axis=None) -> np.ndarray:
        return self.data.argmin(axis=axis)

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        in_shape = self.shape

        def backward(g: np.ndarray) -> None:
            self._accumulate(g.reshape(in_shape))

        return self._make(out_data, (self,), backward, "reshape")

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g.transpose(inverse))

        return self._make(out_data, (self,), backward, "transpose")

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def expand_dims(self, axis: int) -> "Tensor":
        out_data = np.expand_dims(self.data, axis)

        def backward(g: np.ndarray) -> None:
            self._accumulate(np.squeeze(g, axis=axis))

        return self._make(out_data, (self,), backward, "expand_dims")

    def squeeze(self, axis: int) -> "Tensor":
        out_data = np.squeeze(self.data, axis=axis)

        def backward(g: np.ndarray) -> None:
            self._accumulate(np.expand_dims(g, axis))

        return self._make(out_data, (self,), backward, "squeeze")

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        in_shape = self.shape
        dtype = self.data.dtype
        basic = _is_basic_index(index)

        def backward(g: np.ndarray) -> None:
            full = np.zeros(in_shape, dtype=dtype)
            if basic and not reference_kernels_enabled():
                # Basic indexing selects each element at most once, so the
                # adjoint is a single in-place add on a view — no
                # duplicate-safe (and slow) scatter needed.
                full[index] += g
            else:
                _scatter_add(full, index, g)
            self._accumulate(full)

        return self._make(out_data, (self,), backward, "getitem")

    def pad(self, pad_width) -> "Tensor":
        """Zero-pad; ``pad_width`` follows numpy.pad convention.

        Accepts a scalar (all sides), one ``(before, after)`` pair (all
        axes), or per-axis pairs, exactly like :func:`numpy.pad`.
        """
        pairs = _normalize_pad_width(pad_width, self.ndim)
        out_data = np.pad(self.data, pairs)
        slices = tuple(slice(before, before + n)
                       for (before, _), n in zip(pairs, self.shape))

        def backward(g: np.ndarray) -> None:
            self._accumulate(g[slices])

        return self._make(out_data, (self,), backward, "pad")

    def repeat(self, repeats: int, axis: int) -> "Tensor":
        """Tile along ``axis`` (numpy.repeat with scalar repeats)."""
        out_data = np.repeat(self.data, repeats, axis=axis)
        n = self.shape[axis]

        def backward(g: np.ndarray) -> None:
            new_shape = list(g.shape)
            new_shape[axis:axis + 1] = [n, repeats]
            self._accumulate(g.reshape(new_shape).sum(axis=axis + 1))

        return self._make(out_data, (self,), backward, "repeat")

    # comparison helpers return plain numpy bool arrays (no grad flows)
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other

    def __ge__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data >= other

    def __le__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data <= other
