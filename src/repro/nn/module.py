"""Module / Parameter abstractions (the torch.nn.Module analogue).

Modules register :class:`Parameter` attributes and child modules
automatically via ``__setattr__``; ``parameters()`` and ``state_dict()``
walk the tree.  ``train()`` / ``eval()`` toggle stochastic layers.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList"]


class Parameter(Tensor):
    """A tensor flagged as learnable (``requires_grad=True``).

    A parameter may be *arena-bound* (see :class:`repro.nn.arena.ParameterArena`
    and :meth:`Module.flatten_parameters`): its ``data`` is then a view into
    one flat buffer shared by every parameter of the model, and it keeps a
    persistent flat gradient view so backward passes accumulate straight
    into the arena.  Free-standing parameters behave exactly as before.
    """

    __slots__ = ("_grad_view", "_arena")

    def __init__(self, data, *, dtype=None):
        super().__init__(data, requires_grad=True, dtype=dtype)
        self._grad_view = None          # arena gradient view, when bound
        self._arena = None              # owning ParameterArena, when bound

    def zero_grad(self) -> None:
        if self._grad_view is not None:
            # Arena-bound: zero the persistent view in place so autograd
            # keeps accumulating into the flat buffer.
            self._grad_view.fill(0.0)
            self.grad = self._grad_view
        else:
            self.grad = None


class Module:
    """Base class for all neural-network modules."""

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_buffers", {})
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Attach non-learnable state that is saved in the state dict."""
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix + name + ".")

    def num_parameters(self) -> int:
        """Total number of scalar learnable parameters."""
        return sum(p.size for p in self.parameters())

    def flatten_parameters(self):
        """Pack every parameter into one flat arena; returns the arena.

        All parameter data (and gradients) are rebound as views into one
        contiguous buffer pair, enabling the fused single-array optimizer
        paths and one-reduction gradient clipping (see
        :mod:`repro.nn.arena`).  Idempotent: calling again returns the
        existing arena while it still covers the parameter tree exactly.
        """
        from .arena import ParameterArena

        existing = getattr(self, "_flat_arena", None)
        seen: set[int] = set()
        unique = []
        for param in self.parameters():
            if id(param) not in seen:       # tied parameters appear once
                seen.add(id(param))
                unique.append(param)
        if existing is not None and existing.covers(unique):
            return existing
        arena = ParameterArena(self.named_parameters())
        object.__setattr__(self, "_flat_arena", arena)
        return arena

    # ------------------------------------------------------------------ #
    # modes / grads
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict[str, np.ndarray]:
        state: dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for mod_name, module in self.named_modules():
            for buf_name, buf in module._buffers.items():
                key = f"{mod_name}.{buf_name}" if mod_name else buf_name
                state[key] = buf.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own: dict[str, np.ndarray] = {name: p for name, p in self.named_parameters()}
        for name, param in own.items():
            if name not in state:
                raise KeyError(f"missing parameter {name!r} in state dict")
            value = np.asarray(state[name])
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: {value.shape} vs {param.shape}")
            param.data[...] = value
        for mod_name, module in self.named_modules():
            for buf_name in module._buffers:
                key = f"{mod_name}.{buf_name}" if mod_name else buf_name
                if key in state:
                    module._buffers[buf_name][...] = state[key]
                    object.__setattr__(module, buf_name, module._buffers[buf_name])

    def save(self, path: str) -> None:
        """Persist the state dict to an ``.npz`` file."""
        np.savez(path, **self.state_dict())

    def load(self, path: str) -> None:
        with np.load(path) as payload:
            self.load_state_dict({k: payload[k] for k in payload.files})

    # ------------------------------------------------------------------ #
    # call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order = []
        for i, module in enumerate(modules):
            setattr(self, f"layer{i}", module)
            self._order.append(module)

    def forward(self, x):
        for module in self._order:
            x = module(x)
        return x

    def __iter__(self):
        return iter(self._order)

    def __len__(self):
        return len(self._order)


class ModuleList(Module):
    """List container whose entries are registered as child modules."""

    def __init__(self, modules=()):
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        setattr(self, f"item{len(self._items)}", module)
        self._items.append(module)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __iter__(self):
        return iter(self._items)

    def __len__(self):
        return len(self._items)
