"""Weight initialisers.

All initialisers take an explicit :class:`numpy.random.Generator` so model
construction is fully deterministic given a seed — the paper repeats every
experiment five times with different seeds and reports mean ± std, which we
reproduce in :mod:`repro.core.experiment`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "kaiming_uniform", "uniform", "zeros", "ones"]


def _fan(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and convolutional shapes."""
    if len(shape) < 1:
        raise ValueError("cannot compute fans of a scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator,
                   gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = _fan(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator,
                  gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = _fan(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator,
                    nonlinearity: str = "relu") -> np.ndarray:
    fan_in, _ = _fan(shape)
    gain = np.sqrt(2.0) if nonlinearity == "relu" else 1.0
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def uniform(shape: tuple[int, ...], rng: np.random.Generator,
            low: float = -0.1, high: float = 0.1) -> np.ndarray:
    return rng.uniform(low, high, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)
