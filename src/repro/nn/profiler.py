"""Op census profiler for the autograd engine.

Explains Table III-style cost differences *mechanistically*: wrap a
forward/backward region in :func:`profile` and get, per op type, the number
of graph nodes created and the number of output elements produced — e.g.
DCRNN's cost shows up as thousands of small matmul/sigmoid nodes from its
24 sequential GRU steps, while Graph-WaveNet concentrates work in a few
large conv2d nodes.  The report also records the block's wall-clock time.

Element counts are a workload proxy, not a timer: per-op wall time cannot
be attributed exactly without instrumenting every kernel, but node counts ×
sizes explain *why* one architecture is slower (graph depth vs op width).
"""

from __future__ import annotations

import contextlib
import time
from collections import defaultdict
from dataclasses import dataclass, field

from .tensor import Tensor

__all__ = ["OpStats", "ProfileReport", "profile"]


@dataclass
class OpStats:
    """Aggregate statistics for one op type."""

    count: int = 0
    elements: int = 0      # total output elements produced by this op


@dataclass
class ProfileReport:
    """Result of a profiling session."""

    ops: dict[str, OpStats] = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def total_nodes(self) -> int:
        return sum(s.count for s in self.ops.values())

    @property
    def total_elements(self) -> int:
        return sum(s.elements for s in self.ops.values())

    def top(self, n: int = 10, by: str = "elements") -> list[tuple[str, OpStats]]:
        """Ops ordered by ``elements`` (default) or ``count``."""
        if by not in ("elements", "count"):
            raise ValueError(f"unknown sort key {by!r}")
        ranked = sorted(self.ops.items(),
                        key=lambda kv: -getattr(kv[1], by))
        return ranked[:n]

    def render(self, n: int = 10) -> str:
        lines = [f"wall time: {self.wall_seconds:.4f}s, "
                 f"{self.total_nodes} graph nodes, "
                 f"{self.total_elements:,} output elements"]
        lines.append(f"{'op':<14} {'nodes':>8} {'elements':>14} {'share':>7}")
        total = self.total_elements or 1
        for name, stats in self.top(n):
            lines.append(f"{name:<14} {stats.count:>8} "
                         f"{stats.elements:>14,} "
                         f"{stats.elements / total * 100:>6.1f}%")
        return "\n".join(lines)


@contextlib.contextmanager
def profile():
    """Record every Tensor op created inside the block.

    Yields a :class:`ProfileReport` populated live; ``wall_seconds`` is
    final once the block exits.  Works under ``no_grad`` too (construction
    still flows through ``Tensor._make``).
    """
    report = ProfileReport(ops=defaultdict(OpStats))
    raw = Tensor.__dict__["_make"]
    original_make = raw.__func__ if isinstance(raw, staticmethod) else raw
    start = time.perf_counter()

    def counting_make(data, parents, backward, op):
        result = original_make(data, parents, backward, op)
        stats = report.ops[op or "unnamed"]
        stats.count += 1
        stats.elements += result.data.size
        return result

    Tensor._make = staticmethod(counting_make)
    try:
        yield report
    finally:
        Tensor._make = staticmethod(original_make)
        report.wall_seconds = time.perf_counter() - start
        report.ops = dict(report.ops)
