"""Optimizer benchmark suite: fused arena updates vs. the reference loop.

The paper's models carry hundreds of small gate matrices (DCRNN-style
recurrent cells), so the per-parameter optimizer loop used to pay one
round of numpy-call overhead per parameter per step.  This suite times
every optimizer both ways on a synthetic many-parameter model — the fused
single-array path over a :class:`repro.nn.arena.ParameterArena` against
the per-parameter reference loop
(:func:`repro.nn.optim.use_reference_optim`) — plus the two other hot
arena operations, gradient clipping and ``zero_grad``.

Cases
-----
- ``adam_step`` / ``adamw_step`` / ``sgd_step`` / ``rmsprop_step`` /
  ``adagrad_step`` — one optimizer step (with weight decay / momentum
  engaged where the optimizer supports it)
- ``clip_grad_norm``  — global-L2 norm over all gradients (one reduction
  on the flat buffer vs. a per-parameter sum)
- ``zero_grad``       — one memset of the arena grad buffer vs. a
  per-parameter loop

Every case emits a :class:`repro.obs.OptimBench` event on the bus; the CLI
front-end is ``python -m repro bench optim`` (``--json`` records
``BENCH_optim.json``).  See ``docs/training.md``.
"""

from __future__ import annotations

import numpy as np

from ..obs.events import EventBus, OptimBench, get_bus
from .kernel_bench import KernelTiming, _best_of
from .module import Module, Parameter
from .optim import (SGD, Adagrad, Adam, AdamW, RMSprop, clip_grad_norm,
                    reference_optim_enabled, use_reference_optim)

__all__ = ["bench_optim", "OPTIM_BENCH_MODES"]

#: Per-mode workload sizes.  ``quick`` keeps the suite under a second for
#: the tier-1 smoke test; ``full`` is the recorded configuration behind
#: ``BENCH_optim.json`` — 500 small gate-sized parameters, the
#: dispatch-bound regime the arena refactor targets (hundreds of numpy
#: calls per step in the loop path; a handful of flat-array ops fused).
#: With few huge matrices the loop path is already bandwidth-bound and
#: fusing cannot win, so that regime is deliberately not the preset.
OPTIM_BENCH_MODES: dict[str, dict] = {
    "quick": dict(repeats=3, params=60, dim=16),
    "full": dict(repeats=5, params=500, dim=8),
}


class _SyntheticModel(Module):
    """A parameter tree shaped like a stacked recurrent model.

    ``params`` parameters cycling through gate-matrix, bias, and
    projection shapes around ``dim`` — many smallish arrays, the workload
    the arena refactor targets (not one giant matrix, where fusing would
    win nothing).
    """

    def __init__(self, params: int, dim: int, rng: np.random.Generator):
        super().__init__()
        shapes = [(3 * dim, 2 * dim), (3 * dim,), (dim, dim), (dim,)]
        for i in range(params):
            shape = shapes[i % len(shapes)]
            setattr(self, f"p{i}", Parameter(rng.normal(size=shape)))


def _make_model(sizes: dict, rng: np.random.Generator):
    model = _SyntheticModel(sizes["params"], sizes["dim"], rng)
    arena = model.flatten_parameters()
    arena.grad[:] = rng.normal(size=arena.size)
    return model, arena


def _case_optimizer(cls, **kwargs):
    def make(sizes: dict, rng: np.random.Generator):
        model, arena = _make_model(sizes, rng)
        optimizer = cls(arena, lr=1e-3, **kwargs)

        def step():
            optimizer.step()

        meta = {"parameters": len(arena), "elements": arena.size,
                **{k: v for k, v in kwargs.items()}}
        return step, meta

    return make


def _case_clip_grad_norm(sizes: dict, rng: np.random.Generator):
    _, arena = _make_model(sizes, rng)
    # A norm far below the threshold: no rescale, so every call does the
    # same work (the norm reduction) on both paths.
    max_norm = float(arena.grad_norm()) * 10.0

    def step():
        clip_grad_norm(arena, max_norm)

    meta = {"parameters": len(arena), "elements": arena.size}
    return step, meta


def _case_zero_grad(sizes: dict, rng: np.random.Generator):
    model, arena = _make_model(sizes, rng)
    optimizer = SGD(arena, lr=1e-3)
    parameters = model.parameters()

    def step():
        if reference_optim_enabled():
            for param in parameters:        # the pre-arena per-param loop
                param.zero_grad()
        else:
            optimizer.zero_grad()

    meta = {"parameters": len(arena), "elements": arena.size}
    return step, meta


_CASES = [
    ("adam_step", _case_optimizer(Adam, weight_decay=1e-5)),
    ("adamw_step", _case_optimizer(AdamW, weight_decay=1e-2)),
    ("sgd_step", _case_optimizer(SGD, momentum=0.9, weight_decay=1e-5)),
    ("rmsprop_step", _case_optimizer(RMSprop, momentum=0.9)),
    ("adagrad_step", _case_optimizer(Adagrad)),
    ("clip_grad_norm", _case_clip_grad_norm),
    ("zero_grad", _case_zero_grad),
]


def bench_optim(mode: str = "quick", bus: EventBus | None = None,
                cases: list[str] | None = None) -> list[KernelTiming]:
    """Run the optimizer suite; returns per-case reference/fused timings.

    ``mode`` selects the workload preset (see :data:`OPTIM_BENCH_MODES`).
    Every case is timed twice on the same state — once inside
    :func:`repro.nn.optim.use_reference_optim` and once on the fused path
    (both walk the identical arena-view state, so the comparison is
    honest) — and emits a :class:`repro.obs.OptimBench` event on ``bus``
    (the ambient bus when None).  ``cases`` restricts the run to a subset
    of case names.
    """
    if mode not in OPTIM_BENCH_MODES:
        raise ValueError(f"unknown bench mode {mode!r}; "
                         f"expected one of {sorted(OPTIM_BENCH_MODES)}")
    sizes = OPTIM_BENCH_MODES[mode]
    bus = bus if bus is not None else get_bus()
    selected = _CASES if cases is None else [
        (name, make) for name, make in _CASES if name in set(cases)]
    if cases is not None and len(selected) != len(set(cases)):
        known = {name for name, _ in _CASES}
        raise ValueError(f"unknown bench case(s) {sorted(set(cases) - known)}")

    results = []
    for name, make in selected:
        rng = np.random.default_rng(11)
        step, meta = make(sizes, rng)
        with use_reference_optim():
            reference = _best_of(step, sizes["repeats"])
        fast = _best_of(step, sizes["repeats"])
        timing = KernelTiming(name=name, reference_seconds=reference,
                              fast_seconds=fast, meta=meta)
        bus.emit(OptimBench(name=name, mode=mode,
                            reference_seconds=reference,
                            fast_seconds=fast, speedup=timing.speedup,
                            meta=meta))
        results.append(timing)
    return results
