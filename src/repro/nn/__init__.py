"""`repro.nn` — a from-scratch numpy deep-learning framework.

This replaces PyTorch in the reproduction (see DESIGN.md).  The public
surface mirrors the torch layout:

- :class:`Tensor` with reverse-mode autodiff (:mod:`repro.nn.tensor`)
- functional ops (:mod:`repro.nn.functional`)
- :class:`Module`/:class:`Parameter` (:mod:`repro.nn.module`)
- layers (:mod:`repro.nn.layers`)
- optimizers (:mod:`repro.nn.optim`)
- masked losses (:mod:`repro.nn.losses`)
"""

from . import (arena, checkpoint, functional, gradcheck, init, kernels,
               losses, optim, profiler, summary)
from .arena import ParameterArena, ParamSpec
from .layers import (BatchNorm, Conv1d, Conv2d, Dropout, Embedding, GRU,
                     GRUCell, GraphAttention, LSTM, LSTMCell, LayerNorm,
                     Linear, MultiHeadAttention)
from .module import Module, ModuleList, Parameter, Sequential
from .tensor import Tensor, is_grad_enabled, no_grad

__all__ = [
    "Tensor", "no_grad", "is_grad_enabled",
    "Module", "Parameter", "Sequential", "ModuleList",
    "ParameterArena", "ParamSpec", "arena",
    "Linear", "Conv1d", "Conv2d", "GRU", "GRUCell", "LSTM", "LSTMCell",
    "MultiHeadAttention", "GraphAttention",
    "LayerNorm", "BatchNorm", "Embedding", "Dropout",
    "functional", "init", "losses", "optim", "checkpoint", "profiler",
    "summary", "gradcheck", "kernels",
]
