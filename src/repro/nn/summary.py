"""Model inspection: a layer tree with parameter counts.

The torchinfo-style summary: walks the module hierarchy and reports each
submodule's own (non-child) parameters, so Table III's parameter budgets
can be attributed to specific components (e.g. STSGCN's per-horizon heads).
"""

from __future__ import annotations

from .module import Module

__all__ = ["summarize", "parameter_breakdown"]


def parameter_breakdown(model: Module) -> dict[str, int]:
    """Parameters *owned directly* by each module path (children excluded)."""
    breakdown: dict[str, int] = {}
    for path, module in model.named_modules():
        own = sum(p.size for p in module._parameters.values())
        if own:
            breakdown[path or "<root>"] = own
    return breakdown


def summarize(model: Module, max_depth: int | None = None) -> str:
    """Render the module tree with per-module and cumulative param counts."""
    lines = [f"{'module':<46} {'own params':>12} {'total':>12}"]

    def total_params(module: Module) -> int:
        return sum(p.size for p in module.parameters())

    for path, module in model.named_modules():
        depth = path.count(".") + (1 if path else 0)
        if max_depth is not None and depth > max_depth:
            continue
        own = sum(p.size for p in module._parameters.values())
        label = ("  " * depth) + (path.rsplit(".", 1)[-1] if path
                                  else type(module).__name__)
        lines.append(f"{label:<46} {own:>12,} {total_params(module):>12,}")
    lines.append(f"{'TOTAL':<46} {'':>12} {total_params(model):>12,}")
    return "\n".join(lines)
