"""Training checkpoints: persist model + optimizer state, resume training.

Paper-scale runs (hundreds of epochs on 200+ sensors) need restartability;
a checkpoint bundles the model state dict, the optimizer's mutable
buffers, and arbitrary metadata (epoch counter, best validation score) in
one ``.npz`` archive.

Optimizer state is stored arena-style: each buffer family (Adam moments,
SGD velocity, RMSprop square averages, Adagrad accumulators) is one flat
array, accompanied by a JSON ``spec`` recording every parameter's
name/shape/offset inside it — the same layout
:class:`repro.nn.arena.ParameterArena` uses in memory.  The loader also
accepts the pre-arena format (enumerated ``m{i}``/``v{i}``/``velocity{i}``
keys), so old archives keep loading.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .module import Module
from .optim.adam import Adam
from .optim.optimizer import Optimizer
from .optim.rmsprop import Adagrad, RMSprop
from .optim.sgd import SGD

__all__ = ["save_checkpoint", "load_checkpoint", "optimizer_state",
           "load_optimizer_state"]

#: Buffer families persisted per optimizer class: attribute holding the
#: per-parameter arrays -> key in the saved state.
_BUFFER_FIELDS: dict[type, dict[str, str]] = {
    Adam: {"_m": "m", "_v": "v"},                     # covers AdamW too
    SGD: {"_velocity": "velocity"},
    RMSprop: {"_square_avg": "square_avg", "_buffer": "momentum_buffer"},
    Adagrad: {"_accumulator": "accumulator"},
}


def _buffer_fields(optimizer: Optimizer) -> dict[str, str]:
    for cls, fields in _BUFFER_FIELDS.items():
        if isinstance(optimizer, cls):
            return fields
    return {}


def _build_spec(optimizer: Optimizer) -> list[dict]:
    """Per-parameter name/shape/offset placement for the flat buffers."""
    if optimizer.arena is not None:
        return [{"name": s.name, "shape": list(s.shape), "offset": s.offset}
                for s in optimizer.arena.specs]
    spec = []
    offset = 0
    for i, param in enumerate(optimizer.parameters):
        spec.append({"name": f"param{i}", "shape": list(param.shape),
                     "offset": offset})
        offset += param.size
    return spec


def _flatten_buffers(buffers: list[np.ndarray]) -> np.ndarray:
    if not buffers:
        return np.zeros(0)
    return np.concatenate([np.asarray(b).ravel() for b in buffers])


def optimizer_state(optimizer: Optimizer) -> dict[str, np.ndarray]:
    """Extract an optimizer's mutable buffers as a flat dict.

    Every supported optimizer (Adam/AdamW, SGD, RMSprop, Adagrad) stores
    each buffer family as one flat array plus a JSON ``spec`` blob giving
    per-parameter name/shape/offset, so the state survives arena and
    per-parameter representations alike.
    """
    state: dict[str, np.ndarray] = {"lr": np.asarray(optimizer.lr)}
    spec = {"class": type(optimizer).__name__, "params": _build_spec(optimizer)}
    state["spec"] = np.frombuffer(json.dumps(spec).encode(), dtype=np.uint8)
    if isinstance(optimizer, Adam):
        state["step_count"] = np.asarray(optimizer._step_count)
    for attr, key in _buffer_fields(optimizer).items():
        state[key] = _flatten_buffers(getattr(optimizer, attr))
    return state


def _load_new_format(optimizer: Optimizer,
                     state: dict[str, np.ndarray]) -> None:
    spec = json.loads(bytes(np.asarray(state["spec"])).decode())
    params = spec.get("params", [])
    if len(params) != len(optimizer.parameters):
        raise ValueError(
            f"optimizer state holds {len(params)} parameters, the "
            f"optimizer has {len(optimizer.parameters)}")
    for entry, param in zip(params, optimizer.parameters):
        if tuple(entry["shape"]) != param.shape:
            raise ValueError(
                f"shape mismatch for {entry['name']!r}: saved "
                f"{tuple(entry['shape'])} vs current {param.shape}")
    if isinstance(optimizer, Adam):
        optimizer._step_count = int(state["step_count"])
    for attr, key in _buffer_fields(optimizer).items():
        if key not in state:
            raise KeyError(f"optimizer state is missing buffer {key!r}")
        flat = np.asarray(state[key]).ravel()
        buffers = getattr(optimizer, attr)
        for entry, buffer in zip(params, buffers):
            offset, size = entry["offset"], buffer.size
            buffer[...] = flat[offset:offset + size].reshape(buffer.shape)


def _load_legacy_format(optimizer: Optimizer,
                        state: dict[str, np.ndarray]) -> None:
    """Restore pre-arena archives (enumerated per-parameter keys)."""
    if isinstance(optimizer, Adam):
        optimizer._step_count = int(state["step_count"])
        for i in range(len(optimizer.parameters)):
            optimizer._m[i][...] = state[f"m{i}"]
            optimizer._v[i][...] = state[f"v{i}"]
    elif isinstance(optimizer, SGD):
        for i in range(len(optimizer.parameters)):
            optimizer._velocity[i][...] = state[f"velocity{i}"]
    # Older archives stored nothing beyond ``lr`` for other optimizers
    # (their buffers were silently dropped at save time); only the
    # learning rate can be restored for those.


def load_optimizer_state(optimizer: Optimizer,
                         state: dict[str, np.ndarray]) -> None:
    """Restore buffers extracted by :func:`optimizer_state` (in place).

    Accepts both the current arena-style format (flat buffers + ``spec``)
    and the legacy enumerated ``m{i}``/``v{i}``/``velocity{i}`` layout.
    """
    optimizer.lr = float(state["lr"])
    if "spec" in state:
        _load_new_format(optimizer, state)
    else:
        _load_legacy_format(optimizer, state)


def save_checkpoint(path: str | Path, model: Module,
                    optimizer: Optimizer | None = None,
                    metadata: dict | None = None) -> None:
    """Write model (+ optional optimizer) state and JSON metadata.

    Announces the save as a ``checkpoint_saved`` telemetry event on the
    ambient :class:`repro.obs.EventBus`.
    """
    from ..obs.events import CheckpointSaved, get_bus

    payload: dict[str, np.ndarray] = {}
    for key, value in model.state_dict().items():
        payload[f"model/{key}"] = value
    if optimizer is not None:
        for key, value in optimizer_state(optimizer).items():
            payload[f"optim/{key}"] = value
    meta_blob = json.dumps(metadata or {}).encode()
    payload["metadata"] = np.frombuffer(meta_blob, dtype=np.uint8)
    np.savez(path, **payload)
    get_bus().emit(CheckpointSaved(path=str(path), num_arrays=len(payload)))


def load_checkpoint(path: str | Path, model: Module,
                    optimizer: Optimizer | None = None) -> dict:
    """Restore model (+ optional optimizer); returns the metadata dict."""
    with np.load(path) as archive:
        model_state = {key[len("model/"):]: archive[key]
                       for key in archive.files if key.startswith("model/")}
        model.load_state_dict(model_state)
        if optimizer is not None:
            optim_state = {key[len("optim/"):]: archive[key]
                           for key in archive.files if key.startswith("optim/")}
            if not optim_state:
                raise KeyError("checkpoint contains no optimizer state")
            load_optimizer_state(optimizer, optim_state)
        metadata = json.loads(bytes(archive["metadata"]).decode())
    return metadata
