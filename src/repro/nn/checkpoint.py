"""Training checkpoints: persist model + optimizer state, resume training.

Paper-scale runs (hundreds of epochs on 200+ sensors) need restartability;
a :class:`Checkpoint` bundles the model state dict, the optimizer's moment
buffers, and arbitrary metadata (epoch counter, best validation score) in
one ``.npz`` archive.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .module import Module
from .optim.adam import Adam
from .optim.optimizer import Optimizer
from .optim.sgd import SGD

__all__ = ["save_checkpoint", "load_checkpoint", "optimizer_state",
           "load_optimizer_state"]


def optimizer_state(optimizer: Optimizer) -> dict[str, np.ndarray]:
    """Extract an optimizer's mutable buffers as a flat dict."""
    state: dict[str, np.ndarray] = {"lr": np.asarray(optimizer.lr)}
    if isinstance(optimizer, Adam):
        state["step_count"] = np.asarray(optimizer._step_count)
        for i, (m, v) in enumerate(zip(optimizer._m, optimizer._v)):
            state[f"m{i}"] = m
            state[f"v{i}"] = v
    elif isinstance(optimizer, SGD):
        for i, velocity in enumerate(optimizer._velocity):
            state[f"velocity{i}"] = velocity
    return state


def load_optimizer_state(optimizer: Optimizer,
                         state: dict[str, np.ndarray]) -> None:
    """Restore buffers extracted by :func:`optimizer_state` (in place)."""
    optimizer.lr = float(state["lr"])
    if isinstance(optimizer, Adam):
        optimizer._step_count = int(state["step_count"])
        for i in range(len(optimizer.parameters)):
            optimizer._m[i][...] = state[f"m{i}"]
            optimizer._v[i][...] = state[f"v{i}"]
    elif isinstance(optimizer, SGD):
        for i in range(len(optimizer.parameters)):
            optimizer._velocity[i][...] = state[f"velocity{i}"]


def save_checkpoint(path: str | Path, model: Module,
                    optimizer: Optimizer | None = None,
                    metadata: dict | None = None) -> None:
    """Write model (+ optional optimizer) state and JSON metadata.

    Announces the save as a ``checkpoint_saved`` telemetry event on the
    ambient :class:`repro.obs.EventBus`.
    """
    from ..obs.events import CheckpointSaved, get_bus

    payload: dict[str, np.ndarray] = {}
    for key, value in model.state_dict().items():
        payload[f"model/{key}"] = value
    if optimizer is not None:
        for key, value in optimizer_state(optimizer).items():
            payload[f"optim/{key}"] = value
    meta_blob = json.dumps(metadata or {}).encode()
    payload["metadata"] = np.frombuffer(meta_blob, dtype=np.uint8)
    np.savez(path, **payload)
    get_bus().emit(CheckpointSaved(path=str(path), num_arrays=len(payload)))


def load_checkpoint(path: str | Path, model: Module,
                    optimizer: Optimizer | None = None) -> dict:
    """Restore model (+ optional optimizer); returns the metadata dict."""
    with np.load(path) as archive:
        model_state = {key[len("model/"):]: archive[key]
                       for key in archive.files if key.startswith("model/")}
        model.load_state_dict(model_state)
        if optimizer is not None:
            optim_state = {key[len("optim/"):]: archive[key]
                           for key in archive.files if key.startswith("optim/")}
            if not optim_state:
                raise KeyError("checkpoint contains no optimizer state")
            load_optimizer_state(optimizer, optim_state)
        metadata = json.loads(bytes(archive["metadata"]).decode())
    return metadata
