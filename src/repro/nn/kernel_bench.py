"""Kernel benchmark suite: reference vs. optimised engine timings.

The paper's Table III compares per-model computation cost under one shared
framework, which is only honest if the shared kernels are near the numpy
speed-of-light (engine overhead would otherwise dominate the architecture
differences).  This module times the hot kernels both ways in one process
— the pre-optimisation reference paths (``np.add.at`` scatters, uncached
im2col indices, per-slice gradient buffers) against the current fast paths
— and reports the speedups that seed the repo's perf trajectory.

Cases
-----
- ``conv2d_backward``     backward through a ``(1, k)`` temporal conv (the
  kernel all four TCN models use) — dominated by the col2im scatter
- ``conv2d_backward_strided`` strided + dilated 3x3 conv backward
- ``conv2d_forward``      repeated forward passes (im2col index cache)
- ``col2im``              the raw scatter kernel in isolation
- ``split_backward``      gated-activation style split + backward
- ``unbind_backward``     T per-step views + backward (RNN input pattern)
- ``gru_step``            one GRU forward+backward over a short sequence
- ``stgcn_train_step``    a full STGCN training step (loss, backward,
  Adam update) on a synthetic graph

Every case emits a :class:`repro.obs.KernelBench` event on the bus, so
timings flow through the same telemetry pipeline as training runs; the CLI
front-end is ``python -m repro bench kernels`` (use ``--json`` to record
``BENCH_kernels.json``).  See ``docs/performance.md``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..obs.events import EventBus, KernelBench, get_bus
from . import functional as F
from . import kernels as K
from .tensor import Tensor

__all__ = ["KernelTiming", "bench_kernels", "timings_to_record",
           "write_bench_json", "render_timings", "BENCH_MODES"]

#: Per-mode workload sizes.  ``quick`` keeps the whole suite under a few
#: seconds (the tier-1 smoke test runs it); ``full`` is the recorded
#: configuration behind ``BENCH_kernels.json``.
BENCH_MODES: dict[str, dict] = {
    "quick": dict(repeats=3, batch=4, channels=8, nodes=10, time_steps=12,
                  gru_hidden=16, stgcn_nodes=8, stgcn_batch=4),
    "full": dict(repeats=5, batch=16, channels=32, nodes=48, time_steps=12,
                 gru_hidden=64, stgcn_nodes=36, stgcn_batch=16),
}


@dataclass
class KernelTiming:
    """Reference vs. fast wall time for one benchmark case."""

    name: str
    reference_seconds: float
    fast_seconds: float
    meta: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Reference time over fast time (>1 means the fast path wins)."""
        if self.fast_seconds <= 0:
            return float("inf")
        return self.reference_seconds / self.fast_seconds


def _best_of(step, repeats: int) -> float:
    """Minimum wall time of ``step`` over ``repeats`` runs (one warm-up)."""
    step()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        step()
        best = min(best, time.perf_counter() - start)
    return best


# --------------------------------------------------------------------- #
# cases — each builds a closure that runs one forward+backward (or the
# isolated kernel); the closure consults the reference-kernel switch at
# run time, so the same closure times both engines.
# --------------------------------------------------------------------- #
def _case_conv2d_backward(sizes: dict, rng: np.random.Generator):
    batch, channels = sizes["batch"], sizes["channels"]
    nodes, steps = sizes["nodes"], sizes["time_steps"]
    x = Tensor(rng.normal(size=(batch, channels, nodes, steps)),
               requires_grad=True)
    w = Tensor(rng.normal(size=(channels, channels, 1, 3)),
               requires_grad=True)
    out = F.conv2d(x, w)
    g = np.ones_like(out.data)

    def step():
        out.backward(g)

    meta = {"input": list(x.shape), "kernel": [1, 3], "stride": [1, 1]}
    return step, meta


def _case_conv2d_backward_strided(sizes: dict, rng: np.random.Generator):
    batch, channels = sizes["batch"], max(4, sizes["channels"] // 2)
    side = max(12, sizes["nodes"] // 2)
    x = Tensor(rng.normal(size=(batch, channels, side, side)),
               requires_grad=True)
    w = Tensor(rng.normal(size=(channels, channels, 3, 3)),
               requires_grad=True)
    out = F.conv2d(x, w, stride=(2, 2), padding=(1, 1), dilation=(2, 2))
    g = np.ones_like(out.data)

    def step():
        out.backward(g)

    meta = {"input": list(x.shape), "kernel": [3, 3], "stride": [2, 2],
            "dilation": [2, 2], "padding": [1, 1]}
    return step, meta


def _case_conv2d_forward(sizes: dict, rng: np.random.Generator):
    batch, channels = sizes["batch"], sizes["channels"]
    nodes, steps = sizes["nodes"], sizes["time_steps"]
    x = Tensor(rng.normal(size=(batch, channels, nodes, steps)))
    w = Tensor(rng.normal(size=(channels, channels, 1, 3)))

    def step():
        F.conv2d(x, w)

    meta = {"input": list(x.shape), "kernel": [1, 3]}
    return step, meta


def _case_col2im(sizes: dict, rng: np.random.Generator):
    batch, channels = sizes["batch"], sizes["channels"]
    nodes, steps = sizes["nodes"], sizes["time_steps"]
    shape = (batch, channels, nodes, steps)
    kernel = (1, 3)
    out_w = steps - 2
    g_cols = rng.normal(size=(batch, channels, 3, nodes * out_w))

    def step():
        if K.reference_kernels_enabled():
            K.col2im_reference(g_cols, shape, kernel)
        else:
            K.col2im(g_cols, shape, kernel)

    meta = {"shape": list(shape), "kernel": list(kernel)}
    return step, meta


def _case_split_backward(sizes: dict, rng: np.random.Generator):
    batch, channels = sizes["batch"], sizes["channels"]
    nodes, steps = sizes["nodes"], sizes["time_steps"]
    data = rng.normal(size=(batch, 2 * channels, nodes, steps))

    def step():
        x = Tensor(data, requires_grad=True)
        value, gate = F.split(x, 2, axis=1)
        out = value * gate.sigmoid()
        out.backward(np.ones_like(out.data))

    meta = {"input": list(data.shape), "sections": 2}
    return step, meta


def _case_unbind_backward(sizes: dict, rng: np.random.Generator):
    batch, steps = sizes["batch"] * sizes["nodes"], sizes["time_steps"]
    hidden = sizes["gru_hidden"]
    data = rng.normal(size=(batch, steps, hidden))

    def step():
        x = Tensor(data, requires_grad=True)
        total = None
        for view in F.unbind(x, axis=1):
            term = (view * view).sum()
            total = term if total is None else total + term
        total.backward()

    meta = {"input": list(data.shape), "steps": steps}
    return step, meta


def _case_gru_step(sizes: dict, rng: np.random.Generator):
    from .layers import GRU

    batch, steps = sizes["batch"] * sizes["nodes"], sizes["time_steps"]
    hidden = sizes["gru_hidden"]
    gru = GRU(hidden, hidden, rng=np.random.default_rng(0))
    data = rng.normal(size=(batch, steps, hidden))

    def step():
        x = Tensor(data, requires_grad=True)
        outputs, _ = gru(x)
        outputs.sum().backward(free_graph=True)

    meta = {"input": list(data.shape), "hidden": hidden}
    return step, meta


def _case_stgcn_train_step(sizes: dict, rng: np.random.Generator):
    from ..models import create_model
    from .optim import Adam

    nodes, batch = sizes["stgcn_nodes"], sizes["stgcn_batch"]
    adjacency = np.eye(nodes) + (rng.random((nodes, nodes)) > 0.6)
    model = create_model("stgcn", nodes, adjacency, in_features=2, seed=0)
    model.train()
    optimizer = Adam(model.parameters(), lr=1e-3)
    x = Tensor(rng.normal(size=(batch, 12, nodes, 2)))
    y = Tensor(rng.normal(size=(batch, 12, nodes)))

    def step():
        optimizer.zero_grad()
        loss = model.training_loss(x, y)
        loss.backward(free_graph=True)
        optimizer.step()

    meta = {"nodes": nodes, "batch": batch,
            "parameters": model.num_parameters()}
    return step, meta


_CASES = [
    ("conv2d_backward", _case_conv2d_backward),
    ("conv2d_backward_strided", _case_conv2d_backward_strided),
    ("conv2d_forward", _case_conv2d_forward),
    ("col2im", _case_col2im),
    ("split_backward", _case_split_backward),
    ("unbind_backward", _case_unbind_backward),
    ("gru_step", _case_gru_step),
    ("stgcn_train_step", _case_stgcn_train_step),
]


def bench_kernels(mode: str = "quick", bus: EventBus | None = None,
                  cases: list[str] | None = None) -> list[KernelTiming]:
    """Run the kernel suite; returns per-case reference/fast timings.

    ``mode`` selects the workload preset (see :data:`BENCH_MODES`).  Every
    case is timed twice over identical inputs — once inside
    :func:`repro.nn.kernels.use_reference_kernels` and once on the fast
    engine — and emits a :class:`repro.obs.KernelBench` event on ``bus``
    (the ambient bus when None).  ``cases`` restricts the run to a subset
    of case names.
    """
    if mode not in BENCH_MODES:
        raise ValueError(f"unknown bench mode {mode!r}; "
                         f"expected one of {sorted(BENCH_MODES)}")
    sizes = BENCH_MODES[mode]
    bus = bus if bus is not None else get_bus()
    selected = _CASES if cases is None else [
        (name, make) for name, make in _CASES if name in set(cases)]
    if cases is not None and len(selected) != len(set(cases)):
        known = {name for name, _ in _CASES}
        raise ValueError(f"unknown bench case(s) {sorted(set(cases) - known)}")

    results = []
    for name, make in selected:
        rng = np.random.default_rng(7)
        step, meta = make(sizes, rng)
        with K.use_reference_kernels():
            reference = _best_of(step, sizes["repeats"])
        fast = _best_of(step, sizes["repeats"])
        timing = KernelTiming(name=name, reference_seconds=reference,
                              fast_seconds=fast, meta=meta)
        bus.emit(KernelBench(name=name, mode=mode,
                             reference_seconds=reference,
                             fast_seconds=fast, speedup=timing.speedup,
                             meta=meta))
        results.append(timing)
    return results


def timings_to_record(timings: list[KernelTiming], mode: str,
                      suite: str = "kernels") -> dict:
    """JSON-safe record of one suite run (the ``BENCH_<suite>.json`` body)."""
    return {
        "suite": suite,
        "mode": mode,
        "numpy": np.__version__,
        "timings": [
            {"name": t.name,
             "reference_seconds": round(t.reference_seconds, 6),
             "fast_seconds": round(t.fast_seconds, 6),
             "speedup": round(t.speedup, 2),
             "meta": t.meta}
            for t in timings
        ],
    }


def write_bench_json(timings: list[KernelTiming], path: str | Path,
                     mode: str, suite: str = "kernels") -> None:
    """Write :func:`timings_to_record` to ``path`` (pretty-printed)."""
    record = timings_to_record(timings, mode, suite=suite)
    Path(path).write_text(json.dumps(record, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")


def render_timings(timings: list[KernelTiming]) -> str:
    """Fixed-width table of the suite results for terminal output."""
    header = (f"{'case':<26} {'reference':>12} {'fast':>12} {'speedup':>8}")
    lines = [header, "-" * len(header)]
    for t in timings:
        lines.append(f"{t.name:<26} {t.reference_seconds * 1e3:>10.2f}ms "
                     f"{t.fast_seconds * 1e3:>10.2f}ms {t.speedup:>7.2f}x")
    return "\n".join(lines)
