"""The seven benchmark datasets (paper Table I), synthesised.

Each catalog entry mirrors one of the paper's datasets: its task (speed or
flow), region topology, relative size, and traffic character.  Node and day
counts follow Table I at ``paper`` scale and are scaled down for the ``ci``
and ``bench`` presets so the full model×dataset matrix trains on CPU.

Loading a dataset builds the road network, runs the traffic simulator, and
returns windowed supervised splits plus the Gaussian-kernel adjacency.
Built worlds are memoised on disk by a content hash of everything that
determines them (see :mod:`repro.datasets.cache`), so the benchmark
matrix, cross-validation, and sweeps simulate each world once; telemetry
(``cache_hit`` / ``cache_miss`` / ``dataset_build`` events) records which
path served every load.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from ..graph.adjacency import gaussian_adjacency
from ..graph.road_network import RoadNetwork, build_network
from ..obs.events import CacheHit, CacheMiss, DatasetBuild, EventBus, get_bus
from ..obs.spans import span
from ..obs.stats import get_registry
from .cache import DatasetCache, cache_enabled, dataset_cache_key
from .generator import SimulationConfig, SimulationResult, TrafficSimulator
from .windows import SupervisedDataset, WindowConfig, make_windows

__all__ = ["DatasetSpec", "LoadedDataset", "DATASETS", "SPEED_DATASETS",
           "FLOW_DATASETS", "load_dataset", "dataset_names"]


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one benchmark dataset (one Table I column)."""

    name: str
    task: str                  # "speed" | "flow"
    region: str
    topology: str              # road-network family for the simulator
    paper_nodes: int           # Table I sensor count
    paper_days: int            # Table I day count
    weekdays_only: bool = False
    rush_intensity: float = 0.45
    incident_rate_per_day: float = 1.2
    sim_seed: int = 0


# Table I, one entry per column.  Topologies and traffic intensities are
# chosen to echo each region's character (LA corridors vs. Bay Area mesh).
DATASETS: dict[str, DatasetSpec] = {
    "metr-la": DatasetSpec(
        name="metr-la", task="speed", region="Los Angeles",
        topology="corridor", paper_nodes=207, paper_days=122,
        rush_intensity=0.52, incident_rate_per_day=1.6, sim_seed=101),
    "pems-bay": DatasetSpec(
        name="pems-bay", task="speed", region="Bay Area",
        topology="grid", paper_nodes=325, paper_days=181,
        rush_intensity=0.40, incident_rate_per_day=1.0, sim_seed=102),
    "pemsd7m": DatasetSpec(
        name="pemsd7m", task="speed", region="Los Angeles",
        topology="corridor", paper_nodes=228, paper_days=44,
        weekdays_only=True, rush_intensity=0.50,
        incident_rate_per_day=1.4, sim_seed=103),
    "pemsd3": DatasetSpec(
        name="pemsd3", task="flow", region="North Central",
        topology="radial", paper_nodes=358, paper_days=91,
        rush_intensity=0.38, incident_rate_per_day=0.8, sim_seed=104),
    "pemsd4": DatasetSpec(
        name="pemsd4", task="flow", region="Bay Area",
        topology="grid", paper_nodes=307, paper_days=59,
        rush_intensity=0.46, incident_rate_per_day=1.2, sim_seed=105),
    "pemsd7": DatasetSpec(
        name="pemsd7", task="flow", region="Los Angeles",
        topology="corridor", paper_nodes=883, paper_days=98,
        rush_intensity=0.50, incident_rate_per_day=1.4, sim_seed=106),
    "pemsd8": DatasetSpec(
        name="pemsd8", task="flow", region="San Bernardino",
        topology="corridor", paper_nodes=170, paper_days=62,
        rush_intensity=0.36, incident_rate_per_day=0.9, sim_seed=107),
}

SPEED_DATASETS = tuple(n for n, s in DATASETS.items() if s.task == "speed")
FLOW_DATASETS = tuple(n for n, s in DATASETS.items() if s.task == "flow")

# nodes/days per preset; paper scale uses Table I values.
_SCALES = {
    "ci": (10, 3),
    "bench": (20, 8),
    "paper": (None, None),
}


def dataset_names() -> list[str]:
    """Names of all catalogued datasets (Table I columns)."""
    return list(DATASETS)


@dataclass
class LoadedDataset:
    """A fully materialised dataset ready for training."""

    spec: DatasetSpec
    scale: str
    network: RoadNetwork
    adjacency: np.ndarray
    simulation: SimulationResult
    supervised: SupervisedDataset

    @property
    def num_nodes(self) -> int:
        return self.network.num_nodes

    @property
    def values(self) -> np.ndarray:
        """The raw measurement series for this dataset's task."""
        return (self.simulation.speed if self.spec.task == "speed"
                else self.simulation.flow)


def _scaled_size(spec: DatasetSpec, scale: str) -> tuple[int, int]:
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(_SCALES)}")
    nodes, days = _SCALES[scale]
    if nodes is None:
        return spec.paper_nodes, spec.paper_days
    # Preserve relative dataset sizes: pemsd7 stays the largest, pemsd8 the
    # smallest, matching Table I proportions (scaled to the preset).
    node_scale = spec.paper_nodes / 307.0     # pemsd4 as reference
    day_scale = spec.paper_days / 91.0
    scaled_nodes = max(8, int(round(nodes * node_scale)))
    scaled_days = max(3, int(round(days * day_scale)))
    return scaled_nodes, scaled_days


def load_dataset(name: str, scale: str = "ci",
                 window: WindowConfig | None = None,
                 seed_offset: int = 0,
                 cache: bool | None = None,
                 bus: "EventBus | None" = None) -> LoadedDataset:
    """Build a named dataset at the requested scale.

    Parameters
    ----------
    name:
        One of :func:`dataset_names` (case-insensitive; ``_`` ≡ ``-``).
    scale:
        ``ci`` (tests), ``bench`` (benchmarks) or ``paper`` (Table I sizes).
    seed_offset:
        Added to the dataset's base seed — lets property tests draw distinct
        but reproducible worlds.
    cache:
        Consult/populate the on-disk world cache (see
        :mod:`repro.datasets.cache`).  ``None`` follows the
        ``REPRO_DATA_CACHE`` environment default (on); ``False`` forces a
        fresh build, ``True`` forces cache use.
    bus:
        Event bus for cache/build telemetry and ``data/load`` spans
        (the ambient bus when None).
    """
    spec_key = name.lower().replace("_", "-")
    if spec_key not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; choose from {dataset_names()}")
    spec = DATASETS[spec_key]
    num_nodes, num_days = _scaled_size(spec, scale)
    sim_config = SimulationConfig(
        num_days=num_days,
        rush_intensity=spec.rush_intensity,
        incident_rate_per_day=spec.incident_rate_per_day)
    window = window or WindowConfig()

    use_cache = cache_enabled() if cache is None else bool(cache)
    bus = bus if bus is not None else get_bus()
    registry = get_registry()
    with span("data/load", bus=bus, dataset=spec.name, scale=scale) as sp:
        store = DatasetCache() if use_cache else None
        cache_key = dataset_cache_key(spec, sim_config, window, seed_offset,
                                      scale)
        if store is not None:
            start = time.perf_counter()
            cached = store.get(spec.name, scale, cache_key)
            if cached is not None:
                registry.counter("data/cache_hits").inc()
                sp.set(cache="hit")
                bus.emit(CacheHit(name=spec.name, scale=scale, key=cache_key,
                                  path=str(store.path_for(spec.name, scale,
                                                          cache_key)),
                                  seconds=time.perf_counter() - start))
                return cached
            registry.counter("data/cache_misses").inc()
            sp.set(cache="miss")
            bus.emit(CacheMiss(name=spec.name, scale=scale, key=cache_key))

        build_start = time.perf_counter()
        with span("data/build", bus=bus, dataset=spec.name, scale=scale):
            network = build_network(num_nodes, topology=spec.topology,
                                    seed=spec.sim_seed + seed_offset)
            simulation = TrafficSimulator(network, sim_config,
                                          seed=spec.sim_seed
                                          + seed_offset).run()

            if spec.weekdays_only:
                weekday = simulation.day_of_week < 5
                simulation = replace(
                    simulation,
                    density=simulation.density[weekday],
                    speed=simulation.speed[weekday],
                    flow=simulation.flow[weekday],
                    timestamps=simulation.timestamps[weekday],
                    time_of_day=simulation.time_of_day[weekday],
                    day_of_week=simulation.day_of_week[weekday],
                    missing_mask=simulation.missing_mask[weekday])

            values = (simulation.speed if spec.task == "speed"
                      else simulation.flow)
            supervised = make_windows(values, simulation.time_of_day, window,
                                      day_of_week=simulation.day_of_week)
            adjacency = gaussian_adjacency(network)

            dataset = LoadedDataset(spec=spec, scale=scale, network=network,
                                    adjacency=adjacency,
                                    simulation=simulation,
                                    supervised=supervised)
        if store is not None:
            store.put(dataset, cache_key)
        bus.emit(DatasetBuild(name=spec.name, scale=scale,
                              num_nodes=dataset.num_nodes,
                              num_steps=len(simulation.time_of_day),
                              seconds=time.perf_counter() - build_start,
                              cached=store is not None))
    return dataset
