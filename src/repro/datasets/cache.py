"""Content-addressed dataset cache: build each simulated world once.

Paper-scale simulations (hundreds of sensors, months of 5-minute steps)
dominate benchmark start-up, and the same world is rebuilt by every
entry point — the benchmark matrix, rolling-origin cross-validation,
hyper-parameter sweeps.  This module keys a built world by a hash of
everything that determines it — the :class:`~repro.datasets.DatasetSpec`,
the derived :class:`~repro.datasets.SimulationConfig`, the
:class:`~repro.datasets.WindowConfig`, the seed offset, the scale preset,
and a format version — and round-trips it through the existing ``.npz``
persistence (:mod:`repro.datasets.io`), so a second ``load_dataset`` of
the same spec/seed is one archive read instead of a full simulation.

Layout and knobs
----------------
Entries live under ``~/.cache/repro`` (one ``<name>_<scale>_<key>.npz``
per world), overridable with ``REPRO_CACHE_DIR``; set
``REPRO_DATA_CACHE=0`` to disable caching entirely.  Writes are atomic
(temp file + rename), so concurrent builders never observe a torn entry.

Invalidation
------------
The key covers every input that shapes the world, so changing a spec,
window, seed, or scale creates a new entry.  Changes to the *simulator
code itself* are invisible to the hash — bump
:data:`CACHE_FORMAT_VERSION` when the generated worlds change, or wipe
with ``python -m repro cache clear``.  See ``docs/data.md``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path

__all__ = ["CACHE_FORMAT_VERSION", "CacheEntry", "DatasetCache",
           "cache_enabled", "default_cache_dir", "dataset_cache_key"]

#: Bump when the simulator or the saved-archive layout changes in a way
#: that makes previously cached worlds stale.
CACHE_FORMAT_VERSION = 1

_DISABLED_VALUES = {"0", "off", "false", "no"}


def cache_enabled() -> bool:
    """Whether ``load_dataset`` should consult the cache by default
    (``REPRO_DATA_CACHE=0`` disables it)."""
    return os.environ.get("REPRO_DATA_CACHE", "1").lower() not in _DISABLED_VALUES


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro").expanduser()


def dataset_cache_key(spec, sim_config, window, seed_offset: int,
                      scale: str) -> str:
    """Content hash of everything that determines a built world.

    Hashes the JSON of the dataclass fields (sorted keys) plus the scale
    preset, seed offset, and :data:`CACHE_FORMAT_VERSION`; 16 hex chars,
    matching the :class:`~repro.core.BenchmarkMatrix` fingerprint width.
    """
    payload = json.dumps({
        "format": CACHE_FORMAT_VERSION,
        "spec": asdict(spec),
        "sim": asdict(sim_config),
        "window": asdict(window),
        "seed_offset": seed_offset,
        "scale": scale,
    }, sort_keys=True, default=list)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass
class CacheEntry:
    """One cached world on disk."""

    name: str
    scale: str
    key: str
    path: Path
    size_bytes: int

    @classmethod
    def from_path(cls, path: Path) -> "CacheEntry | None":
        """Parse ``<name>_<scale>_<key>.npz``; None for foreign files."""
        parts = path.stem.rsplit("_", 2)
        if len(parts) != 3 or path.suffix != ".npz":
            return None
        name, scale, key = parts
        return cls(name=name, scale=scale, key=key, path=path,
                   size_bytes=path.stat().st_size)


class DatasetCache:
    """Content-addressed store of built worlds under one directory.

    ``get``/``put`` move :class:`~repro.datasets.LoadedDataset` objects
    through :func:`~repro.datasets.save_dataset` /
    :func:`~repro.datasets.load_saved_dataset`; ``entries``/``clear``
    back the ``repro cache`` CLI.
    """

    def __init__(self, directory: str | Path | None = None):
        self.directory = Path(directory) if directory else default_cache_dir()

    def path_for(self, name: str, scale: str, key: str) -> Path:
        return self.directory / f"{name}_{scale}_{key}.npz"

    def get(self, name: str, scale: str, key: str):
        """The cached :class:`LoadedDataset` for ``key``, or None.

        A corrupt entry (torn write from an old interpreter crash,
        truncated disk) is deleted and treated as a miss rather than
        propagating a load error into the caller.
        """
        from ..obs.spans import span
        from .io import load_saved_dataset

        with span("data/cache_get", dataset=name, key=key) as sp:
            path = self.path_for(name, scale, key)
            if not path.exists():
                sp.set(hit=False)
                return None
            try:
                result = load_saved_dataset(path)
            except Exception:
                path.unlink(missing_ok=True)
                sp.set(hit=False, corrupt=True)
                return None
            sp.set(hit=True)
            return result

    def put(self, dataset, key: str) -> Path:
        """Persist ``dataset`` under ``key`` atomically; returns the path."""
        from ..obs.spans import span
        from .io import save_dataset

        with span("data/cache_put", dataset=dataset.spec.name, key=key):
            path = self.path_for(dataset.spec.name, dataset.scale, key)
            self.directory.mkdir(parents=True, exist_ok=True)
            # The suffix must be ``.npz`` — np.savez appends one otherwise
            # and the rename would promote an empty placeholder file.
            handle, tmp_name = tempfile.mkstemp(dir=self.directory,
                                                suffix=".npz")
            os.close(handle)
            try:
                save_dataset(dataset, tmp_name)
                os.replace(tmp_name, path)
            finally:
                Path(tmp_name).unlink(missing_ok=True)
        return path

    def entries(self) -> list[CacheEntry]:
        """Every recognised entry, newest first."""
        if not self.directory.is_dir():
            return []
        found = [CacheEntry.from_path(p)
                 for p in sorted(self.directory.glob("*.npz"))]
        entries = [e for e in found if e is not None]
        entries.sort(key=lambda e: e.path.stat().st_mtime, reverse=True)
        return entries

    def info(self, key: str) -> dict:
        """Archive metadata of the entry whose key starts with ``key``."""
        import numpy as np

        for entry in self.entries():
            if entry.key.startswith(key) or entry.path.name.startswith(key):
                with np.load(entry.path) as payload:
                    meta = json.loads(bytes(payload["meta"]).decode())
                    shapes = {name: list(payload[name].shape)
                              for name in payload.files if name != "meta"}
                return {"path": str(entry.path), "key": entry.key,
                        "size_bytes": entry.size_bytes,
                        "spec": meta["spec"], "scale": meta["scale"],
                        "window": meta["window"], "arrays": shapes}
        raise KeyError(f"no cache entry matching {key!r} "
                       f"in {self.directory}")

    def clear(self) -> tuple[int, int]:
        """Delete every entry; returns (entries removed, bytes freed)."""
        removed = freed = 0
        for entry in self.entries():
            freed += entry.size_bytes
            entry.path.unlink(missing_ok=True)
            removed += 1
        return removed, freed
