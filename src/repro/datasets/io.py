"""Dataset persistence: save/load simulated worlds as ``.npz`` archives.

Paper-scale simulations (hundreds of sensors, months of 5-minute steps)
take a while to generate; persisting them lets the benchmark matrix reuse
one world across model runs and lets users share exact datasets.  The
content-addressed dataset cache (:mod:`repro.datasets.cache`) round-trips
every built world through this module.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from ..graph.road_network import RoadNetwork
from .catalog import DatasetSpec, LoadedDataset
from .generator import SimulationResult
from .windows import WindowConfig, make_windows

__all__ = ["save_dataset", "load_saved_dataset"]


def save_dataset(dataset: LoadedDataset, path: str | Path) -> None:
    """Persist a loaded dataset (simulation + graph) to one ``.npz`` file.

    The supervised windows are *not* stored — rebuilding them is a few
    zero-copy sliding views under the lazy pipeline, while storing them
    would multiply the file size ~24x.
    """
    path = Path(path)
    network = dataset.network
    edges = np.array([(src, dst, attrs["distance"])
                      for src, dst, attrs in network.graph.edges(data=True)])
    sim = dataset.simulation
    meta = {
        "spec": asdict(dataset.spec),
        "scale": dataset.scale,
        "window": asdict(dataset.supervised.config),
        "incident_log": [list(entry) for entry in sim.incident_log],
    }
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        edges=edges,
        positions=network.positions,
        free_flow_speed=network.free_flow_speed,
        capacity=network.capacity,
        adjacency=dataset.adjacency,
        density=sim.density,
        speed=sim.speed,
        flow=sim.flow,
        timestamps=sim.timestamps,
        time_of_day=sim.time_of_day,
        day_of_week=sim.day_of_week,
        missing_mask=sim.missing_mask,
    )


def load_saved_dataset(path: str | Path) -> LoadedDataset:
    """Rebuild a :class:`LoadedDataset` saved by :func:`save_dataset`."""
    import networkx as nx

    path = Path(path)
    with np.load(path) as payload:
        meta = json.loads(bytes(payload["meta"]).decode())
        edges = payload["edges"]
        positions = payload["positions"]
        free_flow = payload["free_flow_speed"]
        capacity = payload["capacity"]
        adjacency = payload["adjacency"]
        sim = SimulationResult(
            density=payload["density"],
            speed=payload["speed"],
            flow=payload["flow"],
            timestamps=payload["timestamps"],
            time_of_day=payload["time_of_day"],
            day_of_week=payload["day_of_week"],
            missing_mask=payload["missing_mask"],
            incident_log=[tuple(entry) for entry in meta["incident_log"]])

    graph = nx.DiGraph()
    graph.add_nodes_from(range(len(positions)))
    for src, dst, distance in edges:
        graph.add_edge(int(src), int(dst), distance=float(distance))
    network = RoadNetwork(graph=graph, positions=positions,
                          free_flow_speed=free_flow, capacity=capacity)

    spec = DatasetSpec(**meta["spec"])
    window = WindowConfig(**meta["window"])
    values = sim.speed if spec.task == "speed" else sim.flow
    supervised = make_windows(values, sim.time_of_day, window,
                              day_of_week=sim.day_of_week)

    return LoadedDataset(spec=spec, scale=meta["scale"], network=network,
                         adjacency=adjacency, simulation=sim,
                         supervised=supervised)
