"""Data-pipeline benchmark suite: cache and lazy-window speedups.

The controlled benchmark feeds eight models the same seven datasets, so at
scale the data layer — simulation, window construction, batch iteration —
bounds experiment throughput before any model math runs.  This suite
measures the two claims of the lazy/cached pipeline refactor in one
process:

- ``dataset_load``     cold ``load_dataset`` (simulate + persist) vs. a
  content-addressed cache hit (archive read + lazy windows)
- ``window_build``     eager window materialisation
  (:func:`~repro.datasets.use_reference_pipeline`) vs. lazy view-backed
  construction
- ``train_epoch``      one shuffled ``DataLoader`` epoch over the train
  split: eager fancy-indexing vs. on-demand gathers (meta records
  batches/sec under both pipelines)
- ``resident_memory``  tracemalloc peak of building + iterating the
  dataset, eager vs. lazy; meta records the measured peaks, their ratio,
  and the analytic eager/lazy byte estimate at paper scale

Every case emits a :class:`repro.obs.DataBench` event; the CLI front-end
is ``python -m repro bench data`` (``--json`` records
``BENCH_data.json``).  See ``docs/data.md``.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
import time
import tracemalloc

import numpy as np

from ..obs.events import DataBench, EventBus, get_bus
from .cache import DatasetCache
from .catalog import DATASETS, _scaled_size, load_dataset
from .loader import DataLoader
from .windows import WindowConfig, make_windows, use_reference_pipeline

__all__ = ["DATA_BENCH_MODES", "bench_data", "estimate_dataset_nbytes"]

#: Per-mode workloads.  ``quick`` keeps the suite under a few seconds (the
#: tier-1 smoke test runs it); ``full`` is the recorded configuration
#: behind ``BENCH_data.json`` and the one with asserted floors.
DATA_BENCH_MODES: dict[str, dict] = {
    "quick": dict(repeats=2, dataset="metr-la", scale="ci", batch_size=32),
    "full": dict(repeats=3, dataset="metr-la", scale="bench", batch_size=32),
}


def _best_of(step, repeats: int, warmup: bool = True) -> float:
    """Minimum wall time of ``step`` over ``repeats`` runs."""
    if warmup:
        step()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        step()
        best = min(best, time.perf_counter() - start)
    return best


@contextlib.contextmanager
def _scoped_cache_dir():
    """Point ``REPRO_CACHE_DIR`` at a throwaway directory for the block,
    so benchmark loads never touch (or benefit from) the user's cache."""
    previous = os.environ.get("REPRO_CACHE_DIR")
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        os.environ["REPRO_CACHE_DIR"] = tmp
        try:
            yield DatasetCache(tmp)
        finally:
            if previous is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = previous


def estimate_dataset_nbytes(num_nodes: int, num_steps: int,
                            config: WindowConfig | None = None
                            ) -> tuple[int, int]:
    """Analytic (eager, lazy) resident bytes for a dataset geometry.

    Eager counts the stacked ``(S, T', N, 2)`` inputs plus ``(S, T, N)``
    targets over all windows; lazy counts the window source (raw + scaled
    series and the scaled time signal) — views and indices are noise.
    """
    config = config or WindowConfig()
    window = config.history + config.horizon
    samples = max(0, num_steps - window + 1)      # across the three splits
    itemsize = 8
    per_sample = (config.history * num_nodes * 2
                  + config.horizon * num_nodes) * itemsize
    eager = samples * per_sample
    lazy = (2 * num_steps * num_nodes + 2 * num_steps) * itemsize
    return eager, lazy


# --------------------------------------------------------------------- #
# cases
# --------------------------------------------------------------------- #
def _case_dataset_load(sizes: dict):
    name, scale = sizes["dataset"], sizes["scale"]

    with _scoped_cache_dir() as store:
        def cold():
            store.clear()
            load_dataset(name, scale=scale, cache=True)

        cold_seconds = _best_of(cold, sizes["repeats"], warmup=False)
        load_dataset(name, scale=scale, cache=True)    # populate the entry

        def warm():
            load_dataset(name, scale=scale, cache=True)

        warm_seconds = _best_of(warm, sizes["repeats"])
        entry_bytes = sum(e.size_bytes for e in store.entries())

    meta = {"dataset": name, "scale": scale, "entry_bytes": entry_bytes}
    return cold_seconds, warm_seconds, meta


def _case_window_build(sizes: dict):
    data = load_dataset(sizes["dataset"], scale=sizes["scale"], cache=False)
    series = data.supervised.series
    time_of_day = data.simulation.time_of_day

    def eager():
        with use_reference_pipeline():
            make_windows(series, time_of_day)

    def lazy():
        make_windows(series, time_of_day)

    eager_seconds = _best_of(eager, sizes["repeats"])
    lazy_seconds = _best_of(lazy, sizes["repeats"])
    meta = {"dataset": sizes["dataset"], "scale": sizes["scale"],
            "num_steps": len(series), "num_nodes": series.shape[1]}
    return eager_seconds, lazy_seconds, meta


def _epoch(split, scaler, batch_size: int) -> int:
    loader = DataLoader(split, batch_size=batch_size, shuffle=True, seed=0,
                        target_scaler=scaler)
    batches = 0
    for x, y, _ in loader:
        batches += 1
    return batches


def _case_train_epoch(sizes: dict):
    data = load_dataset(sizes["dataset"], scale=sizes["scale"], cache=False)
    scaler = data.supervised.scaler
    lazy_split = data.supervised.train
    with use_reference_pipeline():
        eager = make_windows(data.supervised.series,
                             data.simulation.time_of_day)
    eager_split = eager.train
    batch_size = sizes["batch_size"]

    eager_seconds = _best_of(
        lambda: _epoch(eager_split, eager.scaler, batch_size),
        sizes["repeats"])
    lazy_seconds = _best_of(
        lambda: _epoch(lazy_split, scaler, batch_size), sizes["repeats"])
    batches = len(DataLoader(lazy_split, batch_size=batch_size))
    meta = {"dataset": sizes["dataset"], "scale": sizes["scale"],
            "batches": batches, "batch_size": batch_size,
            "eager_batches_per_sec": round(batches / eager_seconds, 1),
            "lazy_batches_per_sec": round(batches / lazy_seconds, 1)}
    return eager_seconds, lazy_seconds, meta


def _traced_pipeline(data, batch_size: int, eager: bool
                     ) -> tuple[float, int]:
    """Wall seconds + tracemalloc peak of building windows and iterating
    one epoch under one pipeline."""
    series = data.supervised.series
    time_of_day = data.simulation.time_of_day
    tracemalloc.start()
    start = time.perf_counter()
    if eager:
        with use_reference_pipeline():
            supervised = make_windows(series, time_of_day)
    else:
        supervised = make_windows(series, time_of_day)
    _epoch(supervised.train, supervised.scaler, batch_size)
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return elapsed, peak


def _case_resident_memory(sizes: dict):
    data = load_dataset(sizes["dataset"], scale=sizes["scale"], cache=False)
    batch_size = sizes["batch_size"]
    eager_seconds, eager_peak = _traced_pipeline(data, batch_size, eager=True)
    lazy_seconds, lazy_peak = _traced_pipeline(data, batch_size, eager=False)

    spec = DATASETS[sizes["dataset"]]
    paper_nodes, paper_days = _scaled_size(spec, "paper")
    paper_eager, paper_lazy = estimate_dataset_nbytes(
        paper_nodes, paper_days * 288)
    meta = {
        "dataset": sizes["dataset"], "scale": sizes["scale"],
        "eager_peak_bytes": eager_peak,
        "lazy_peak_bytes": lazy_peak,
        "memory_ratio": round(eager_peak / max(lazy_peak, 1), 2),
        "paper_eager_bytes": paper_eager,
        "paper_lazy_bytes": paper_lazy,
        "paper_memory_ratio": round(paper_eager / max(paper_lazy, 1), 2),
    }
    return eager_seconds, lazy_seconds, meta


_CASES = [
    ("dataset_load", _case_dataset_load),
    ("window_build", _case_window_build),
    ("train_epoch", _case_train_epoch),
    ("resident_memory", _case_resident_memory),
]


def bench_data(mode: str = "quick", bus: EventBus | None = None,
               cases: list[str] | None = None):
    """Run the data-pipeline suite; returns per-case timings.

    ``mode`` selects the workload (:data:`DATA_BENCH_MODES`).  Reference
    timings come from the eager pipeline / cold loads, fast timings from
    the lazy pipeline / cache hits; every case emits a
    :class:`repro.obs.DataBench` event on ``bus`` (the ambient bus when
    None).  ``cases`` restricts the run to a subset of case names.
    """
    from ..nn.kernel_bench import KernelTiming

    if mode not in DATA_BENCH_MODES:
        raise ValueError(f"unknown bench mode {mode!r}; "
                         f"expected one of {sorted(DATA_BENCH_MODES)}")
    sizes = DATA_BENCH_MODES[mode]
    bus = bus if bus is not None else get_bus()
    selected = _CASES if cases is None else [
        (name, make) for name, make in _CASES if name in set(cases)]
    if cases is not None and len(selected) != len(set(cases)):
        known = {name for name, _ in _CASES}
        raise ValueError(f"unknown bench case(s) {sorted(set(cases) - known)}")

    results = []
    for name, make in selected:
        reference, fast, meta = make(dict(sizes))
        timing = KernelTiming(name=name, reference_seconds=reference,
                              fast_seconds=fast, meta=meta)
        bus.emit(DataBench(name=name, mode=mode, reference_seconds=reference,
                           fast_seconds=fast, speedup=timing.speedup,
                           meta=meta))
        results.append(timing)
    return results
