"""Mini-batch iteration over supervised splits."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .windows import SupervisedSplit

__all__ = ["DataLoader"]


class DataLoader:
    """Iterates ``(x, y, start_index)`` mini-batches.

    Shuffling uses its own generator so epoch order is reproducible per seed
    independently of model-weight randomness.
    """

    def __init__(self, split: SupervisedSplit, batch_size: int = 64,
                 shuffle: bool = False, seed: int = 0, drop_last: bool = False):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.split = split
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = self.split.num_samples
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        n = self.split.num_samples
        order = np.arange(n)
        if self.shuffle:
            self._rng.shuffle(order)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for lo in range(0, stop, self.batch_size):
            index = order[lo:lo + self.batch_size]
            yield (self.split.x[index], self.split.y[index],
                   self.split.start_index[index])
