"""Mini-batch iteration over supervised splits."""

from __future__ import annotations

import time
from typing import Iterator

import numpy as np

from ..obs.spans import span
from ..obs.stats import get_registry
from .windows import SupervisedSplit

__all__ = ["DataLoader"]


class DataLoader:
    """Iterates ``(x, y, start_index)`` mini-batches.

    Batches are gathered through :meth:`SupervisedSplit.batch`, so a lazy
    split never materialises its full input tensor — each batch is built
    from the shared window views on demand.  Shuffling uses its own
    generator so epoch order is reproducible per seed independently of
    model-weight randomness.

    ``target_scaler`` yields targets in scaled units (training loops need
    them scaled every epoch); the transform is hoisted to dataset level —
    a lazy split gathers from the pre-scaled series, an eager split
    transforms its target array once and caches it — instead of being
    re-applied per batch.
    """

    def __init__(self, split: SupervisedSplit, batch_size: int = 64,
                 shuffle: bool = False, seed: int = 0, drop_last: bool = False,
                 target_scaler=None):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.split = split
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.target_scaler = target_scaler
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = self.split.num_samples
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        n = self.split.num_samples
        order = np.arange(n)
        if self.shuffle:
            self._rng.shuffle(order)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        gather = getattr(self.split, "batch", None)
        registry = get_registry()
        gather_hist = registry.histogram("data/gather_seconds")
        gather_counter = registry.counter("data/batches")
        for lo in range(0, stop, self.batch_size):
            index = order[lo:lo + self.batch_size]
            # The span closes before the yield, so consumer work is never
            # billed to the gather.
            gather_start = time.perf_counter()
            with span("data/gather", size=len(index)):
                if gather is not None:
                    batch = gather(index, target_scaler=self.target_scaler)
                else:                   # duck-typed split without batch()
                    y = self.split.y[index]
                    if self.target_scaler is not None:
                        y = self.target_scaler.transform(y)
                    batch = (self.split.x[index], y,
                             self.split.start_index[index])
            gather_hist.observe(time.perf_counter() - gather_start)
            gather_counter.inc()
            yield batch
