"""The traffic simulator — synthetic stand-in for the PeMS detector feeds.

The simulator produces a per-sensor normalised density series at 5-minute
resolution by composing:

1. **Recurring demand** — a daily profile with morning and evening rush
   peaks (each sensor has its own commute orientation, so some peak in the
   AM, some in the PM), damped on weekends.
2. **Congestion waves** — densities couple along graph edges: a congested
   downstream sensor backs traffic up to its upstream neighbours with a lag,
   through a first-order spatio-temporal filter.  This is the spatial
   correlation the graph models exploit.
3. **Incidents** — Poisson-arriving non-recurring events that spike the
   density of a sensor abruptly and decay over ~30–90 minutes, propagating
   upstream.  These create the "abruptly changing intervals" studied in the
   paper's Sec. V-B.
4. **Measurement noise** — AR(1) sensor noise plus occasional missing
   readings recorded as 0 (the PeMS convention, handled by masked metrics).

Densities convert to speed or flow via the fundamental diagram
(:mod:`repro.datasets.fundamental`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.road_network import RoadNetwork
from .fundamental import flow_from_density, speed_from_density

__all__ = ["SimulationConfig", "TrafficSimulator", "SimulationResult",
           "STEPS_PER_DAY", "STEPS_PER_HOUR"]

STEPS_PER_HOUR = 12          # 5-minute aggregation, as PeMS
STEPS_PER_DAY = 24 * STEPS_PER_HOUR


@dataclass
class SimulationConfig:
    """Knobs controlling the synthetic traffic process."""

    num_days: int = 8
    start_weekday: int = 0            # 0 = Monday
    rush_intensity: float = 0.45      # peak recurring density contribution
    weekend_factor: float = 0.45      # demand multiplier on Sat/Sun
    coupling: float = 0.25            # upstream <- downstream congestion coupling
    decay: float = 0.60               # congestion persistence per step
    incident_rate_per_day: float = 1.2  # expected incidents per sensor-day / 100
    incident_magnitude: tuple[float, float] = (0.35, 0.7)
    incident_duration_steps: tuple[int, int] = (6, 18)   # 30–90 minutes
    noise_std: float = 0.02           # AR(1) innovation std on density
    noise_ar: float = 0.6
    missing_rate: float = 0.01        # fraction of readings dropped to 0
    demand_jitter: float = 0.08       # day-to-day random demand variation
    # Sensor outages: real detectors fail for contiguous stretches, not
    # i.i.d. samples.  Expected outages per sensor-day, and their length.
    outage_rate_per_day: float = 0.0
    outage_duration_steps: tuple[int, int] = (12, 72)   # 1-6 hours
    # Weather regime: probability that a day is "bad weather", which raises
    # demand network-wide (slower traffic everywhere, all day).
    bad_weather_probability: float = 0.0
    bad_weather_demand_factor: float = 1.35


@dataclass
class SimulationResult:
    """Output of a simulation run.

    Attributes
    ----------
    density:
        ``(T, N)`` normalised densities in [0, ~0.95].
    speed / flow:
        ``(T, N)`` measurements derived from density.  Missing readings are
        zeros in both (PeMS convention).
    timestamps:
        ``(T,)`` minutes since simulation start.
    time_of_day:
        ``(T,)`` fraction of day in [0, 1).
    day_of_week:
        ``(T,)`` integers, 0=Monday.
    missing_mask:
        ``(T, N)`` boolean, True where the reading was dropped.
    incident_log:
        list of ``(step, node, magnitude, duration)`` tuples (ground truth
        for difficult-interval validation).
    """

    density: np.ndarray
    speed: np.ndarray
    flow: np.ndarray
    timestamps: np.ndarray
    time_of_day: np.ndarray
    day_of_week: np.ndarray
    missing_mask: np.ndarray
    incident_log: list[tuple[int, int, float, int]] = field(default_factory=list)


class TrafficSimulator:
    """Simulates 5-minute traffic measurements over a road network."""

    def __init__(self, network: RoadNetwork, config: SimulationConfig | None = None,
                 seed: int = 0):
        self.network = network
        self.config = config or SimulationConfig()
        self.seed = seed

    # ------------------------------------------------------------------ #
    def run(self, extra_incidents: list[tuple[int, int, float, int]] | None = None
            ) -> SimulationResult:
        """Run the simulation.

        Parameters
        ----------
        extra_incidents:
            Optional deterministic incidents ``(step, node, magnitude,
            duration)`` injected *on top of* the stochastic ones — the
            counterfactual API: rerunning with the same seed plus one
            injected incident yields a world identical except for that
            event and its downstream congestion.
        """
        cfg = self.config
        rng = np.random.default_rng(self.seed)
        n = self.network.num_nodes
        total_steps = cfg.num_days * STEPS_PER_DAY

        demand = self._recurring_demand(rng, total_steps)          # (T, N)
        incident_forcing, incident_log = self._incidents(rng, total_steps)
        for step, node, magnitude, duration in (extra_incidents or []):
            if not 0 <= step < total_steps:
                raise ValueError(f"incident step {step} outside simulation")
            if not 0 <= node < n:
                raise ValueError(f"incident node {node} outside network")
            stop = min(total_steps, step + duration)
            steps = np.arange(stop - step)
            incident_forcing[step:stop, node] += (
                magnitude * np.exp(-steps / max(1.0, duration / 2.5)))
            incident_log.append((step, node, float(magnitude), int(duration)))

        # Upstream-neighbour averaging operator: congestion at a sensor is
        # pushed to the sensors feeding into it (queue spillback).
        spillback = self._spillback_operator()

        # Convex spatio-temporal filter: with feed = 1 - decay - coupling the
        # fixed point of the recursion equals the demand level, so recurring
        # density tracks the daily profile while congestion still spills
        # upstream through the coupling term.
        feed = 1.0 - cfg.decay - cfg.coupling
        if feed <= 0:
            raise ValueError(
                f"decay ({cfg.decay}) + coupling ({cfg.coupling}) must be < 1 "
                "for stable congestion dynamics")
        density = np.zeros((total_steps, n))
        state = demand[0].copy()
        noise = np.zeros(n)
        for t in range(total_steps):
            noise = cfg.noise_ar * noise + rng.normal(0.0, cfg.noise_std, size=n)
            neighbour_pressure = spillback @ state
            state = (cfg.decay * state
                     + cfg.coupling * neighbour_pressure
                     + feed * demand[t]
                     + incident_forcing[t])
            state = np.clip(state, 0.0, 0.95)
            density[t] = np.clip(state + noise, 0.0, 0.95)

        speed = speed_from_density(density, self.network.free_flow_speed[None, :])
        flow = flow_from_density(density, self.network.capacity[None, :])

        missing = rng.random((total_steps, n)) < cfg.missing_rate
        if cfg.outage_rate_per_day > 0:
            missing |= self._outages(rng, total_steps)
        speed = np.where(missing, 0.0, speed)
        flow = np.where(missing, 0.0, flow)

        timestamps = np.arange(total_steps) * 5.0
        step_in_day = np.arange(total_steps) % STEPS_PER_DAY
        time_of_day = step_in_day / STEPS_PER_DAY
        day_of_week = ((np.arange(total_steps) // STEPS_PER_DAY)
                       + cfg.start_weekday) % 7

        return SimulationResult(
            density=density, speed=speed, flow=flow, timestamps=timestamps,
            time_of_day=time_of_day, day_of_week=day_of_week,
            missing_mask=missing, incident_log=incident_log)

    # ------------------------------------------------------------------ #
    def _recurring_demand(self, rng: np.random.Generator,
                          total_steps: int) -> np.ndarray:
        """Daily double-peak demand per sensor, damped on weekends."""
        cfg = self.config
        n = self.network.num_nodes
        hours = (np.arange(total_steps) % STEPS_PER_DAY) / STEPS_PER_HOUR

        # Per-sensor commute orientation: 0 = AM-heavy, 1 = PM-heavy.
        orientation = rng.random(n)
        am_weight = 1.2 - 0.8 * orientation
        pm_weight = 0.4 + 0.8 * orientation
        am_center = rng.normal(8.0, 0.4, size=n)
        pm_center = rng.normal(17.5, 0.4, size=n)
        width = rng.uniform(1.0, 1.8, size=n)
        base = rng.uniform(0.04, 0.12, size=n)   # light overnight density

        am_peak = np.exp(-((hours[:, None] - am_center[None, :]) / width) ** 2)
        pm_peak = np.exp(-((hours[:, None] - pm_center[None, :]) / width) ** 2)
        midday = 0.25 * np.exp(-((hours[:, None] - 13.0) / 3.0) ** 2)

        profile = cfg.rush_intensity * (am_weight * am_peak
                                        + pm_weight * pm_peak + midday)
        demand = base[None, :] + profile

        day_index = np.arange(total_steps) // STEPS_PER_DAY
        weekday = (day_index + cfg.start_weekday) % 7
        weekend = (weekday >= 5).astype(float)
        day_scale = 1.0 - (1.0 - cfg.weekend_factor) * weekend
        day_jitter = rng.normal(1.0, cfg.demand_jitter, size=day_index.max() + 1)
        if cfg.bad_weather_probability > 0:
            bad_day = (rng.random(day_index.max() + 1)
                       < cfg.bad_weather_probability)
            day_jitter = np.where(
                bad_day, day_jitter * cfg.bad_weather_demand_factor,
                day_jitter)
        demand = demand * (day_scale * day_jitter[day_index])[:, None]
        return np.clip(demand, 0.0, 0.9)

    # ------------------------------------------------------------------ #
    def _incidents(self, rng: np.random.Generator, total_steps: int):
        """Non-recurring incident shocks: abrupt onset, gradual clearance."""
        cfg = self.config
        n = self.network.num_nodes
        forcing = np.zeros((total_steps, n))
        # Incidents per sensor follow a Poisson process.
        expected = cfg.incident_rate_per_day * cfg.num_days
        log: list[tuple[int, int, float, int]] = []
        num_events = rng.poisson(expected * n / 30.0) + max(1, n // 8)
        for _ in range(num_events):
            node = int(rng.integers(n))
            start = int(rng.integers(total_steps))
            magnitude = float(rng.uniform(*cfg.incident_magnitude))
            duration = int(rng.integers(cfg.incident_duration_steps[0],
                                        cfg.incident_duration_steps[1] + 1))
            stop = min(total_steps, start + duration)
            steps = np.arange(stop - start)
            # Abrupt onset (full magnitude immediately), exponential clearing.
            shape = magnitude * np.exp(-steps / max(1.0, duration / 2.5))
            forcing[start:stop, node] += shape
            log.append((start, node, magnitude, duration))
        return forcing, log

    # ------------------------------------------------------------------ #
    def _outages(self, rng: np.random.Generator, total_steps: int) -> np.ndarray:
        """Contiguous per-sensor failure stretches (block missingness)."""
        cfg = self.config
        n = self.network.num_nodes
        mask = np.zeros((total_steps, n), dtype=bool)
        expected = cfg.outage_rate_per_day * cfg.num_days
        for node in range(n):
            for _ in range(rng.poisson(expected)):
                start = int(rng.integers(total_steps))
                duration = int(rng.integers(cfg.outage_duration_steps[0],
                                            cfg.outage_duration_steps[1] + 1))
                mask[start:start + duration, node] = True
        return mask

    # ------------------------------------------------------------------ #
    def _spillback_operator(self) -> np.ndarray:
        """Row-normalised matrix mapping node densities to the congestion
        pressure felt by each node from its *downstream* successors."""
        n = self.network.num_nodes
        op = np.zeros((n, n))
        for node, successors in self.network.downstream_hops().items():
            for succ in successors:
                op[node, succ] = 1.0
        row_sum = op.sum(axis=1, keepdims=True)
        return op / np.where(row_sum > 0, row_sum, 1.0)
