"""Feature scalers (paper Sec. V: z-score for traffic, min-max for time)."""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler", "MinMaxScaler"]


class StandardScaler:
    """Z-score normalisation fit on non-null entries of the training split.

    PeMS missing readings are stored as 0 and must not bias the statistics,
    so entries equal to ``null_value`` are excluded from fitting.
    """

    def __init__(self, null_value: float | None = 0.0):
        self.null_value = null_value
        self.mean: float | None = None
        self.std: float | None = None

    def fit(self, values: np.ndarray) -> "StandardScaler":
        data = np.asarray(values, dtype=float)
        if self.null_value is not None:
            data = data[~np.isclose(data, self.null_value)]
        if data.size == 0:
            raise ValueError("no valid entries to fit scaler")
        self.mean = float(data.mean())
        self.std = float(data.std())
        if self.std == 0:
            self.std = 1.0
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return (np.asarray(values, dtype=float) - self.mean) / self.std

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return np.asarray(values, dtype=float) * self.std + self.mean

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)

    def _check_fitted(self) -> None:
        if self.mean is None:
            raise RuntimeError("scaler used before fit()")


class MinMaxScaler:
    """Scale to [0, 1] from the training range."""

    def __init__(self):
        self.low: float | None = None
        self.high: float | None = None

    def fit(self, values: np.ndarray) -> "MinMaxScaler":
        data = np.asarray(values, dtype=float)
        if data.size == 0:
            raise ValueError("no entries to fit scaler")
        self.low = float(data.min())
        self.high = float(data.max())
        if self.high == self.low:
            self.high = self.low + 1.0
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        if self.low is None:
            raise RuntimeError("scaler used before fit()")
        return (np.asarray(values, dtype=float) - self.low) / (self.high - self.low)

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        if self.low is None:
            raise RuntimeError("scaler used before fit()")
        return np.asarray(values, dtype=float) * (self.high - self.low) + self.low

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)
