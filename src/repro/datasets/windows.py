"""Sliding-window supervised dataset construction (paper Sec. IV-B, V).

The forecasting task maps T'=12 historical graph signals to the next T=12
signals.  Inputs carry two features per node and step — the z-scored traffic
value and the min-max normalised time of day — exactly the preprocessing
described in the paper.  Splits are chronological at a 7:1:2 ratio.

The pipeline is **lazy by default**: a :class:`WindowSource` keeps one
scaled copy of the series plus zero-copy
``numpy.lib.stride_tricks.sliding_window_view`` views over it, and each
:class:`SupervisedSplit` stores only its window start indices.  Batches are
gathered on demand (``split.batch(indices)``), so a dataset resident in
memory costs O(T·N) instead of the O(S·T'·N·2) of eagerly stacked input
tensors (~24x the series).  ``split.x`` / ``split.y`` remain available as
materialising properties, ``split.materialize()`` forces the eager arrays,
and the :func:`use_reference_pipeline` switch makes :func:`make_windows`
materialise every split at construction — the pre-refactor behaviour —
so equivalence tests can hold lazy and eager batches to exact equality.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

import numpy as np

from .scalers import MinMaxScaler, StandardScaler

__all__ = ["WindowConfig", "WindowSource", "SupervisedSplit",
           "SupervisedDataset", "make_windows", "use_reference_pipeline",
           "reference_pipeline_enabled"]


_REFERENCE = False


@contextlib.contextmanager
def use_reference_pipeline():
    """Route :func:`make_windows` through the eager reference pipeline.

    Inside the context every split materialises its full ``(S, T', N, F)``
    input and ``(S, T, N)`` target arrays at construction and batches are
    fancy-indexed from them — the pre-refactor data path.  Used by
    equivalence tests (lazy and eager batches must match bitwise) and by
    the data benchmark for honest before/after memory numbers.
    """
    global _REFERENCE
    previous = _REFERENCE
    _REFERENCE = True
    try:
        yield
    finally:
        _REFERENCE = previous


def reference_pipeline_enabled() -> bool:
    """True while inside :func:`use_reference_pipeline`."""
    return _REFERENCE


@dataclass
class WindowConfig:
    history: int = 12        # T'
    horizon: int = 12        # T
    train_ratio: float = 0.7
    val_ratio: float = 0.1   # test gets the remainder (0.2)
    # Optional third input feature (day-of-week / 6), as used by GMAN's
    # original temporal embedding; the paper's protocol uses two features.
    include_day_of_week: bool = False


class WindowSource:
    """Shared view-backed state behind every split of one dataset.

    Holds the raw series, its scaled copy, the scaled time-of-day signal
    (and optionally day-of-week), the fitted scalers, and zero-copy sliding
    views over all of them.  The three chronological splits each keep only
    window start indices into this source, so the resident cost of a lazy
    dataset is the O(T·N) arrays here — nothing per window.
    """

    def __init__(self, series: np.ndarray, scaled: np.ndarray,
                 scaled_time: np.ndarray, config: WindowConfig,
                 scaler: StandardScaler,
                 scaled_day_of_week: np.ndarray | None = None):
        self.series = series
        self.scaled = scaled
        self.scaled_time = scaled_time
        self.scaled_day_of_week = scaled_day_of_week
        self.config = config
        self.scaler = scaler
        sliding = np.lib.stride_tricks.sliding_window_view
        # All windows of every split are gathered from sliding views over
        # the full series (no per-window Python loop and no per-window
        # storage); a batch is one fancy-index per feature.
        self._hist_view = sliding(scaled, config.history, axis=0)
        self._time_view = sliding(scaled_time, config.history)
        self._future_view = sliding(series, config.horizon, axis=0)
        self._scaled_future_view = sliding(scaled, config.horizon, axis=0)
        self._dow_view = (sliding(scaled_day_of_week, config.history)
                          if scaled_day_of_week is not None else None)

    @property
    def num_nodes(self) -> int:
        return self.series.shape[1]

    @property
    def num_features(self) -> int:
        """Input features per node and step (2, or 3 with day-of-week)."""
        return 2 if self._dow_view is None else 3

    @property
    def resident_nbytes(self) -> int:
        """Bytes held by the source arrays (views over them are free)."""
        total = (self.series.nbytes + self.scaled.nbytes
                 + self.scaled_time.nbytes)
        if self.scaled_day_of_week is not None:
            total += self.scaled_day_of_week.nbytes
        return total

    def gather_x(self, starts: np.ndarray) -> np.ndarray:
        """Stack the input features for windows starting at ``starts``.

        Writes each feature channel into one pre-allocated output (the
        broadcast of the time/day signals over nodes happens inside the
        assignment) — no ``np.stack`` intermediate.
        """
        x_traffic = self._hist_view[starts].transpose(0, 2, 1)   # (B, T', N)
        out = np.empty(x_traffic.shape + (self.num_features,))
        out[..., 0] = x_traffic
        out[..., 1] = self._time_view[starts][:, :, None]
        if self._dow_view is not None:
            out[..., 2] = self._dow_view[starts][:, :, None]
        return out

    def gather_y(self, first_targets: np.ndarray,
                 scaled: bool = False) -> np.ndarray:
        """Targets for windows whose first target step is ``first_targets``.

        ``scaled=True`` gathers from the pre-scaled series instead of
        transforming after the gather — same values bitwise (the z-score is
        elementwise), computed once per dataset instead of once per batch.
        """
        view = self._scaled_future_view if scaled else self._future_view
        return np.ascontiguousarray(view[first_targets].transpose(0, 2, 1))


class SupervisedSplit:
    """One chronological split of windowed samples.

    Lazy by default: holds a :class:`WindowSource` plus window start
    indices and gathers batches on demand via :meth:`batch`.  The ``x`` /
    ``y`` properties materialise (and cache) the full eager arrays for
    code that needs them; :meth:`materialize` forces both.  Splits may
    also be constructed directly from eager arrays
    (``SupervisedSplit(x=..., y=..., start_index=...)``), which is what
    the reference pipeline and hand-built test fixtures do.

    Attributes
    ----------
    x:
        ``(S, T', N, F)`` inputs — feature 0 is the scaled traffic value,
        feature 1 the normalised time of day (materialises on access).
    y:
        ``(S, T, N)`` targets in *original* units (metrics are computed in
        original units; models predict scaled values that the experiment
        runner inverse-transforms).
    start_index:
        ``(S,)`` index into the full series of each window's first target
        step — used to align predictions with difficult-interval masks.
    """

    def __init__(self, x: np.ndarray | None = None,
                 y: np.ndarray | None = None,
                 start_index: np.ndarray | None = None, *,
                 source: WindowSource | None = None,
                 starts: np.ndarray | None = None):
        if source is not None:
            if starts is None:
                raise ValueError("lazy split needs window start indices")
            self._starts = np.asarray(starts)
            self.start_index = self._starts + source.config.history
        else:
            if x is None or y is None or start_index is None:
                raise ValueError(
                    "eager split needs x, y and start_index arrays")
            self._starts = None
            self.start_index = np.asarray(start_index)
        self._source = source
        self._x = x
        self._y = y
        self._y_scaled = None          # (scaler, array) cache for batch()
        self._scaled_for = None

    # -- laziness ------------------------------------------------------- #
    @property
    def is_lazy(self) -> bool:
        """True while the full ``x`` tensor has not been materialised."""
        return self._x is None

    def materialize(self) -> "SupervisedSplit":
        """Force (and cache) the eager ``x`` / ``y`` arrays; returns self."""
        _ = self.x, self.y
        return self

    @property
    def x(self) -> np.ndarray:
        if self._x is None:
            self._x = self._source.gather_x(self._starts)
        return self._x

    @property
    def y(self) -> np.ndarray:
        if self._y is None:
            self._y = self._source.gather_y(self.start_index)
        return self._y

    # -- geometry ------------------------------------------------------- #
    @property
    def num_samples(self) -> int:
        return len(self.start_index)

    @property
    def num_features(self) -> int:
        """Input features per node and step (without materialising)."""
        if self._x is not None:
            return self._x.shape[-1]
        return self._source.num_features

    @property
    def resident_nbytes(self) -> int:
        """Bytes resident in this split right now (excludes the shared
        source; a lazy, never-materialised split costs only its indices)."""
        total = self.start_index.nbytes
        for cached in (self._x, self._y, self._y_scaled):
            if cached is not None:
                total += cached.nbytes
        return total

    @property
    def materialized_nbytes(self) -> int:
        """Bytes the eager ``x`` + ``y`` arrays occupy (analytic — does not
        materialise anything)."""
        if self._source is not None:
            config = self._source.config
            nodes = self._source.num_nodes
            history, horizon = config.history, config.horizon
            features = self._source.num_features
        else:
            history, nodes, features = self._x.shape[1:]
            horizon = self._y.shape[1]
        itemsize = 8
        per_sample = (history * nodes * features + horizon * nodes) * itemsize
        return self.num_samples * per_sample + self.start_index.nbytes

    # -- batching ------------------------------------------------------- #
    def batch(self, indices: np.ndarray, target_scaler=None
              ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Gather ``(x, y, start_index)`` for the given sample indices.

        ``target_scaler`` returns targets in scaled units instead of
        original units, hoisting the per-batch ``scaler.transform`` out of
        training loops: a lazy split gathers straight from the pre-scaled
        series when the scaler is the dataset's own, and an eager split
        transforms its full target array once and caches it.
        """
        indices = np.asarray(indices)
        if self._x is not None:                       # eager / materialised
            x = self._x[indices]
            if target_scaler is None:
                y = self.y[indices]
            else:
                y = self._scaled_targets(target_scaler)[indices]
        else:
            starts = self._starts[indices]
            x = self._source.gather_x(starts)
            first_targets = starts + self._source.config.history
            if target_scaler is None:
                y = self._source.gather_y(first_targets)
            elif target_scaler is self._source.scaler:
                y = self._source.gather_y(first_targets, scaled=True)
            else:
                y = target_scaler.transform(
                    self._source.gather_y(first_targets))
        return x, y, self.start_index[indices]

    def _scaled_targets(self, scaler) -> np.ndarray:
        """Targets transformed by ``scaler``, computed once and cached."""
        if self._y_scaled is None or self._scaled_for is not scaler:
            self._y_scaled = scaler.transform(self.y)
            self._scaled_for = scaler
        return self._y_scaled


@dataclass
class SupervisedDataset:
    """Windowed dataset with its scalers and raw series."""

    train: SupervisedSplit
    val: SupervisedSplit
    test: SupervisedSplit
    scaler: StandardScaler
    time_scaler: MinMaxScaler
    series: np.ndarray        # (T_total, N) raw traffic values
    config: WindowConfig

    @property
    def num_nodes(self) -> int:
        return self.series.shape[1]

    @property
    def splits(self) -> tuple[SupervisedSplit, SupervisedSplit,
                              SupervisedSplit]:
        return self.train, self.val, self.test

    def materialize(self) -> "SupervisedDataset":
        """Force eager arrays for every split; returns self."""
        for split in self.splits:
            split.materialize()
        return self

    @property
    def resident_nbytes(self) -> int:
        """Bytes the dataset holds right now: the shared window source
        (counted once) plus whatever each split has materialised."""
        sources = {id(s._source): s._source for s in self.splits
                   if s._source is not None}
        total = sum(source.resident_nbytes for source in sources.values())
        return total + sum(s.resident_nbytes for s in self.splits)

    @property
    def materialized_nbytes(self) -> int:
        """Bytes a fully eager copy of every split would occupy."""
        return sum(s.materialized_nbytes for s in self.splits)


def make_windows(series: np.ndarray, time_of_day: np.ndarray,
                 config: WindowConfig | None = None,
                 null_value: float | None = 0.0,
                 day_of_week: np.ndarray | None = None) -> SupervisedDataset:
    """Build chronological train/val/test windows from a raw series.

    Splits are lazy (view-backed) unless :func:`use_reference_pipeline`
    is active, in which case every split materialises eagerly.

    Parameters
    ----------
    series:
        ``(T_total, N)`` raw measurements (speed in mph or flow in veh/5min),
        with missing entries as ``null_value``.
    time_of_day:
        ``(T_total,)`` fraction of day in [0, 1).
    day_of_week:
        ``(T_total,)`` integers 0–6; required when
        ``config.include_day_of_week`` is set.
    """
    config = config or WindowConfig()
    series = np.asarray(series, dtype=float)
    time_of_day = np.asarray(time_of_day, dtype=float)
    if series.ndim != 2:
        raise ValueError(f"series must be (T, N), got shape {series.shape}")
    if len(time_of_day) != len(series):
        raise ValueError("time_of_day length must match series length")
    scaled_dow = None
    if config.include_day_of_week:
        if day_of_week is None:
            raise ValueError(
                "include_day_of_week requires the day_of_week array")
        day_of_week = np.asarray(day_of_week, dtype=float)
        if len(day_of_week) != len(series):
            raise ValueError("day_of_week length must match series length")
        scaled_dow = day_of_week / 6.0
    total = len(series)
    window = config.history + config.horizon
    if total < window + 10:
        raise ValueError(
            f"series of length {total} too short for window {window}")

    train_end = int(total * config.train_ratio)
    val_end = int(total * (config.train_ratio + config.val_ratio))

    scaler = StandardScaler(null_value=null_value).fit(series[:train_end])
    time_scaler = MinMaxScaler().fit(time_of_day[:train_end])
    scaled = scaler.transform(series)
    scaled_time = time_scaler.transform(time_of_day)

    source = WindowSource(series=series, scaled=scaled,
                          scaled_time=scaled_time, config=config,
                          scaler=scaler, scaled_day_of_week=scaled_dow)

    def build(start: int, end: int) -> SupervisedSplit:
        starts = np.arange(start, end - window + 1)
        if len(starts) == 0:
            raise ValueError(
                f"split [{start}, {end}) too short for window {window}")
        split = SupervisedSplit(source=source, starts=starts)
        if reference_pipeline_enabled():
            split.materialize()
        return split

    return SupervisedDataset(
        train=build(0, train_end),
        val=build(train_end, val_end),
        test=build(val_end, total),
        scaler=scaler, time_scaler=time_scaler,
        series=series, config=config)
