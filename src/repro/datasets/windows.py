"""Sliding-window supervised dataset construction (paper Sec. IV-B, V).

The forecasting task maps T'=12 historical graph signals to the next T=12
signals.  Inputs carry two features per node and step — the z-scored traffic
value and the min-max normalised time of day — exactly the preprocessing
described in the paper.  Splits are chronological at a 7:1:2 ratio.

Window construction is fully vectorised: one
``numpy.lib.stride_tricks.sliding_window_view`` over the series feeds every
split, so building a dataset costs a few gathers instead of a Python loop
per window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .scalers import MinMaxScaler, StandardScaler

__all__ = ["WindowConfig", "SupervisedSplit", "SupervisedDataset", "make_windows"]


@dataclass
class WindowConfig:
    history: int = 12        # T'
    horizon: int = 12        # T
    train_ratio: float = 0.7
    val_ratio: float = 0.1   # test gets the remainder (0.2)
    # Optional third input feature (day-of-week / 6), as used by GMAN's
    # original temporal embedding; the paper's protocol uses two features.
    include_day_of_week: bool = False


@dataclass
class SupervisedSplit:
    """One split of windowed samples.

    Attributes
    ----------
    x:
        ``(S, T', N, 2)`` inputs — feature 0 is the scaled traffic value,
        feature 1 the normalised time of day.
    y:
        ``(S, T, N)`` targets in *original* units (metrics are computed in
        original units; models predict scaled values that the experiment
        runner inverse-transforms).
    start_index:
        ``(S,)`` index into the full series of each window's first target
        step — used to align predictions with difficult-interval masks.
    """

    x: np.ndarray
    y: np.ndarray
    start_index: np.ndarray

    @property
    def num_samples(self) -> int:
        return self.x.shape[0]


@dataclass
class SupervisedDataset:
    """Windowed dataset with its scalers and raw series."""

    train: SupervisedSplit
    val: SupervisedSplit
    test: SupervisedSplit
    scaler: StandardScaler
    time_scaler: MinMaxScaler
    series: np.ndarray        # (T_total, N) raw traffic values
    config: WindowConfig

    @property
    def num_nodes(self) -> int:
        return self.series.shape[1]


def make_windows(series: np.ndarray, time_of_day: np.ndarray,
                 config: WindowConfig | None = None,
                 null_value: float | None = 0.0,
                 day_of_week: np.ndarray | None = None) -> SupervisedDataset:
    """Build chronological train/val/test windows from a raw series.

    Parameters
    ----------
    series:
        ``(T_total, N)`` raw measurements (speed in mph or flow in veh/5min),
        with missing entries as ``null_value``.
    time_of_day:
        ``(T_total,)`` fraction of day in [0, 1).
    day_of_week:
        ``(T_total,)`` integers 0–6; required when
        ``config.include_day_of_week`` is set.
    """
    config = config or WindowConfig()
    series = np.asarray(series, dtype=float)
    time_of_day = np.asarray(time_of_day, dtype=float)
    if series.ndim != 2:
        raise ValueError(f"series must be (T, N), got shape {series.shape}")
    if len(time_of_day) != len(series):
        raise ValueError("time_of_day length must match series length")
    if config.include_day_of_week:
        if day_of_week is None:
            raise ValueError(
                "include_day_of_week requires the day_of_week array")
        day_of_week = np.asarray(day_of_week, dtype=float)
        if len(day_of_week) != len(series):
            raise ValueError("day_of_week length must match series length")
    total = len(series)
    window = config.history + config.horizon
    if total < window + 10:
        raise ValueError(
            f"series of length {total} too short for window {window}")

    train_end = int(total * config.train_ratio)
    val_end = int(total * (config.train_ratio + config.val_ratio))

    scaler = StandardScaler(null_value=null_value).fit(series[:train_end])
    time_scaler = MinMaxScaler().fit(time_of_day[:train_end])
    scaled = scaler.transform(series)
    scaled_time = time_scaler.transform(time_of_day)

    # All windows of every split are gathered from two sliding views over
    # the full series (no per-window Python loop); each split then just
    # fancy-indexes its rows.
    sliding = np.lib.stride_tricks.sliding_window_view
    hist_view = sliding(scaled, config.history, axis=0)       # (W, N, T')
    time_view = sliding(scaled_time, config.history)          # (W, T')
    future_view = sliding(series, config.horizon, axis=0)     # (W', N, T)
    if config.include_day_of_week:
        dow_view = sliding(day_of_week / 6.0, config.history)

    def build(start: int, end: int) -> SupervisedSplit:
        starts = np.arange(start, end - window + 1)
        if len(starts) == 0:
            raise ValueError(
                f"split [{start}, {end}) too short for window {window}")
        x_traffic = hist_view[starts].transpose(0, 2, 1)      # (S, T', N)
        features = [x_traffic,
                    np.broadcast_to(time_view[starts][:, :, None],
                                    x_traffic.shape)]
        if config.include_day_of_week:
            features.append(np.broadcast_to(dow_view[starts][:, :, None],
                                            x_traffic.shape))
        first_targets = starts + config.history
        ys = future_view[first_targets].transpose(0, 2, 1)    # (S, T, N)
        return SupervisedSplit(x=np.stack(features, axis=-1),
                               y=np.ascontiguousarray(ys),
                               start_index=first_targets)

    return SupervisedDataset(
        train=build(0, train_end),
        val=build(train_end, val_end),
        test=build(val_end, total),
        scaler=scaler, time_scaler=time_scaler,
        series=series, config=config)
