"""Sliding-window supervised dataset construction (paper Sec. IV-B, V).

The forecasting task maps T'=12 historical graph signals to the next T=12
signals.  Inputs carry two features per node and step — the z-scored traffic
value and the min-max normalised time of day — exactly the preprocessing
described in the paper.  Splits are chronological at a 7:1:2 ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .scalers import MinMaxScaler, StandardScaler

__all__ = ["WindowConfig", "SupervisedSplit", "SupervisedDataset", "make_windows"]


@dataclass
class WindowConfig:
    history: int = 12        # T'
    horizon: int = 12        # T
    train_ratio: float = 0.7
    val_ratio: float = 0.1   # test gets the remainder (0.2)
    # Optional third input feature (day-of-week / 6), as used by GMAN's
    # original temporal embedding; the paper's protocol uses two features.
    include_day_of_week: bool = False


@dataclass
class SupervisedSplit:
    """One split of windowed samples.

    Attributes
    ----------
    x:
        ``(S, T', N, 2)`` inputs — feature 0 is the scaled traffic value,
        feature 1 the normalised time of day.
    y:
        ``(S, T, N)`` targets in *original* units (metrics are computed in
        original units; models predict scaled values that the experiment
        runner inverse-transforms).
    start_index:
        ``(S,)`` index into the full series of each window's first target
        step — used to align predictions with difficult-interval masks.
    """

    x: np.ndarray
    y: np.ndarray
    start_index: np.ndarray

    @property
    def num_samples(self) -> int:
        return self.x.shape[0]


@dataclass
class SupervisedDataset:
    """Windowed dataset with its scalers and raw series."""

    train: SupervisedSplit
    val: SupervisedSplit
    test: SupervisedSplit
    scaler: StandardScaler
    time_scaler: MinMaxScaler
    series: np.ndarray        # (T_total, N) raw traffic values
    config: WindowConfig

    @property
    def num_nodes(self) -> int:
        return self.series.shape[1]


def make_windows(series: np.ndarray, time_of_day: np.ndarray,
                 config: WindowConfig | None = None,
                 null_value: float | None = 0.0,
                 day_of_week: np.ndarray | None = None) -> SupervisedDataset:
    """Build chronological train/val/test windows from a raw series.

    Parameters
    ----------
    series:
        ``(T_total, N)`` raw measurements (speed in mph or flow in veh/5min),
        with missing entries as ``null_value``.
    time_of_day:
        ``(T_total,)`` fraction of day in [0, 1).
    day_of_week:
        ``(T_total,)`` integers 0–6; required when
        ``config.include_day_of_week`` is set.
    """
    config = config or WindowConfig()
    series = np.asarray(series, dtype=float)
    time_of_day = np.asarray(time_of_day, dtype=float)
    if series.ndim != 2:
        raise ValueError(f"series must be (T, N), got shape {series.shape}")
    if len(time_of_day) != len(series):
        raise ValueError("time_of_day length must match series length")
    if config.include_day_of_week:
        if day_of_week is None:
            raise ValueError(
                "include_day_of_week requires the day_of_week array")
        day_of_week = np.asarray(day_of_week, dtype=float)
        if len(day_of_week) != len(series):
            raise ValueError("day_of_week length must match series length")
    total = len(series)
    window = config.history + config.horizon
    if total < window + 10:
        raise ValueError(
            f"series of length {total} too short for window {window}")

    train_end = int(total * config.train_ratio)
    val_end = int(total * (config.train_ratio + config.val_ratio))

    scaler = StandardScaler(null_value=null_value).fit(series[:train_end])
    time_scaler = MinMaxScaler().fit(time_of_day[:train_end])
    scaled = scaler.transform(series)
    scaled_time = time_scaler.transform(time_of_day)

    def build(start: int, end: int) -> SupervisedSplit:
        starts = np.arange(start, end - window + 1)
        if len(starts) == 0:
            raise ValueError(
                f"split [{start}, {end}) too short for window {window}")
        xs, ys, first_targets = [], [], []
        for s in starts:
            hist = slice(s, s + config.history)
            fut = slice(s + config.history, s + window)
            x_traffic = scaled[hist]                       # (T', N)
            x_time = np.broadcast_to(scaled_time[hist][:, None],
                                     x_traffic.shape)
            features = [x_traffic, x_time]
            if config.include_day_of_week:
                x_dow = np.broadcast_to(
                    (day_of_week[hist] / 6.0)[:, None], x_traffic.shape)
                features.append(x_dow)
            xs.append(np.stack(features, axis=-1))
            ys.append(series[fut])
            first_targets.append(s + config.history)
        return SupervisedSplit(x=np.array(xs), y=np.array(ys),
                               start_index=np.array(first_targets))

    return SupervisedDataset(
        train=build(0, train_end),
        val=build(train_end, val_end),
        test=build(val_end, total),
        scaler=scaler, time_scaler=time_scaler,
        series=series, config=config)
