"""Synthetic PeMS-style datasets: simulator, catalog, windows, loaders."""

from .catalog import (DATASETS, FLOW_DATASETS, SPEED_DATASETS, DatasetSpec,
                      LoadedDataset, dataset_names, load_dataset)
from .imputation import (impute_forward_fill, impute_historical_mean,
                         impute_linear)
from .io import load_saved_dataset, save_dataset
from .fundamental import density_from_speed, flow_from_density, speed_from_density
from .generator import (STEPS_PER_DAY, STEPS_PER_HOUR, SimulationConfig,
                        SimulationResult, TrafficSimulator)
from .loader import DataLoader
from .scalers import MinMaxScaler, StandardScaler
from .windows import (SupervisedDataset, SupervisedSplit, WindowConfig,
                      make_windows)

__all__ = [
    "DatasetSpec", "LoadedDataset", "DATASETS", "SPEED_DATASETS",
    "FLOW_DATASETS", "dataset_names", "load_dataset",
    "SimulationConfig", "SimulationResult", "TrafficSimulator",
    "STEPS_PER_DAY", "STEPS_PER_HOUR",
    "speed_from_density", "flow_from_density", "density_from_speed",
    "WindowConfig", "SupervisedDataset", "SupervisedSplit", "make_windows",
    "StandardScaler", "MinMaxScaler", "DataLoader",
    "save_dataset", "load_saved_dataset",
    "impute_forward_fill", "impute_linear", "impute_historical_mean",
]
