"""Synthetic PeMS-style datasets: simulator, catalog, lazy windows,
loaders, and the content-addressed world cache."""

from .cache import (CACHE_FORMAT_VERSION, CacheEntry, DatasetCache,
                    cache_enabled, dataset_cache_key, default_cache_dir)
from .catalog import (DATASETS, FLOW_DATASETS, SPEED_DATASETS, DatasetSpec,
                      LoadedDataset, dataset_names, load_dataset)
from .imputation import (impute_forward_fill, impute_historical_mean,
                         impute_linear)
from .io import load_saved_dataset, save_dataset
from .fundamental import density_from_speed, flow_from_density, speed_from_density
from .generator import (STEPS_PER_DAY, STEPS_PER_HOUR, SimulationConfig,
                        SimulationResult, TrafficSimulator)
from .loader import DataLoader
from .scalers import MinMaxScaler, StandardScaler
from .windows import (SupervisedDataset, SupervisedSplit, WindowConfig,
                      WindowSource, make_windows, reference_pipeline_enabled,
                      use_reference_pipeline)

__all__ = [
    "DatasetSpec", "LoadedDataset", "DATASETS", "SPEED_DATASETS",
    "FLOW_DATASETS", "dataset_names", "load_dataset",
    "SimulationConfig", "SimulationResult", "TrafficSimulator",
    "STEPS_PER_DAY", "STEPS_PER_HOUR",
    "speed_from_density", "flow_from_density", "density_from_speed",
    "WindowConfig", "WindowSource", "SupervisedDataset", "SupervisedSplit",
    "make_windows", "use_reference_pipeline", "reference_pipeline_enabled",
    "StandardScaler", "MinMaxScaler", "DataLoader",
    "save_dataset", "load_saved_dataset",
    "DatasetCache", "CacheEntry", "dataset_cache_key", "default_cache_dir",
    "cache_enabled", "CACHE_FORMAT_VERSION",
    "impute_forward_fill", "impute_linear", "impute_historical_mean",
]
