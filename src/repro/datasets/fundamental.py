"""Speed–flow relations (Greenshields fundamental diagram).

The flow datasets in the paper (PeMSD3/4/7/8) measure vehicle counts; the
speed datasets (METR-LA, PeMS-BAY, PeMSD7(M)) measure velocities.  Both are
projections of the same traffic state.  The simulator tracks a normalised
density ``x = k / k_jam`` per sensor and derives:

- speed: ``v = v_f * (1 - x)`` (Greenshields linear speed–density)
- flow:  ``q = q_max * 4x(1 - x)`` (the resulting parabolic flow–density)

so the correlation-but-not-identity between speed and flow noted in the
paper's Sec. VI ("speed and flow are correlated but do not have exactly the
same tendencies", citing the Highway Capacity Manual) emerges naturally:
flow *rises* with density until capacity then falls, while speed falls
monotonically.
"""

from __future__ import annotations

import numpy as np

__all__ = ["speed_from_density", "flow_from_density", "density_from_speed"]


def speed_from_density(density: np.ndarray, free_flow_speed: np.ndarray) -> np.ndarray:
    """Greenshields speed: ``v = v_f (1 - x)`` with x clipped to [0, 0.95]."""
    x = np.clip(density, 0.0, 0.95)
    return free_flow_speed * (1.0 - x)


def flow_from_density(density: np.ndarray, capacity: np.ndarray) -> np.ndarray:
    """Parabolic flow: ``q = q_max 4x(1-x)``, peaking at x = 1/2."""
    x = np.clip(density, 0.0, 1.0)
    return capacity * 4.0 * x * (1.0 - x)


def density_from_speed(speed: np.ndarray, free_flow_speed: np.ndarray) -> np.ndarray:
    """Invert Greenshields: ``x = 1 - v / v_f``."""
    ratio = np.clip(speed / np.maximum(free_flow_speed, 1e-9), 0.0, 1.0)
    return 1.0 - ratio
