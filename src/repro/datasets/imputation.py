"""Missing-data imputation (extension).

PeMS pipelines typically impute short detector gaps before training; the
benchmark's masked-loss protocol instead ignores missing targets, but
imputing *inputs* can still help (a zero travelling through a graph conv is
a false "gridlock" signal).  Three standard imputers are provided; all
treat ``null_value`` entries (0, PeMS convention) as missing and leave the
rest untouched.
"""

from __future__ import annotations

import numpy as np

__all__ = ["impute_forward_fill", "impute_linear", "impute_historical_mean"]


def _missing_mask(series: np.ndarray, null_value: float) -> np.ndarray:
    return np.isclose(series, null_value)


def impute_forward_fill(series: np.ndarray, null_value: float = 0.0
                        ) -> np.ndarray:
    """Repeat the last valid reading; leading gaps backfill from the first
    valid reading; all-missing sensors stay as-is."""
    series = np.array(series, dtype=float, copy=True)
    missing = _missing_mask(series, null_value)
    total, nodes = series.shape
    for node in range(nodes):
        column = series[:, node]
        gaps = missing[:, node]
        if gaps.all() or not gaps.any():
            continue
        valid_index = np.where(~gaps, np.arange(total), -1)
        last_valid = np.maximum.accumulate(valid_index)
        first_valid = int(np.argmax(~gaps))
        filled = np.where(last_valid >= 0, column[np.maximum(last_valid, 0)],
                          column[first_valid])
        series[:, node] = np.where(gaps, filled, column)
    return series


def impute_linear(series: np.ndarray, null_value: float = 0.0) -> np.ndarray:
    """Linear interpolation across gaps (endpoints extended flat)."""
    series = np.array(series, dtype=float, copy=True)
    missing = _missing_mask(series, null_value)
    total = len(series)
    positions = np.arange(total)
    for node in range(series.shape[1]):
        gaps = missing[:, node]
        if gaps.all() or not gaps.any():
            continue
        valid = ~gaps
        series[gaps, node] = np.interp(positions[gaps], positions[valid],
                                       series[valid, node])
    return series


def impute_historical_mean(series: np.ndarray, time_of_day: np.ndarray,
                           null_value: float = 0.0,
                           steps_per_day: int = 288) -> np.ndarray:
    """Fill gaps with each sensor's mean at the same time-of-day slot.

    Slots with no valid observation anywhere fall back to the sensor's
    global mean.
    """
    series = np.array(series, dtype=float, copy=True)
    missing = _missing_mask(series, null_value)
    slots = np.round(np.asarray(time_of_day) * steps_per_day).astype(int)
    slots = slots % steps_per_day
    for node in range(series.shape[1]):
        gaps = missing[:, node]
        if gaps.all() or not gaps.any():
            continue
        valid = ~gaps
        column = series[:, node]
        global_mean = column[valid].mean()
        slot_sums = np.bincount(slots[valid], weights=column[valid],
                                minlength=steps_per_day)
        slot_counts = np.bincount(slots[valid], minlength=steps_per_day)
        slot_means = np.where(slot_counts > 0,
                              slot_sums / np.maximum(slot_counts, 1),
                              global_mean)
        series[gaps, node] = slot_means[slots[gaps]]
    return series
