"""repro — reproduction of "An Empirical Experiment on Deep Learning Models
for Predicting Traffic Data" (Lee et al., ICDE 2021).

Subpackages
-----------
- :mod:`repro.nn` — numpy autograd deep-learning framework (the PyTorch
  substitute; see DESIGN.md).
- :mod:`repro.graph` — road networks, Gaussian-kernel adjacency, Laplacian
  and diffusion operators.
- :mod:`repro.datasets` — traffic simulator and the seven synthetic
  PeMS-style datasets of Table I.
- :mod:`repro.models` — the eight benchmark models + baselines.
- :mod:`repro.core` — the benchmark harness: metrics, difficult-interval
  extraction, experiment runner, and paper-style reports.
- :mod:`repro.train` — the unified training engine: one callback-driven
  epoch/batch loop (grad clip, LR schedule, early stop, checkpoints,
  telemetry) behind every training entry point (see ``docs/training.md``).
- :mod:`repro.obs` — experiment telemetry: typed events + pluggable sinks
  (console/JSONL/memory), ``run.json`` manifests, trace summaries (see
  ``docs/observability.md``).

Quickstart
----------
>>> from repro import load_dataset, run_experiment, TrainingConfig
>>> data = load_dataset("metr-la", scale="ci")
>>> result = run_experiment("graph-wavenet", data,
...                         TrainingConfig(epochs=2), seed=0)
>>> result.evaluation.full[15].mae    # doctest: +SKIP
"""

from . import core, datasets, graph, models, nn, obs, train
from .core import (TrainingConfig, aggregate_runs, evaluate_model,
                   run_experiment, train_model)
from .datasets import load_dataset
from .models import PAPER_MODELS, create_model, model_names

__version__ = "1.0.0"

__all__ = [
    "nn", "graph", "datasets", "models", "core", "obs", "train",
    "load_dataset", "create_model", "model_names", "PAPER_MODELS",
    "TrainingConfig", "run_experiment", "train_model", "evaluate_model",
    "aggregate_runs", "__version__",
]
