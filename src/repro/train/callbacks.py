"""Callbacks for the training :class:`~repro.train.engine.Engine`.

Everything that used to be inlined in ``train_model`` — gradient clipping,
LR scheduling, telemetry emission, early stopping with best-state restore
— is a small callback object hooked into the engine's epoch/batch loop.
The default stack (:func:`default_callbacks`) reproduces the legacy
``train_model`` behaviour exactly, event for event; extra callbacks (e.g.
:class:`CheckpointCallback`) compose on top without touching the loop.

Hook order within one epoch::

    on_fit_start
      on_epoch_start
        on_after_backward        # per batch, between backward() and step()
        on_batch_end             # per batch, after step()
      on_epoch_train_end         # after the batch loop, before validation
      on_epoch_end               # after validation MAE is known
    on_fit_end

Callbacks run in list order at every hook; the default stack keeps
telemetry ahead of early stopping so the ``epoch_end`` event is published
before any stop decision, matching the legacy loop.
"""

from __future__ import annotations

import typing

from ..nn.checkpoint import save_checkpoint
from ..nn.optim import (CosineAnnealingLR, ExponentialLR, StepLR,
                        clip_grad_norm)
from ..obs.events import BatchEnd, EpochEnd, GradClip, bus_scope
from ..obs.stats import get_registry

if typing.TYPE_CHECKING:                                 # pragma: no cover
    from .engine import EngineState

__all__ = ["Callback", "GradClipCallback", "LRScheduleCallback",
           "TelemetryCallback", "EarlyStoppingCallback",
           "CheckpointCallback", "default_callbacks"]


class Callback:
    """Base class: every hook is a no-op; override what you need."""

    def on_fit_start(self, state: "EngineState") -> None: ...

    def on_epoch_start(self, state: "EngineState") -> None: ...

    def on_after_backward(self, state: "EngineState") -> None: ...

    def on_batch_end(self, state: "EngineState") -> None: ...

    def on_epoch_train_end(self, state: "EngineState") -> None: ...

    def on_epoch_end(self, state: "EngineState") -> None: ...

    def on_fit_end(self, state: "EngineState") -> None: ...


class GradClipCallback(Callback):
    """Global-L2 gradient clipping after every backward pass.

    Emits a ``grad_clip`` telemetry event only when clipping actually
    rescaled the gradients (pre-clip norm exceeded ``max_norm``); batches
    whose gradients were already inside the ball stay silent.  The
    ambient metrics registry counts every check
    (``train/grad_clip_checks``) and every rescale
    (``train/grad_clip_steps``) — their ratio is the clip rate.
    """

    def __init__(self, max_norm: float | None):
        self.max_norm = max_norm

    def on_after_backward(self, state: "EngineState") -> None:
        if not self.max_norm:
            return
        registry = get_registry()
        registry.counter("train/grad_clip_checks").inc()
        target = (state.optimizer.arena if state.optimizer.arena is not None
                  else state.optimizer.parameters)
        norm = clip_grad_norm(target, self.max_norm)
        state.grad_norm = norm
        if norm > self.max_norm:
            registry.counter("train/grad_clip_steps").inc()
            state.bus.emit(GradClip(epoch=state.epoch + 1,
                                    batch=state.batch + 1,
                                    norm=norm, max_norm=self.max_norm))


class LRScheduleCallback(Callback):
    """Optional per-epoch LR decay (``step``/``exponential``/``cosine``).

    The scheduler is built at fit start (so ``base_lr`` is the optimizer's
    initial rate) and stepped after each epoch's batch loop, before
    validation — the same point the legacy loop stepped it.
    """

    def __init__(self, schedule: str | None):
        self.schedule = schedule

    def on_fit_start(self, state: "EngineState") -> None:
        state.scheduler = self._build(state)

    def on_epoch_train_end(self, state: "EngineState") -> None:
        if state.scheduler is not None:
            state.scheduler.step()

    def _build(self, state: "EngineState"):
        config = state.config
        if self.schedule is None:
            return None
        if self.schedule == "step":
            return StepLR(state.optimizer,
                          step_size=max(1, config.epochs // 3), gamma=0.3)
        if self.schedule == "exponential":
            return ExponentialLR(state.optimizer, gamma=0.9)
        if self.schedule == "cosine":
            return CosineAnnealingLR(state.optimizer,
                                     t_max=max(1, config.epochs))
        raise ValueError(f"unknown lr_schedule {self.schedule!r}; "
                         "choose step, exponential, or cosine")


class TelemetryCallback(Callback):
    """Publish ``batch_end`` / ``epoch_end`` events to the engine's bus."""

    def on_batch_end(self, state: "EngineState") -> None:
        state.bus.emit(BatchEnd(epoch=state.epoch + 1,
                                batch=state.batch + 1,
                                loss=state.batch_loss))

    def on_epoch_end(self, state: "EngineState") -> None:
        state.bus.emit(EpochEnd(epoch=state.epoch + 1,
                                total_epochs=state.config.epochs,
                                train_loss=state.history.train_losses[-1],
                                val_mae=state.val_mae,
                                seconds=state.history.epoch_seconds[-1]))


class EarlyStoppingCallback(Callback):
    """Track the best validation MAE; stop after ``patience`` bad epochs.

    Snapshots the model state dict at every improvement and restores the
    best snapshot at fit end (weights only — the optimizer's learning rate
    and scheduler position are deliberately left where training ended, so
    a restore never resurrects a pre-schedule LR).  ``patience=None``
    disables stopping but keeps best-state tracking/restore, exactly like
    the legacy loop.
    """

    def __init__(self, patience: int | None):
        self.patience = patience
        self.best_val = float("inf")
        self.best_state = None
        self.bad_epochs = 0

    def on_fit_start(self, state: "EngineState") -> None:
        self.best_val = float("inf")
        self.best_state = None
        self.bad_epochs = 0

    def on_epoch_end(self, state: "EngineState") -> None:
        if state.val_mae < self.best_val:
            self.best_val = state.val_mae
            self.best_state = state.model.state_dict()
            state.history.best_epoch = state.epoch
            self.bad_epochs = 0
        else:
            self.bad_epochs += 1
            if self.patience is not None and self.bad_epochs > self.patience:
                state.stop = True

    def on_fit_end(self, state: "EngineState") -> None:
        if self.best_state is not None:
            state.model.load_state_dict(self.best_state)


class CheckpointCallback(Callback):
    """Write a training checkpoint every ``every`` epochs.

    The checkpoint bundles model + optimizer state (see
    :mod:`repro.nn.checkpoint`) and metadata recording the completed epoch
    count, the scheduler position, and the epoch's validation MAE — enough
    for ``Engine.fit(..., resume_from=path)`` to continue the run with the
    LR schedule picking up from the restored step count.
    """

    def __init__(self, path, every: int = 1, save_optimizer: bool = True):
        self.path = path
        self.every = max(1, int(every))
        self.save_optimizer = save_optimizer

    def on_epoch_end(self, state: "EngineState") -> None:
        if (state.epoch + 1) % self.every:
            return
        metadata = {"epoch": state.epoch + 1, "val_mae": state.val_mae}
        if state.scheduler is not None:
            metadata["scheduler_epoch"] = state.scheduler.epoch
        optimizer = state.optimizer if self.save_optimizer else None
        with bus_scope(state.bus):
            save_checkpoint(self.path, state.model, optimizer, metadata)


def default_callbacks(config) -> list[Callback]:
    """The stack reproducing legacy ``train_model`` behaviour verbatim."""
    return [
        GradClipCallback(config.grad_clip),
        LRScheduleCallback(config.lr_schedule),
        TelemetryCallback(),
        EarlyStoppingCallback(config.patience),
    ]
