"""`repro.train` — the unified training engine and its callback protocol.

One :class:`Engine` owns the epoch/batch loop for every training entry
point in the benchmark (``train_model``, ``run_experiment``, rolling-origin
cross-validation, sweeps, the benchmark matrix).  Cross-cutting concerns —
gradient clipping, LR scheduling, telemetry, early stopping with
best-state restore, checkpointing — are :class:`Callback` objects hooked
into the loop; the default stack reproduces the legacy ``train_model``
behaviour byte-for-byte (see ``docs/training.md``).

Quickstart::

    from repro.train import Engine, CheckpointCallback, default_callbacks

    engine = Engine(config)
    history = engine.fit(model, dataset, seed=0)

    # checkpoint every epoch, resume later
    callbacks = default_callbacks(config) + [CheckpointCallback("run.npz")]
    Engine(config, callbacks).fit(model, dataset, resume_from="run.npz")
"""

from .callbacks import (Callback, CheckpointCallback, EarlyStoppingCallback,
                        GradClipCallback, LRScheduleCallback,
                        TelemetryCallback, default_callbacks)
from .engine import Engine, EngineState

__all__ = [
    "Engine", "EngineState",
    "Callback", "GradClipCallback", "LRScheduleCallback",
    "TelemetryCallback", "EarlyStoppingCallback", "CheckpointCallback",
    "default_callbacks",
]
