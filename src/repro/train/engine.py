"""The unified training engine behind ``train_model`` and the harness.

:class:`Engine` owns the epoch/batch loop that every training entry point
(:func:`repro.core.train_model`, :func:`repro.core.run_experiment`,
rolling-origin cross-validation, hyper-parameter sweeps, the benchmark
matrix) routes through.  The loop itself is deliberately small: compute
the loss, backward, step — everything else (gradient clipping, LR
scheduling, telemetry, early stopping, checkpointing) is a
:class:`~repro.train.callbacks.Callback` hooked into well-defined points.

The engine trains on a flat parameter arena
(:meth:`repro.nn.Module.flatten_parameters`), so the default Adam
optimizer takes the fused single-array update path and gradient clipping
is one reduction over the flat gradient buffer.  Console and telemetry
output are byte-identical to the legacy ``train_model`` loop — the
parity is asserted by tests.

Baselines whose ``training_loss`` is not differentiable are detected with
a one-sample probe *before* the epoch loop, so skipping them leaves no
partial epoch state and no stale ``train()`` mode behind.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.experiment import TrainingConfig, TrainingHistory, predict
from ..core.metrics import mae
from ..datasets.loader import DataLoader
from ..nn.checkpoint import load_checkpoint
from ..nn.optim import Adam
from ..nn.tensor import Tensor
from ..obs.events import ConsoleSink, EventBus, bus_scope, get_bus
from ..obs.spans import span
from ..obs.stats import get_registry
from .callbacks import Callback, default_callbacks

__all__ = ["Engine", "EngineState"]


@dataclass
class EngineState:
    """Mutable loop state shared with every callback during one fit."""

    model: object
    dataset: object
    config: TrainingConfig
    optimizer: object
    history: TrainingHistory
    bus: EventBus
    scheduler: object | None = None
    epoch: int = 0                  # 0-based index of the current epoch
    batch: int = 0                  # 0-based index of the current batch
    batch_loss: float = 0.0         # loss of the batch just stepped
    val_mae: float = field(default=float("inf"))
    grad_norm: float = 0.0          # pre-clip norm of the last batch
    start_epoch: int = 0            # first epoch index (>0 when resumed)
    stop: bool = False              # callbacks set this to end the fit


def _default_optimizer(model, config: TrainingConfig):
    """Adam over the model's flat parameter arena (fused update path)."""
    return Adam(model.flatten_parameters(), lr=config.learning_rate,
                weight_decay=config.weight_decay)


class Engine:
    """Callback-driven training loop over a model + dataset.

    Parameters
    ----------
    config:
        Shared :class:`~repro.core.TrainingConfig`; ``None`` means
        defaults.
    callbacks:
        Callback stack for every fit; ``None`` builds
        :func:`~repro.train.callbacks.default_callbacks` (clipping,
        LR schedule, telemetry, early stopping) per fit, which reproduces
        legacy ``train_model`` behaviour exactly.
    optimizer_factory:
        ``(model, config) -> Optimizer`` override; the default flattens
        the model's parameters into an arena and builds a fused Adam.
    """

    def __init__(self, config: TrainingConfig | None = None,
                 callbacks: list[Callback] | None = None,
                 optimizer_factory=None):
        self.config = config or TrainingConfig()
        self.callbacks = callbacks
        self.optimizer_factory = optimizer_factory or _default_optimizer

    # ------------------------------------------------------------------ #
    def fit(self, model, dataset, seed: int = 0,
            bus: EventBus | None = None,
            resume_from=None) -> TrainingHistory:
        """Train ``model`` in place; returns the training history.

        Telemetry goes to ``bus`` or the ambient bus;
        ``config.verbose=True`` attaches a console sink limited to epoch
        lines for the duration.  ``resume_from`` restores a checkpoint
        written by :class:`~repro.train.callbacks.CheckpointCallback`
        (model, optimizer, and scheduler position) and continues from the
        recorded epoch.
        """
        config = self.config
        bus = bus if bus is not None else get_bus()
        history = TrainingHistory()
        if not model.parameters():
            return history                  # parameter-free baseline
        if not self._trainable(model, dataset):
            return history                  # constant training_loss

        optimizer = self.optimizer_factory(model, config)
        callbacks = (list(self.callbacks) if self.callbacks is not None
                     else default_callbacks(config))
        state = EngineState(model=model, dataset=dataset, config=config,
                            optimizer=optimizer, history=history, bus=bus)
        self._dispatch(callbacks, "on_fit_start", state)
        if resume_from is not None:
            self._resume(state, resume_from)

        if (config.max_batches_per_epoch is not None
                and config.max_batches_per_epoch <= 0):
            raise ValueError(
                f"max_batches_per_epoch must be >= 1 (got "
                f"{config.max_batches_per_epoch}); every epoch needs at "
                "least one optimisation step")
        # The target transform is hoisted out of the epoch loop: the loader
        # yields targets already in scaled units (a lazy split gathers them
        # from the pre-scaled series, an eager split transforms its target
        # array once) — targets are static across epochs.
        loader = DataLoader(dataset.supervised.train,
                            batch_size=config.batch_size,
                            shuffle=True, seed=seed,
                            target_scaler=dataset.supervised.scaler)

        registry = get_registry()
        batch_hist = registry.histogram("train/batch_seconds")
        batch_counter = registry.counter("train/batches")

        with contextlib.ExitStack() as stack:
            # Nested instrumentation (loader gathers, kernel spans,
            # validation predicts, checkpoint announcements) reaches the
            # fit's bus even though those layers take no bus argument.
            stack.enter_context(bus_scope(bus))
            if config.verbose:
                stack.enter_context(
                    bus.scoped(ConsoleSink(kinds=("epoch_end",))))
            stack.enter_context(span(
                "train/fit", bus=bus, model=type(model).__name__,
                epochs=config.epochs, batch_size=config.batch_size))
            for epoch in range(state.start_epoch, config.epochs):
                state.epoch = epoch
                with span("train/epoch", bus=bus, epoch=epoch + 1):
                    model.train()
                    self._dispatch(callbacks, "on_epoch_start", state)
                    epoch_losses = []
                    start = time.perf_counter()
                    for batch_index, (x, y_scaled, _) in enumerate(loader):
                        if (config.max_batches_per_epoch is not None
                                and batch_index
                                >= config.max_batches_per_epoch):
                            break
                        state.batch = batch_index
                        batch_start = time.perf_counter()
                        with span("train/batch", bus=bus,
                                  batch=batch_index + 1, size=len(x)):
                            with span("train/forward", bus=bus):
                                loss = model.training_loss(Tensor(x),
                                                           Tensor(y_scaled))
                            optimizer.zero_grad()
                            # Each batch builds a fresh tape, so release
                            # this one eagerly — cuts peak RSS on the deep
                            # recurrent models.
                            with span("train/backward", bus=bus):
                                loss.backward(free_graph=True)
                            self._dispatch(callbacks, "on_after_backward",
                                           state)
                            with span("train/optim", bus=bus):
                                optimizer.step()
                        batch_hist.observe(time.perf_counter() - batch_start)
                        batch_counter.inc()
                        state.batch_loss = loss.item()
                        epoch_losses.append(state.batch_loss)
                        self._dispatch(callbacks, "on_batch_end", state)
                    if not epoch_losses:
                        raise RuntimeError(
                            f"epoch {epoch} produced no training batches "
                            f"({dataset.supervised.train.num_samples} "
                            f"samples, batch_size={config.batch_size}); the "
                            "mean train loss would be NaN — use a larger "
                            "split or a smaller batch size")
                    history.epoch_seconds.append(time.perf_counter() - start)
                    history.train_losses.append(float(np.mean(epoch_losses)))
                    self._dispatch(callbacks, "on_epoch_train_end", state)

                    with span("train/validate", bus=bus, epoch=epoch + 1):
                        val_prediction, _ = predict(
                            model, dataset.supervised.val,
                            dataset.supervised.scaler,
                            config.eval_batch_size)
                    state.val_mae = mae(val_prediction,
                                        dataset.supervised.val.y)
                    history.val_maes.append(state.val_mae)
                    self._dispatch(callbacks, "on_epoch_end", state)
                if state.stop:
                    break

        self._dispatch(callbacks, "on_fit_end", state)
        return history

    # ------------------------------------------------------------------ #
    @staticmethod
    def _dispatch(callbacks, hook: str, state: EngineState) -> None:
        for callback in callbacks:
            getattr(callback, hook)(state)

    @staticmethod
    def _trainable(model, dataset) -> bool:
        """One-sample probe: is ``training_loss`` differentiable?

        Runs before the epoch loop (and before any mode flip), so
        untrainable baselines are skipped without leaving a half-finished
        epoch or a stale ``train()`` mode behind.
        """
        split = dataset.supervised.train
        if split.num_samples == 0:
            return True
        x, y_scaled, _ = split.batch(
            np.arange(1), target_scaler=dataset.supervised.scaler)
        return bool(model.training_loss(Tensor(x),
                                        Tensor(y_scaled)).requires_grad)

    @staticmethod
    def _resume(state: EngineState, path) -> None:
        """Restore model/optimizer/scheduler from a checkpoint."""
        metadata = load_checkpoint(path, state.model, state.optimizer)
        state.start_epoch = int(metadata.get("epoch", 0))
        scheduler_epoch = metadata.get("scheduler_epoch")
        if state.scheduler is not None and scheduler_epoch is not None:
            # The checkpoint's optimizer lr already reflects the schedule;
            # realign the scheduler's counter so the next step() continues
            # the decay from the restored position instead of restarting.
            state.scheduler.epoch = int(scheduler_epoch)
