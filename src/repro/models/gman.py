"""GMAN (Zheng et al., AAAI 2020) — graph multi-attention network.

GMAN is pure attention: a spatio-temporal embedding (a learned node
embedding standing in for node2vec, fused with a time-of-day embedding)
conditions every block.  Encoder blocks run *spatial attention* (across
sensors) and *temporal attention* (across steps) in parallel and merge them
with a gated fusion; a *transform attention* bridges the encoder's T'
historical representations to the T future steps by attending with the
future time embeddings as queries — this direct one-shot long-horizon
decoding is why the paper finds GMAN strongest at 60-minute predictions.

The original's grouped (random-partition) spatial attention is a memory
optimisation for 300+ sensors; at reproduction scale full attention is
exact and equivalent.
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn.layers import Embedding, Linear, MultiHeadAttention
from ..nn.module import Module, ModuleList, Parameter
from ..nn.tensor import Tensor
from .base import TrafficModel, register_model

__all__ = ["GMAN", "GatedFusion", "STAttentionBlock", "TransformAttention"]

_TIME_SLOTS = 288   # 5-minute slots per day


class GatedFusion(Module):
    """H = z ⊙ H_spatial + (1-z) ⊙ H_temporal with learned gate z."""

    def __init__(self, d_model: int, *, rng: np.random.Generator):
        super().__init__()
        self.fc_spatial = Linear(d_model, d_model, bias=False, rng=rng)
        self.fc_temporal = Linear(d_model, d_model, rng=rng)
        self.fc_out = Linear(d_model, d_model, rng=rng)

    def forward(self, h_spatial: Tensor, h_temporal: Tensor) -> Tensor:
        gate = (self.fc_spatial(h_spatial) + self.fc_temporal(h_temporal)).sigmoid()
        fused = gate * h_spatial + (1.0 - gate) * h_temporal
        return self.fc_out(fused).relu()


class STAttentionBlock(Module):
    """Parallel spatial + temporal attention with gated fusion and residual.

    Input ``(B, T, N, D)``; the ST embedding (same shape) is added to the
    attention inputs, conditioning attention on where/when.
    """

    def __init__(self, d_model: int, num_heads: int, *, rng: np.random.Generator):
        super().__init__()
        self.spatial = MultiHeadAttention(d_model, num_heads, rng=rng)
        self.temporal = MultiHeadAttention(d_model, num_heads, rng=rng)
        self.fusion = GatedFusion(d_model, rng=rng)

    def forward(self, x: Tensor, ste: Tensor) -> Tensor:
        batch, steps, nodes, dim = x.shape
        conditioned = x + ste
        # Spatial attention: across nodes, independently per (batch, step).
        flat_s = conditioned.reshape(batch * steps, nodes, dim)
        h_spatial = self.spatial(flat_s, flat_s, flat_s)
        h_spatial = h_spatial.reshape(batch, steps, nodes, dim)
        # Temporal attention: across steps, independently per (batch, node).
        seq = conditioned.transpose(0, 2, 1, 3).reshape(batch * nodes, steps, dim)
        h_temporal = self.temporal(seq, seq, seq)
        h_temporal = (h_temporal.reshape(batch, nodes, steps, dim)
                      .transpose(0, 2, 1, 3))
        return x + self.fusion(h_spatial, h_temporal)


class TransformAttention(Module):
    """Attend from future ST embeddings (queries) to historical states."""

    def __init__(self, d_model: int, num_heads: int, *, rng: np.random.Generator):
        super().__init__()
        self.attention = MultiHeadAttention(d_model, num_heads, rng=rng)

    def forward(self, x: Tensor, ste_history: Tensor, ste_future: Tensor) -> Tensor:
        batch, steps_in, nodes, dim = x.shape
        steps_out = ste_future.shape[1]
        query = (ste_future.transpose(0, 2, 1, 3)
                 .reshape(batch * nodes, steps_out, dim))
        key = (ste_history.transpose(0, 2, 1, 3)
               .reshape(batch * nodes, steps_in, dim))
        value = (x.transpose(0, 2, 1, 3)
                 .reshape(batch * nodes, steps_in, dim))
        out = self.attention(query, key, value)
        return (out.reshape(batch, nodes, steps_out, dim)
                .transpose(0, 2, 1, 3))


@register_model("gman")
class GMAN(TrafficModel):
    """Graph Multi-Attention Network."""

    def __init__(self, num_nodes: int, adjacency: np.ndarray,
                 history: int = 12, horizon: int = 12, in_features: int = 2,
                 seed: int = 0, d_model: int = 16, num_heads: int = 2,
                 num_blocks: int = 1):
        super().__init__(num_nodes, adjacency, history, horizon, in_features, seed)
        rng = np.random.default_rng(seed)
        self.d_model = d_model
        # Learned node embedding replaces the paper's node2vec vectors.
        self.node_embedding = Parameter(rng.normal(0, 0.1, (num_nodes, d_model)))
        self.time_embedding = Embedding(_TIME_SLOTS, d_model, rng=rng)
        self.fc_se = Linear(d_model, d_model, rng=rng)
        self.fc_te = Linear(d_model, d_model, rng=rng)
        self.input_proj = Linear(1, d_model, rng=rng)
        self.encoder = ModuleList(
            [STAttentionBlock(d_model, num_heads, rng=rng)
             for _ in range(num_blocks)])
        self.transform = TransformAttention(d_model, num_heads, rng=rng)
        self.decoder = ModuleList(
            [STAttentionBlock(d_model, num_heads, rng=rng)
             for _ in range(num_blocks)])
        self.output_fc1 = Linear(d_model, d_model, rng=rng)
        self.output_fc2 = Linear(d_model, 1, rng=rng)

    # ------------------------------------------------------------------ #
    def _st_embeddings(self, x: Tensor) -> tuple[Tensor, Tensor]:
        """(STE_history, STE_future), each (B, steps, N, D)."""
        time_feature = x.data[:, :, 0, 1]                  # (B, T')
        slots = np.clip((time_feature * _TIME_SLOTS).round().astype(int),
                        0, _TIME_SLOTS - 1)
        # Future slots continue the 5-minute grid.
        future = (slots[:, -1:] + np.arange(1, self.horizon + 1)) % _TIME_SLOTS

        spatial = self.fc_se(self.node_embedding).relu()   # (N, D)

        def ste_for(slot_index: np.ndarray) -> Tensor:
            te = self.time_embedding(slot_index)           # (B, steps, D)
            te = self.fc_te(te).relu()
            return te.expand_dims(2) + spatial             # (B, steps, N, D)

        return ste_for(slots), ste_for(future)

    def forward(self, x: Tensor) -> Tensor:
        self._validate_input(x)
        ste_history, ste_future = self._st_embeddings(x)
        values = x[:, :, :, 0:1]                           # (B, T', N, 1)
        hidden = self.input_proj(values).relu()
        for block in self.encoder:
            hidden = block(hidden, ste_history)
        hidden = self.transform(hidden, ste_history, ste_future)
        for block in self.decoder:
            hidden = block(hidden, ste_future)
        out = self.output_fc2(self.output_fc1(hidden).relu())
        return out.squeeze(3)                              # (B, T, N)
