"""ASTGCN (Guo et al., AAAI 2019) — attention-based spatial-temporal GCN.

Each block computes a *temporal attention* matrix (reweighting time steps),
a *spatial attention* matrix (modulating the Chebyshev supports
element-wise), a Chebyshev graph convolution, and a temporal convolution,
with a residual connection and layer normalisation.  A final convolution
over the time axis emits all horizons at once.

The paper uses only the "recent" component (T'=12 for fairness across
models), dropping ASTGCN's daily/weekly periodicity branches — we mirror
that choice.
"""

from __future__ import annotations

import numpy as np

from ..graph.laplacian import chebyshev_polynomials
from ..nn import functional as F
from ..nn import init
from ..nn.layers import Conv2d, LayerNorm
from ..nn.module import Module, ModuleList, Parameter
from ..nn.tensor import Tensor
from .base import TrafficModel, register_model

__all__ = ["ASTGCN", "SpatialAttention", "TemporalAttention"]


class SpatialAttention(Module):
    """S = softmax(Vs ⊙ sigmoid((X W1 W2)(W3 X)ᵀ + bs)) over nodes.

    Input ``(B, N, F, T)``; output ``(B, N, N)`` row-normalised.
    """

    def __init__(self, num_nodes: int, in_channels: int, num_steps: int,
                 *, rng: np.random.Generator):
        super().__init__()
        self.w1 = Parameter(init.uniform((num_steps,), rng))
        self.w2 = Parameter(init.xavier_uniform((in_channels, num_steps), rng))
        self.w3 = Parameter(init.uniform((in_channels,), rng))
        self.vs = Parameter(init.xavier_uniform((num_nodes, num_nodes), rng))
        self.bias = Parameter(np.zeros((num_nodes, num_nodes)))

    def forward(self, x: Tensor) -> Tensor:
        lhs = x.matmul(self.w1)                        # (B, N, F)
        lhs = lhs.matmul(self.w2)                      # (B, N, T)
        rhs = F.einsum("f,bnft->bnt", self.w3, x)      # (B, N, T)
        product = lhs.matmul(rhs.transpose(0, 2, 1))   # (B, N, N)
        scores = self.vs * (product + self.bias).sigmoid()
        return F.softmax(scores, axis=-1)


class TemporalAttention(Module):
    """E = softmax(Ve ⊙ sigmoid((Xᵀ U1 U2)(U3 X) + be)) over time steps.

    Input ``(B, N, F, T)``; output ``(B, T, T)``.
    """

    def __init__(self, num_nodes: int, in_channels: int, num_steps: int,
                 *, rng: np.random.Generator):
        super().__init__()
        self.u1 = Parameter(init.uniform((num_nodes,), rng))
        self.u2 = Parameter(init.xavier_uniform((in_channels, num_nodes), rng))
        self.u3 = Parameter(init.uniform((in_channels,), rng))
        self.ve = Parameter(init.xavier_uniform((num_steps, num_steps), rng))
        self.bias = Parameter(np.zeros((num_steps, num_steps)))

    def forward(self, x: Tensor) -> Tensor:
        x_t = x.transpose(0, 3, 2, 1)                  # (B, T, F, N)
        lhs = x_t.matmul(self.u1)                      # (B, T, F)
        lhs = lhs.matmul(self.u2)                      # (B, T, N)
        rhs = F.einsum("f,bnft->bnt", self.u3, x)      # (B, N, T)
        product = lhs.matmul(rhs)                      # (B, T, T)
        scores = self.ve * (product + self.bias).sigmoid()
        return F.softmax(scores, axis=-1)


class _ASTGCNBlock(Module):
    def __init__(self, adjacency: np.ndarray, in_channels: int,
                 out_channels: int, num_nodes: int, num_steps: int,
                 cheb_order: int = 3, *, rng: np.random.Generator):
        super().__init__()
        self.temporal_attention = TemporalAttention(num_nodes, in_channels,
                                                    num_steps, rng=rng)
        self.spatial_attention = SpatialAttention(num_nodes, in_channels,
                                                  num_steps, rng=rng)
        self.register_buffer(
            "cheb", np.stack(chebyshev_polynomials(adjacency, cheb_order)))
        self.cheb_order = cheb_order
        self.cheb_weight = Parameter(init.xavier_uniform(
            (cheb_order, in_channels, out_channels), rng))
        self.time_conv = Conv2d(out_channels, out_channels, (1, 3),
                                padding=(0, 1), rng=rng)
        self.residual_conv = Conv2d(in_channels, out_channels, (1, 1), rng=rng)
        self.norm = LayerNorm(out_channels)

    def forward(self, x: Tensor) -> Tensor:
        # x: (B, N, F, T)
        temporal = self.temporal_attention(x)          # (B, T, T)
        x_reweighted = F.einsum("bnft,btu->bnfu", x, temporal)
        spatial = self.spatial_attention(x_reweighted)  # (B, N, N)

        # Chebyshev convolution with attention-masked supports, per step.
        batch, nodes, channels, steps = x.shape
        features = x_reweighted.transpose(0, 3, 1, 2)   # (B, T, N, F)
        out = None
        for k in range(self.cheb_order):
            masked = spatial * Tensor(self.cheb[k])     # (B, N, N)
            propagated = F.einsum("bnm,btmf->btnf", masked, features)
            term = propagated.matmul(self.cheb_weight[k])
            out = term if out is None else out + term
        out = out.relu()                                # (B, T, N, C)

        out = out.transpose(0, 3, 2, 1)                 # (B, C, N, T)
        out = self.time_conv(out)
        residual = self.residual_conv(x.transpose(0, 2, 1, 3))  # (B,C,N,T)
        out = (out + residual).relu()
        out = self.norm(out.transpose(0, 3, 2, 1))      # (B, T, N, C)
        return out.transpose(0, 2, 3, 1)                # (B, N, C, T)


@register_model("astgcn")
class ASTGCN(TrafficModel):
    """Attention-based Spatial-Temporal Graph Convolutional Network."""

    def __init__(self, num_nodes: int, adjacency: np.ndarray,
                 history: int = 12, horizon: int = 12, in_features: int = 2,
                 seed: int = 0, hidden_channels: int = 16, num_blocks: int = 2,
                 cheb_order: int = 3):
        super().__init__(num_nodes, adjacency, history, horizon, in_features, seed)
        rng = np.random.default_rng(seed)
        blocks = []
        channels = in_features
        for _ in range(num_blocks):
            blocks.append(_ASTGCNBlock(adjacency, channels, hidden_channels,
                                       num_nodes, history, cheb_order, rng=rng))
            channels = hidden_channels
        self.blocks = ModuleList(blocks)
        self.final_conv = Conv2d(history, horizon, (1, hidden_channels), rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        self._validate_input(x)
        out = x.transpose(0, 2, 3, 1)                   # (B, N, F, T)
        for block in self.blocks:
            out = block(out)
        # (B, N, C, T) -> conv over (channels) with time as conv channels.
        out = out.transpose(0, 3, 1, 2)                 # (B, T, N, C)
        out = self.final_conv(out)                      # (B, horizon, N, 1)
        return out.squeeze(3)
