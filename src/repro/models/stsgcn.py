"""STSGCN (Song et al., AAAI 2020) — spatial-temporal synchronous GCN.

STSGCN captures localised spatial-temporal correlations *synchronously* by
building a 3N×3N block graph over every window of three consecutive steps:
diagonal blocks are the road adjacency, off-diagonals connect each sensor to
itself one step earlier/later.  A learnable mask modulates this block
adjacency.  Gated graph convolutions run on the block graph and the middle
N vertices are cropped as the window's output; sliding the window shrinks
the sequence by two steps per layer.

The output stage uses an **individual two-layer head per horizon step**
(capturing heterogeneity), which is why STSGCN has the largest parameter
count in the paper's Table III.
"""

from __future__ import annotations

import numpy as np

from ..graph.adjacency import row_normalize
from ..nn import functional as F
from ..nn import init
from ..nn.layers import Linear
from ..nn.module import Module, ModuleList, Parameter
from ..nn.tensor import Tensor
from .base import TrafficModel, register_model

__all__ = ["STSGCN", "STSGCModule"]


def _block_adjacency(adjacency: np.ndarray) -> np.ndarray:
    """3N×3N localized spatial-temporal graph."""
    n = adjacency.shape[0]
    spatial = row_normalize(np.asarray(adjacency) + np.eye(n))
    eye = np.eye(n)
    block = np.zeros((3 * n, 3 * n))
    for t in range(3):
        block[t * n:(t + 1) * n, t * n:(t + 1) * n] = spatial
    for t in range(2):
        block[t * n:(t + 1) * n, (t + 1) * n:(t + 2) * n] = eye
        block[(t + 1) * n:(t + 2) * n, t * n:(t + 1) * n] = eye
    return block


class STSGCModule(Module):
    """Gated graph convolutions on the masked block graph; crops the middle.

    Input ``(B, 3, N, C_in)`` -> output ``(B, N, C_out)``.
    """

    def __init__(self, adjacency: np.ndarray, in_channels: int,
                 out_channels: int, num_layers: int = 2,
                 *, rng: np.random.Generator):
        super().__init__()
        self.num_nodes = adjacency.shape[0]
        block = _block_adjacency(adjacency)
        self.register_buffer("block_adjacency", block)
        self.mask = Parameter(np.ones_like(block))
        layer_list = []
        channels = in_channels
        for _ in range(num_layers):
            layer_list.append(_GatedBlockConv(channels, out_channels, rng=rng))
            channels = out_channels
        self.layers = ModuleList(layer_list)

    def forward(self, window: Tensor) -> Tensor:
        batch = window.shape[0]
        n = self.num_nodes
        x = window.reshape(batch, 3 * n, window.shape[-1])   # (B, 3N, C)
        support = self.mask * Tensor(self.block_adjacency)
        outputs = []
        for layer in self.layers:
            x = layer(x, support)
            outputs.append(x)
        # Aggregate layer outputs with elementwise max (as in the original),
        # then crop the middle time step's vertices.
        aggregated = outputs[0]
        for extra in outputs[1:]:
            aggregated = aggregated.maximum(extra)
        return aggregated[:, n:2 * n, :]


class _GatedBlockConv(Module):
    """One GLU graph convolution on the block graph."""

    def __init__(self, in_channels: int, out_channels: int,
                 *, rng: np.random.Generator):
        super().__init__()
        self.weight = Parameter(init.xavier_uniform(
            (in_channels, 2 * out_channels), rng))
        self.bias = Parameter(np.zeros(2 * out_channels))

    def forward(self, x: Tensor, support: Tensor) -> Tensor:
        propagated = support.matmul(x)
        gated = propagated.matmul(self.weight) + self.bias
        value, gate = F.split(gated, 2, axis=-1)
        return value * gate.sigmoid()


@register_model("stsgcn")
class STSGCN(TrafficModel):
    """Spatial-Temporal Synchronous Graph Convolutional Network."""

    def __init__(self, num_nodes: int, adjacency: np.ndarray,
                 history: int = 12, horizon: int = 12, in_features: int = 2,
                 seed: int = 0, hidden_channels: int = 16, num_layers: int = 2,
                 head_hidden: int = 32):
        super().__init__(num_nodes, adjacency, history, horizon, in_features, seed)
        rng = np.random.default_rng(seed)
        self.input_proj = Linear(in_features, hidden_channels, rng=rng)
        self.position = Parameter(
            rng.normal(0, 0.1, (history, 1, hidden_channels)))
        self.stsgc_layers = ModuleList(
            [STSGCModule(adjacency, hidden_channels, hidden_channels, rng=rng)
             for _ in range(num_layers)])
        self.final_steps = history - 2 * num_layers
        if self.final_steps < 1:
            raise ValueError(
                f"history {history} too short for {num_layers} STSGC layers")
        # Individual output module per horizon step (heterogeneity modules —
        # the source of STSGCN's parameter count).
        self.heads = ModuleList([
            _HorizonHead(self.final_steps * hidden_channels, head_hidden, rng=rng)
            for _ in range(horizon)])

    def forward(self, x: Tensor) -> Tensor:
        self._validate_input(x)
        hidden = self.input_proj(x) + self.position       # (B, T, N, C)
        for layer in self.stsgc_layers:
            steps = hidden.shape[1]
            windows = [layer(hidden[:, t:t + 3]) for t in range(steps - 2)]
            hidden = F.stack(windows, axis=1)             # (B, T-2, N, C)
        batch, steps, nodes, channels = hidden.shape
        flat = hidden.transpose(0, 2, 1, 3).reshape(batch, nodes,
                                                    steps * channels)
        predictions = [head(flat) for head in self.heads]  # each (B, N)
        return F.stack(predictions, axis=1)                # (B, horizon, N)


class _HorizonHead(Module):
    """Two-layer head for one output step."""

    def __init__(self, in_features: int, hidden: int, *, rng: np.random.Generator):
        super().__init__()
        self.fc1 = Linear(in_features, hidden, rng=rng)
        self.fc2 = Linear(hidden, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.fc1(x).relu()).squeeze(2)
