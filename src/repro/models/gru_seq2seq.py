"""GRU seq2seq without any spatial modelling (ablation extension).

The paper's model-selection step (Sec. IV-A) *excluded* models that do not
exploit the road graph, reporting that they are less accurate.  This model
makes that claim testable inside the benchmark: it is exactly a DCRNN with
the diffusion convolutions replaced by plain per-node dense transforms —
every sensor is forecast independently of its neighbours.
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn.layers import Linear
from ..nn.layers.recurrent import GRUCell
from ..nn.losses import masked_mae
from ..nn.module import ModuleList
from ..nn.tensor import Tensor
from .base import TrafficModel, register_model


@register_model("gru-seq2seq")
class GRUSeq2Seq(TrafficModel):
    """Graph-free encoder-decoder GRU over each sensor independently."""

    def __init__(self, num_nodes: int, adjacency: np.ndarray,
                 history: int = 12, horizon: int = 12, in_features: int = 2,
                 seed: int = 0, hidden_size: int = 16, num_layers: int = 2,
                 tf_ratio: float = 0.5):
        super().__init__(num_nodes, adjacency, history, horizon, in_features, seed)
        rng = np.random.default_rng(seed)
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.tf_ratio = tf_ratio
        self._tf_rng = np.random.default_rng(seed + 3571)
        self.encoder = ModuleList(
            [GRUCell(in_features if i == 0 else hidden_size, hidden_size,
                     rng=rng) for i in range(num_layers)])
        self.decoder = ModuleList(
            [GRUCell(1 if i == 0 else hidden_size, hidden_size, rng=rng)
             for i in range(num_layers)])
        self.projection = Linear(hidden_size, 1, rng=rng)

    def _run(self, x: Tensor, teacher: Tensor | None) -> Tensor:
        batch, history, nodes, features = x.shape
        # Flatten (batch, node) into one recurrence axis: no cross-node flow.
        flat = x.transpose(0, 2, 1, 3).reshape(batch * nodes, history, features)
        hidden = [Tensor(np.zeros((batch * nodes, self.hidden_size)))
                  for _ in range(self.num_layers)]
        for step in F.unbind(flat, axis=1):
            for layer, cell in enumerate(self.encoder):
                hidden[layer] = cell(step, hidden[layer])
                step = hidden[layer]

        step_input = Tensor(np.zeros((batch * nodes, 1)))
        outputs = []
        for t in range(self.horizon):
            step = step_input
            for layer, cell in enumerate(self.decoder):
                hidden[layer] = cell(step, hidden[layer])
                step = hidden[layer]
            prediction = self.projection(step)            # (B*N, 1)
            outputs.append(prediction.reshape(batch, nodes))
            use_teacher = (teacher is not None and self.training
                           and self._tf_rng.random() < self.tf_ratio)
            if use_teacher:
                step_input = (teacher[:, t].reshape(batch * nodes)
                              .expand_dims(1))
            else:
                step_input = prediction
        return F.stack(outputs, axis=1)                   # (B, T, N)

    def forward(self, x: Tensor) -> Tensor:
        self._validate_input(x)
        return self._run(x, teacher=None)

    def training_loss(self, x: Tensor, y_scaled: Tensor,
                      null_mask: np.ndarray | None = None) -> Tensor:
        return masked_mae(self._run(x, teacher=y_scaled), y_scaled,
                          null_value=None)
