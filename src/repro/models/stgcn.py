"""STGCN (Yu et al., IJCAI 2018) — spectral GCN + gated temporal convolution.

Architecture: two ST-Conv "sandwich" blocks, each a gated temporal
convolution (GLU), a Chebyshev spectral graph convolution, and a second
gated temporal convolution, with layer normalisation.  A final temporal
convolution collapses the remaining steps and a dense head predicts **one**
step ahead — STGCN is the paper's many-to-one example.

Multi-step forecasts are produced recursively, feeding each prediction back
into the input window.  This is why the paper's Table III records STGCN as
the fastest model to *train* per epoch but a slow one at *inference*: one
backward pass trains a single-step map, but a 12-step forecast costs twelve
forward passes.
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn.layers import Conv2d, LayerNorm
from ..nn.losses import masked_mae
from ..nn.module import Module
from ..nn.tensor import Tensor
from .base import TrafficModel, register_model
from .graph_conv import ChebConv

__all__ = ["STGCN", "TemporalGatedConv", "STConvBlock"]


class TemporalGatedConv(Module):
    """Gated (GLU) temporal convolution along the last axis of (B,C,N,T)."""

    def __init__(self, in_channels: int, out_channels: int, kernel: int = 3,
                 *, rng: np.random.Generator):
        super().__init__()
        self.kernel = kernel
        self.conv = Conv2d(in_channels, 2 * out_channels, (1, kernel), rng=rng)
        self.align = (Conv2d(in_channels, out_channels, (1, 1), rng=rng)
                      if in_channels != out_channels else None)

    def forward(self, x: Tensor) -> Tensor:
        gated = self.conv(x)
        value, gate = F.split(gated, 2, axis=1)
        out = value * gate.sigmoid()
        residual = x if self.align is None else self.align(x)
        # Align time length: convolution trims (kernel-1) trailing context.
        trimmed = residual[:, :, :, self.kernel - 1:]
        return out + trimmed


class STConvBlock(Module):
    """Temporal-spatial-temporal sandwich with layer norm."""

    def __init__(self, adjacency: np.ndarray, in_channels: int,
                 spatial_channels: int, out_channels: int, num_nodes: int,
                 cheb_order: int = 3, *, rng: np.random.Generator):
        super().__init__()
        self.temporal1 = TemporalGatedConv(in_channels, out_channels, rng=rng)
        self.spatial = ChebConv(adjacency, out_channels, spatial_channels,
                                order=cheb_order, rng=rng)
        self.temporal2 = TemporalGatedConv(spatial_channels, out_channels, rng=rng)
        self.norm = LayerNorm(out_channels)

    def forward(self, x: Tensor) -> Tensor:
        out = self.temporal1(x)                       # (B, C, N, T-2)
        # Chebyshev conv wants (..., N, C): move channels last.
        out = out.transpose(0, 3, 2, 1)               # (B, T, N, C)
        out = self.spatial(out).relu()
        out = out.transpose(0, 3, 2, 1)               # (B, C, N, T)
        out = self.temporal2(out)
        out = self.norm(out.transpose(0, 3, 2, 1)).transpose(0, 3, 2, 1)
        return out


@register_model("stgcn")
class STGCN(TrafficModel):
    """Spatio-Temporal Graph Convolutional Network (many-to-one)."""

    def __init__(self, num_nodes: int, adjacency: np.ndarray,
                 history: int = 12, horizon: int = 12, in_features: int = 2,
                 seed: int = 0, hidden_channels: int = 16,
                 spatial_channels: int = 8, cheb_order: int = 3,
                 multi_step_head: bool = False):
        """``multi_step_head=True`` is an ablation switch: replace the
        paper's many-to-one output with a one-shot multi-horizon head,
        isolating how much of STGCN's weakness is the recursive decoding."""
        super().__init__(num_nodes, adjacency, history, horizon, in_features, seed)
        rng = np.random.default_rng(seed)
        self.multi_step_head = multi_step_head
        self.block1 = STConvBlock(adjacency, in_features, spatial_channels,
                                  hidden_channels, num_nodes,
                                  cheb_order, rng=rng)
        self.block2 = STConvBlock(adjacency, hidden_channels, spatial_channels,
                                  hidden_channels, num_nodes,
                                  cheb_order, rng=rng)
        remaining = history - 2 * 4     # each block trims 4 steps
        if remaining < 1:
            raise ValueError(f"history {history} too short for two ST blocks")
        self.output_conv = Conv2d(hidden_channels, hidden_channels,
                                  (1, remaining), rng=rng)
        out_channels = horizon if multi_step_head else 1
        self.head = Conv2d(hidden_channels, out_channels, (1, 1), rng=rng)

    # ------------------------------------------------------------------ #
    def _trunk(self, window: Tensor) -> Tensor:
        """Shared convolutional trunk -> (B, C_head, N, 1)."""
        out = window.transpose(0, 3, 2, 1)            # (B, F, N, T)
        out = self.block1(out)
        out = self.block2(out)
        out = self.output_conv(out).relu()            # (B, C, N, 1)
        return self.head(out)

    def _single_step(self, window: Tensor) -> Tensor:
        """Predict one step ahead from a (B, T', N, F) window -> (B, N)."""
        return self._trunk(window).squeeze(3).squeeze(1)

    def forward(self, x: Tensor) -> Tensor:
        """Recursive multi-step rollout (the many-to-one inference cost),
        or a single one-shot pass when ``multi_step_head`` is enabled."""
        self._validate_input(x)
        if self.multi_step_head:
            return self._trunk(x).squeeze(3)          # (B, horizon, N)
        window = x
        # Future time-of-day continues the 5-minute grid of the input.
        time_feature = x.data[:, :, :, 1]
        if self.history > 1:
            deltas = np.diff(time_feature[:, :, 0], axis=1)
            dt = float(np.median(np.abs(deltas))) or (1.0 / 288.0)
        else:
            dt = 1.0 / 288.0
        last_time = time_feature[:, -1, :]
        predictions = []
        for step in range(self.horizon):
            prediction = self._single_step(window)     # (B, N)
            predictions.append(prediction)
            next_time = (last_time + (step + 1) * dt) % 1.0
            frame = F.stack([prediction, Tensor(next_time)], axis=-1)  # (B,N,2)
            window = F.concat([window[:, 1:], frame.expand_dims(1)], axis=1)
        return F.stack(predictions, axis=1)            # (B, T, N)

    def training_loss(self, x: Tensor, y_scaled: Tensor,
                      null_mask: np.ndarray | None = None) -> Tensor:
        """Many-to-one training: only the next step supervises the model.
        With the ablation head, all horizons supervise at once."""
        if self.multi_step_head:
            return masked_mae(self.forward(x), y_scaled, null_value=None)
        prediction = self._single_step(x)
        return masked_mae(prediction, y_scaled[:, 0], null_value=None)
