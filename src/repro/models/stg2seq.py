"""STG2Seq (Bai et al., IJCAI 2019) — spatial-temporal graph to sequence.

STG2Seq avoids RNNs entirely: stacked *gated graph convolution modules*
(GGCM) capture temporal dynamics by convolving, at every step, a causal
window of recent graph signals through a first-order graph convolution with
GLU gating and residual connections.  A long-term encoder reads the whole
history and a short-term encoder re-reads the most recent steps; an
attention-based output module with a learned query per horizon step fuses
both and emits the full forecast at once.
"""

from __future__ import annotations

import numpy as np

from ..graph.adjacency import row_normalize
from ..nn import functional as F
from ..nn import init
from ..nn.layers import Linear
from ..nn.module import Module, ModuleList, Parameter
from ..nn.tensor import Tensor
from .base import TrafficModel, register_model

__all__ = ["STG2Seq", "GatedGraphConvModule"]


class GatedGraphConvModule(Module):
    """One GGCM layer: causal temporal window -> graph conv -> GLU -> residual.

    Input/output ``(B, T, N, C)``.  Every output step sees the previous
    ``window`` input steps (zero-padded at the series start), concatenated on
    the feature axis and propagated through ``D⁻¹(A + I)``.
    """

    def __init__(self, adjacency: np.ndarray, channels: int, window: int = 3,
                 *, rng: np.random.Generator):
        super().__init__()
        self.window = window
        self.channels = channels
        support = row_normalize(np.asarray(adjacency) + np.eye(adjacency.shape[0]))
        self.register_buffer("support", support)
        self.weight = Parameter(init.xavier_uniform(
            (window * channels, 2 * channels), rng))
        self.bias = Parameter(np.zeros(2 * channels))

    def forward(self, x: Tensor) -> Tensor:
        # Causal stacking: pad (window-1) zero frames at the front, then for
        # each t concatenate steps [t-window+1 .. t] on the feature axis.
        padded = x.pad(((0, 0), (self.window - 1, 0), (0, 0), (0, 0)))
        frames = [padded[:, k:k + x.shape[1]] for k in range(self.window)]
        stacked = F.concat(frames, axis=-1)            # (B, T, N, window*C)
        propagated = F.einsum("nm,btmc->btnc", Tensor(self.support), stacked)
        gated = propagated.matmul(self.weight) + self.bias
        value, gate = F.split(gated, 2, axis=-1)
        return x + value * gate.sigmoid()


@register_model("stg2seq")
class STG2Seq(TrafficModel):
    """Spatial-Temporal Graph to Sequence model."""

    def __init__(self, num_nodes: int, adjacency: np.ndarray,
                 history: int = 12, horizon: int = 12, in_features: int = 2,
                 seed: int = 0, channels: int = 16, long_layers: int = 3,
                 short_layers: int = 2, short_window: int = 4):
        super().__init__(num_nodes, adjacency, history, horizon, in_features, seed)
        rng = np.random.default_rng(seed)
        self.channels = channels
        self.short_window = min(short_window, history)
        self.input_proj = Linear(in_features, channels, rng=rng)
        self.long_encoder = ModuleList(
            [GatedGraphConvModule(adjacency, channels, rng=rng)
             for _ in range(long_layers)])
        self.short_encoder = ModuleList(
            [GatedGraphConvModule(adjacency, channels, rng=rng)
             for _ in range(short_layers)])
        self.queries = Parameter(init.xavier_uniform((horizon, channels), rng))
        self.key_proj = Linear(channels, channels, rng=rng)
        self.out_proj = Linear(channels, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        self._validate_input(x)
        hidden = self.input_proj(x)                   # (B, T, N, C)
        long_out = hidden
        for module in self.long_encoder:
            long_out = module(long_out)
        short_out = hidden[:, self.history - self.short_window:]
        for module in self.short_encoder:
            short_out = module(short_out)

        memory = F.concat([long_out, short_out], axis=1)   # (B, T+s, N, C)
        keys = self.key_proj(memory)                       # (B, L, N, C)
        # Horizon-specific attention over the temporal memory, per node.
        keys_t = keys.transpose(0, 2, 1, 3)                # (B, N, L, C)
        memory_t = memory.transpose(0, 2, 1, 3)            # (B, N, L, C)
        scores = F.einsum("bnlc,qc->bnql", keys_t, self.queries)
        scores = scores * (1.0 / np.sqrt(self.channels))
        weights = F.softmax(scores, axis=-1)               # (B, N, Q, L)
        context = weights.matmul(memory_t)                 # (B, N, Q, C)
        prediction = self.out_proj(context).squeeze(3)     # (B, N, Q)
        return prediction.transpose(0, 2, 1)               # (B, Q, N)
