"""ST-MetaNet (Pan et al., KDD 2019) — deep meta learning for traffic.

The key idea: the weights applied at each node are *generated* from static
node meta-knowledge (geo-graph attributes) by meta-learner MLPs, so every
sensor runs its own specialised GRU/GAT parameters.  We derive each node's
meta-features from the weighted adjacency (in/out degree, neighbour count)
plus a learned node embedding, mirroring the paper's geo-feature encoder.

A meta-GRU encoder consumes the history, a meta-GAT propagates hidden
states over the graph, and a meta-GRU decoder rolls the forecast out
autoregressively (with teacher forcing during training).

Because the generated weights depend only on *static* attributes, the model
adapts poorly when conditions change abruptly — the behaviour the paper
reports in its difficult-interval experiment (Sec. V-B).
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn import init
from ..nn.layers import Linear
from ..nn.losses import masked_mae
from ..nn.module import Module, ModuleList, Parameter
from ..nn.tensor import Tensor
from .base import TrafficModel, register_model

__all__ = ["STMetaNet", "MetaGRUCell", "MetaGAT"]


def _node_static_features(adjacency: np.ndarray) -> np.ndarray:
    """Graph-derived meta knowledge: degrees and neighbourhood statistics."""
    adj = np.asarray(adjacency, dtype=float)
    off_diag = adj - np.diag(np.diag(adj))
    out_degree = off_diag.sum(axis=1)
    in_degree = off_diag.sum(axis=0)
    out_count = (off_diag > 0).sum(axis=1).astype(float)
    in_count = (off_diag > 0).sum(axis=0).astype(float)
    feats = np.stack([out_degree, in_degree, out_count, in_count], axis=1)
    std = feats.std(axis=0)
    std[std == 0] = 1.0
    return (feats - feats.mean(axis=0)) / std


class MetaLearner(Module):
    """Two-layer MLP mapping node meta-knowledge to a flat weight vector."""

    def __init__(self, meta_dim: int, out_size: int, hidden: int = 16,
                 *, rng: np.random.Generator):
        super().__init__()
        self.fc1 = Linear(meta_dim, hidden, rng=rng)
        self.fc2 = Linear(hidden, out_size, rng=rng)
        # Scale down generated weights so training starts stable.
        self.scale = 0.1

    def forward(self, meta: Tensor) -> Tensor:
        return self.fc2(self.fc1(meta).relu()) * self.scale


class MetaGRUCell(Module):
    """GRU cell whose input-to-hidden weights are generated per node.

    Hidden-to-hidden weights are shared (the meta-learners specialise how
    each node *reads* its inputs, which is where node identity matters most).
    State is ``(B, N, H)``.
    """

    def __init__(self, input_size: int, hidden_size: int, meta_dim: int,
                 *, rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.meta_gates = MetaLearner(meta_dim, input_size * 2 * hidden_size,
                                      rng=rng)
        self.meta_candidate = MetaLearner(meta_dim, input_size * hidden_size,
                                          rng=rng)
        self.w_hg = Parameter(init.xavier_uniform((hidden_size, 2 * hidden_size), rng))
        self.w_hc = Parameter(init.xavier_uniform((hidden_size, hidden_size), rng))
        self.b_g = Parameter(np.ones(2 * hidden_size))
        self.b_c = Parameter(np.zeros(hidden_size))

    def forward(self, x: Tensor, h: Tensor, meta: Tensor) -> Tensor:
        nodes = meta.shape[0]
        w_xg = self.meta_gates(meta).reshape(nodes, self.input_size,
                                             2 * self.hidden_size)
        w_xc = self.meta_candidate(meta).reshape(nodes, self.input_size,
                                                 self.hidden_size)
        gate_in = F.einsum("bni,nio->bno", x, w_xg)
        gates = (gate_in + h.matmul(self.w_hg) + self.b_g).sigmoid()
        reset, update = F.split(gates, 2, axis=-1)
        cand_in = F.einsum("bni,nio->bno", x, w_xc)
        candidate = (cand_in + (reset * h).matmul(self.w_hc) + self.b_c).tanh()
        return update * h + (1.0 - update) * candidate


class MetaGAT(Module):
    """Graph attention whose edge logits come from pairwise meta-knowledge.

    Edge attention combines a *static* meta term (generated from the two
    endpoints' meta vectors) with a content term from current hidden states.
    """

    def __init__(self, hidden_size: int, meta_dim: int, adjacency: np.ndarray,
                 *, rng: np.random.Generator):
        super().__init__()
        mask = (np.asarray(adjacency) > 0) | np.eye(adjacency.shape[0], dtype=bool)
        self.register_buffer("edge_mask", mask)
        self.meta_edge = MetaLearner(2 * meta_dim, 1, rng=rng)
        self.proj = Linear(hidden_size, hidden_size, rng=rng)
        self.gate = Parameter(np.zeros(1))

    def forward(self, h: Tensor, meta: Tensor) -> Tensor:
        nodes = meta.shape[0]
        # Pairwise meta features: (N, N, 2M)
        meta_i = meta.expand_dims(1).repeat(nodes, axis=1)
        meta_j = meta.expand_dims(0).repeat(nodes, axis=0)
        pair = F.concat([meta_i, meta_j], axis=-1)
        static_logit = self.meta_edge(pair).squeeze(2)          # (N, N)
        content = self.proj(h)                                  # (B, N, H)
        content_logit = content.matmul(h.swapaxes(-1, -2))      # (B, N, N)
        scale = 1.0 / np.sqrt(h.shape[-1])
        logits = content_logit * scale + static_logit
        logits = logits + Tensor(np.where(self.edge_mask, 0.0, -1e9))
        weights = F.softmax(logits, axis=-1)
        aggregated = weights.matmul(h)
        gate = self.gate.sigmoid()
        return h + gate * aggregated.relu()


@register_model("st-metanet")
class STMetaNet(TrafficModel):
    """Urban traffic prediction via deep meta learning (seq2seq)."""

    def __init__(self, num_nodes: int, adjacency: np.ndarray,
                 history: int = 12, horizon: int = 12, in_features: int = 2,
                 seed: int = 0, hidden_size: int = 16, embed_dim: int = 4,
                 tf_ratio: float = 0.5):
        super().__init__(num_nodes, adjacency, history, horizon, in_features, seed)
        rng = np.random.default_rng(seed)
        self.hidden_size = hidden_size
        self.tf_ratio = tf_ratio
        self._tf_rng = np.random.default_rng(seed + 104729)

        static = _node_static_features(adjacency)
        self.register_buffer("static_features", static)
        self.node_embedding = Parameter(rng.normal(0, 0.1, (num_nodes, embed_dim)))
        meta_dim = static.shape[1] + embed_dim
        self.meta_dim = meta_dim

        self.encoder = MetaGRUCell(in_features, hidden_size, meta_dim, rng=rng)
        self.gat = MetaGAT(hidden_size, meta_dim, adjacency, rng=rng)
        self.decoder = MetaGRUCell(1, hidden_size, meta_dim, rng=rng)
        self.projection = Linear(hidden_size, 1, rng=rng)

    def _meta(self) -> Tensor:
        return F.concat([Tensor(self.static_features), self.node_embedding],
                        axis=-1)

    def _run(self, x: Tensor, teacher: Tensor | None) -> Tensor:
        batch = x.shape[0]
        meta = self._meta()
        h = Tensor(np.zeros((batch, self.num_nodes, self.hidden_size)))
        for step in F.unbind(x, axis=1):
            h = self.encoder(step, h, meta)
        h = self.gat(h, meta)

        step_input = Tensor(np.zeros((batch, self.num_nodes, 1)))
        outputs = []
        for t in range(self.horizon):
            h = self.decoder(step_input, h, meta)
            prediction = self.projection(h)             # (B, N, 1)
            outputs.append(prediction.squeeze(2))
            use_teacher = (teacher is not None and self.training
                           and self._tf_rng.random() < self.tf_ratio)
            step_input = (teacher[:, t].expand_dims(2) if use_teacher
                          else prediction)
        return F.stack(outputs, axis=1)

    def forward(self, x: Tensor) -> Tensor:
        self._validate_input(x)
        return self._run(x, teacher=None)

    def training_loss(self, x: Tensor, y_scaled: Tensor,
                      null_mask: np.ndarray | None = None) -> Tensor:
        prediction = self._run(x, teacher=y_scaled)
        return masked_mae(prediction, y_scaled, null_value=None)
