"""Shared graph-convolution building blocks used by the eight models.

Two families (paper Table II): Chebyshev spectral convolution (STGCN,
ASTGCN) and diffusion/random-walk spatial convolution (DCRNN,
Graph-WaveNet, STSGCN, STG2Seq).
"""

from __future__ import annotations

import numpy as np

from ..graph.laplacian import chebyshev_polynomials, dual_random_walk
from ..nn import functional as F
from ..nn import init
from ..nn.module import Module, Parameter
from ..nn.tensor import Tensor

__all__ = ["ChebConv", "DiffusionConv", "diffusion_supports", "cheb_supports"]


def cheb_supports(adjacency: np.ndarray, order: int) -> list[np.ndarray]:
    """Chebyshev polynomial supports T_0..T_{K-1} of the scaled Laplacian."""
    return chebyshev_polynomials(adjacency, order)


def diffusion_supports(adjacency: np.ndarray, max_step: int = 2) -> list[np.ndarray]:
    """Bidirectional random-walk supports [I, Pf, Pf^2.., Pb, Pb^2..]."""
    forward, backward = dual_random_walk(adjacency)
    supports: list[np.ndarray] = [np.eye(adjacency.shape[0])]
    power = np.eye(adjacency.shape[0])
    for _ in range(max_step):
        power = power @ forward
        supports.append(power)
    power = np.eye(adjacency.shape[0])
    for _ in range(max_step):
        power = power @ backward
        supports.append(power)
    return supports


class _SupportConv(Module):
    """Graph convolution over a fixed list of support matrices.

    Input ``(..., N, C_in)`` → output ``(..., N, C_out)``:
    ``out = sum_k (S_k X) W_k + b``.
    """

    def __init__(self, supports: list[np.ndarray], in_channels: int,
                 out_channels: int, *, rng: np.random.Generator):
        super().__init__()
        if not supports:
            raise ValueError("need at least one support matrix")
        self.num_supports = len(supports)
        self.in_channels = in_channels
        self.out_channels = out_channels
        stacked = np.stack([np.asarray(s, dtype=float) for s in supports])
        self.register_buffer("supports", stacked)       # (K, N, N)
        self.weight = Parameter(init.xavier_uniform(
            (self.num_supports, in_channels, out_channels), rng))
        self.bias = Parameter(np.zeros(out_channels))

    def forward(self, x: Tensor, extra_supports: list[Tensor] | None = None) -> Tensor:
        if x.shape[-2] != self.supports.shape[-1]:
            raise ValueError(
                f"input has {x.shape[-2]} nodes, supports expect "
                f"{self.supports.shape[-1]}")
        out = None
        for k in range(self.num_supports):
            propagated = Tensor(self.supports[k]).matmul(x)   # (..., N, Cin)
            term = propagated.matmul(self.weight[k])
            out = term if out is None else out + term
        if extra_supports:
            raise ValueError("extra supports need matching weights; "
                             "use AdaptiveDiffusionConv instead")
        return out + self.bias


class ChebConv(_SupportConv):
    """Spectral convolution with Chebyshev basis of order K."""

    def __init__(self, adjacency: np.ndarray, in_channels: int,
                 out_channels: int, order: int = 3, *, rng: np.random.Generator):
        super().__init__(cheb_supports(adjacency, order), in_channels,
                         out_channels, rng=rng)
        self.order = order


class DiffusionConv(_SupportConv):
    """Bidirectional diffusion convolution with K random-walk steps."""

    def __init__(self, adjacency: np.ndarray, in_channels: int,
                 out_channels: int, max_step: int = 2, *, rng: np.random.Generator):
        super().__init__(diffusion_supports(adjacency, max_step), in_channels,
                         out_channels, rng=rng)
        self.max_step = max_step
