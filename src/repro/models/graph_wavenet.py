"""Graph-WaveNet (Wu et al., IJCAI 2019).

Stacked dilated causal temporal convolutions with gated (tanh × sigmoid)
activations, interleaved with diffusion graph convolutions that combine the
fixed bidirectional random-walk supports with a *self-adaptive adjacency*
``softmax(relu(E1 E2ᵀ))`` learned from node embeddings.  Skip connections
feed a readout that emits **all 12 horizons at once** — the architecture the
paper finds fastest at inference and most accurate at short horizons.
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn import init
from ..nn.layers import Conv2d
from ..nn.module import Module, ModuleList, Parameter
from ..nn.tensor import Tensor
from .base import TrafficModel, register_model
from .graph_conv import diffusion_supports

__all__ = ["GraphWaveNet", "GWNetGraphConv"]


class GWNetGraphConv(Module):
    """Diffusion conv over fixed supports + the learned adaptive adjacency.

    Input/output ``(B, C, N, T)``.  Propagated signals for every support are
    concatenated on the channel axis and mixed by a 1×1 convolution.
    """

    def __init__(self, adjacency: np.ndarray, in_channels: int,
                 out_channels: int, max_step: int = 2, embed_dim: int = 8,
                 adaptive: bool = True, *, rng: np.random.Generator):
        super().__init__()
        supports = diffusion_supports(adjacency, max_step)
        self.register_buffer("supports", np.stack(supports))
        self.adaptive = adaptive
        num_nodes = adjacency.shape[0]
        if adaptive:
            self.embed_source = Parameter(
                rng.normal(0, 0.1, (num_nodes, embed_dim)))
            self.embed_target = Parameter(
                rng.normal(0, 0.1, (embed_dim, num_nodes)))
        total = len(supports) + (1 if adaptive else 0)
        self.mix = Conv2d(total * in_channels, out_channels, (1, 1), rng=rng)

    def adaptive_adjacency(self) -> Tensor:
        if not self.adaptive:
            raise RuntimeError("adaptive adjacency disabled for this block")
        scores = self.embed_source.matmul(self.embed_target).relu()
        return F.softmax(scores, axis=1)

    def forward(self, x: Tensor) -> Tensor:
        propagated = []
        for k in range(self.supports.shape[0]):
            propagated.append(F.einsum("nm,bcmt->bcnt", Tensor(self.supports[k]), x))
        if self.adaptive:
            propagated.append(
                F.einsum("nm,bcmt->bcnt", self.adaptive_adjacency(), x))
        return self.mix(F.concat(propagated, axis=1))


class _GWNetBlock(Module):
    """One gated dilated TCN + graph conv block with residual/skip outputs."""

    def __init__(self, adjacency: np.ndarray, residual_channels: int,
                 dilation_channels: int, skip_channels: int, dilation: int,
                 last: bool = False, adaptive: bool = True,
                 *, rng: np.random.Generator):
        super().__init__()
        self.dilation = dilation
        self.filter_conv = Conv2d(residual_channels, dilation_channels, (1, 2),
                                  dilation=(1, dilation), rng=rng)
        self.gate_conv = Conv2d(residual_channels, dilation_channels, (1, 2),
                                dilation=(1, dilation), rng=rng)
        # The final block feeds only the skip path, so its graph convolution
        # would be dead weight — omit it.
        self.graph_conv = (None if last else
                           GWNetGraphConv(adjacency, dilation_channels,
                                          residual_channels,
                                          adaptive=adaptive, rng=rng))
        self.skip_conv = Conv2d(dilation_channels, skip_channels, (1, 1), rng=rng)

    def forward(self, x: Tensor) -> tuple[Tensor | None, Tensor]:
        gated = self.filter_conv(x).tanh() * self.gate_conv(x).sigmoid()
        skip = self.skip_conv(gated)
        if self.graph_conv is None:
            return None, skip
        out = self.graph_conv(gated)
        residual = x[:, :, :, self.dilation:]          # align time
        return out + residual, skip


@register_model("graph-wavenet")
class GraphWaveNet(TrafficModel):
    """Graph WaveNet for deep spatio-temporal graph modelling."""

    def __init__(self, num_nodes: int, adjacency: np.ndarray,
                 history: int = 12, horizon: int = 12, in_features: int = 2,
                 seed: int = 0, residual_channels: int = 16,
                 dilation_channels: int = 16, skip_channels: int = 32,
                 end_channels: int = 64,
                 dilations: tuple[int, ...] = (1, 2, 4, 8),
                 adaptive_adjacency: bool = True):
        """``adaptive_adjacency=False`` ablates the model's self-learned
        graph, leaving only the fixed random-walk supports."""
        super().__init__(num_nodes, adjacency, history, horizon, in_features, seed)
        rng = np.random.default_rng(seed)
        self.dilations = tuple(dilations)
        self.receptive_field = 1 + sum(self.dilations)
        self.input_conv = Conv2d(in_features, residual_channels, (1, 1), rng=rng)
        self.blocks = ModuleList(
            [_GWNetBlock(adjacency, residual_channels, dilation_channels,
                         skip_channels, d, last=(i == len(self.dilations) - 1),
                         adaptive=adaptive_adjacency,
                         rng=rng) for i, d in enumerate(self.dilations)])
        self.end_conv1 = Conv2d(skip_channels, end_channels, (1, 1), rng=rng)
        self.end_conv2 = Conv2d(end_channels, horizon, (1, 1), rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        self._validate_input(x)
        out = x.transpose(0, 3, 2, 1)                 # (B, F, N, T)
        if self.history < self.receptive_field:
            pad = self.receptive_field - self.history
            out = out.pad(((0, 0), (0, 0), (0, 0), (pad, 0)))
        out = self.input_conv(out)
        skips = []
        for block in self.blocks:
            out, skip = block(out)
            skips.append(skip)
        # Crop every skip to the final (shortest) time length and sum.
        final_len = skips[-1].shape[-1]
        total = None
        for skip in skips:
            cropped = skip[:, :, :, skip.shape[-1] - final_len:]
            total = cropped if total is None else total + cropped
        out = total.relu()
        out = self.end_conv1(out).relu()
        out = self.end_conv2(out)                     # (B, horizon, N, T_f)
        # Collapse any remaining time steps (T_f is 1 by construction).
        return out.mean(axis=3)
