"""Common interface and registry for the eight benchmark models.

Every model consumes a window ``x`` of shape ``(batch, history, nodes,
features)`` — feature 0 the z-scored traffic value, feature 1 the
normalised time of day — and produces scaled predictions of shape
``(batch, horizon, nodes)``.  The experiment runner inverse-transforms
predictions before computing metrics, matching the paper's protocol.
"""

from __future__ import annotations

from typing import Callable, Type

import numpy as np

from ..nn.losses import masked_mae
from ..nn.module import Module
from ..nn.tensor import Tensor

__all__ = ["TrafficModel", "register_model", "create_model", "model_names",
           "MODEL_REGISTRY"]

MODEL_REGISTRY: dict[str, Type["TrafficModel"]] = {}


def register_model(name: str) -> Callable[[Type["TrafficModel"]], Type["TrafficModel"]]:
    """Class decorator adding a model to the registry under ``name``."""

    def decorator(cls: Type["TrafficModel"]) -> Type["TrafficModel"]:
        if name in MODEL_REGISTRY:
            raise ValueError(f"model {name!r} already registered")
        MODEL_REGISTRY[name] = cls
        cls.name = name
        return cls

    return decorator


def model_names() -> list[str]:
    """Names of all registered models (paper models + baselines)."""
    return list(MODEL_REGISTRY)


def create_model(name: str, num_nodes: int, adjacency: np.ndarray,
                 history: int = 12, horizon: int = 12, in_features: int = 2,
                 seed: int = 0, **hparams) -> "TrafficModel":
    """Instantiate a registered model by name."""
    key = name.lower().replace("_", "-")
    if key not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; choose from {model_names()}")
    return MODEL_REGISTRY[key](num_nodes=num_nodes, adjacency=adjacency,
                               history=history, horizon=horizon,
                               in_features=in_features, seed=seed, **hparams)


class TrafficModel(Module):
    """Base class: spatio-temporal forecaster over a fixed road graph."""

    name = "base"

    def __init__(self, num_nodes: int, adjacency: np.ndarray,
                 history: int = 12, horizon: int = 12, in_features: int = 2,
                 seed: int = 0):
        super().__init__()
        adjacency = np.asarray(adjacency, dtype=float)
        if adjacency.shape != (num_nodes, num_nodes):
            raise ValueError(
                f"adjacency shape {adjacency.shape} does not match "
                f"num_nodes={num_nodes}")
        self.num_nodes = num_nodes
        self.history = history
        self.horizon = horizon
        self.in_features = in_features
        self.seed = seed
        self.register_buffer("adjacency", adjacency)

    # ------------------------------------------------------------------ #
    def forward(self, x: Tensor) -> Tensor:
        """Map ``(B, T', N, F)`` inputs to ``(B, T, N)`` scaled predictions."""
        raise NotImplementedError

    def training_loss(self, x: Tensor, y_scaled: Tensor,
                      null_mask: np.ndarray | None = None) -> Tensor:
        """Loss used for optimisation (masked MAE on scaled values).

        Models with a different training objective (e.g. STGCN's
        many-to-one single-step training) override this.
        """
        prediction = self.forward(x)
        return masked_mae(prediction, y_scaled, null_value=None)

    def _validate_input(self, x: Tensor) -> None:
        if x.ndim != 4:
            raise ValueError(f"expected (B, T', N, F) input, got shape {x.shape}")
        if x.shape[1] != self.history:
            raise ValueError(
                f"history mismatch: model expects {self.history}, got {x.shape[1]}")
        if x.shape[2] != self.num_nodes:
            raise ValueError(
                f"node mismatch: model expects {self.num_nodes}, got {x.shape[2]}")
