"""FC-LSTM baseline (extension) — the classical deep baseline.

Before graph models, traffic forecasting used fully-connected LSTMs over
the concatenated sensor vector (the baseline the DCRNN paper compares
against).  Spatial structure is "modelled" only implicitly through the
dense input projection, so it sits between the per-node GRU baseline and
the graph models in the spatial-modelling spectrum.
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn.layers import Linear
from ..nn.layers.recurrent import LSTMCell
from ..nn.losses import masked_mae
from ..nn.module import ModuleList
from ..nn.tensor import Tensor
from .base import TrafficModel, register_model

__all__ = ["FCLSTM"]


@register_model("fc-lstm")
class FCLSTM(TrafficModel):
    """Encoder-decoder LSTM over the flattened sensor vector."""

    def __init__(self, num_nodes: int, adjacency: np.ndarray,
                 history: int = 12, horizon: int = 12, in_features: int = 2,
                 seed: int = 0, hidden_size: int = 32, num_layers: int = 2,
                 tf_ratio: float = 0.5):
        super().__init__(num_nodes, adjacency, history, horizon, in_features, seed)
        rng = np.random.default_rng(seed)
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.tf_ratio = tf_ratio
        self._tf_rng = np.random.default_rng(seed + 4219)
        flat_in = num_nodes * in_features
        self.encoder = ModuleList(
            [LSTMCell(flat_in if i == 0 else hidden_size, hidden_size,
                      rng=rng) for i in range(num_layers)])
        self.decoder = ModuleList(
            [LSTMCell(num_nodes if i == 0 else hidden_size, hidden_size,
                      rng=rng) for i in range(num_layers)])
        self.projection = Linear(hidden_size, num_nodes, rng=rng)

    def _run(self, x: Tensor, teacher: Tensor | None) -> Tensor:
        batch = x.shape[0]
        flat = x.reshape(batch, self.history,
                         self.num_nodes * self.in_features)
        h = [Tensor(np.zeros((batch, self.hidden_size)))
             for _ in range(self.num_layers)]
        c = [Tensor(np.zeros((batch, self.hidden_size)))
             for _ in range(self.num_layers)]
        for step in F.unbind(flat, axis=1):
            for layer, cell in enumerate(self.encoder):
                h[layer], c[layer] = cell(step, (h[layer], c[layer]))
                step = h[layer]

        step_input = Tensor(np.zeros((batch, self.num_nodes)))
        outputs = []
        for t in range(self.horizon):
            step = step_input
            for layer, cell in enumerate(self.decoder):
                h[layer], c[layer] = cell(step, (h[layer], c[layer]))
                step = h[layer]
            prediction = self.projection(step)       # (B, N)
            outputs.append(prediction)
            use_teacher = (teacher is not None and self.training
                           and self._tf_rng.random() < self.tf_ratio)
            step_input = teacher[:, t] if use_teacher else prediction
        return F.stack(outputs, axis=1)

    def forward(self, x: Tensor) -> Tensor:
        self._validate_input(x)
        return self._run(x, teacher=None)

    def training_loss(self, x: Tensor, y_scaled: Tensor,
                      null_mask: np.ndarray | None = None) -> Tensor:
        return masked_mae(self._run(x, teacher=y_scaled), y_scaled,
                          null_value=None)
