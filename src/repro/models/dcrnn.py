"""DCRNN (Li et al., ICLR 2018) — diffusion-convolutional recurrent network.

A GRU in which every dense transform is replaced by a bidirectional
diffusion convolution over the road graph (random-walk supports, K steps in
each direction).  An encoder consumes the T'=12 history; a decoder emits the
T=12 forecast autoregressively from a GO symbol — the sequence-to-sequence
structure whose error accumulation the paper highlights in Sec. V-A/VI.

Training feeds ground truth to the decoder (teacher forcing) with a
probability that either stays fixed at ``tf_ratio`` or, when
``scheduled_sampling_decay`` is set, follows the original DCRNN curriculum
— an inverse-sigmoid decay ``k / (k + exp(step / k))`` that starts near 1
(always teacher-forced) and anneals towards 0 (free-running) as training
progresses.
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn.losses import masked_mae
from ..nn.module import Module, ModuleList
from ..nn.layers import Linear
from ..nn.tensor import Tensor
from .base import TrafficModel, register_model
from .graph_conv import DiffusionConv

__all__ = ["DCRNN", "DCGRUCell"]


class DCGRUCell(Module):
    """GRU cell whose matmuls are diffusion convolutions.

    Operates on ``(B, N, C)`` node features; hidden state is ``(B, N, H)``.
    """

    def __init__(self, adjacency: np.ndarray, input_size: int, hidden_size: int,
                 max_diffusion_step: int = 2, *, rng: np.random.Generator):
        super().__init__()
        self.hidden_size = hidden_size
        self.gate_conv = DiffusionConv(adjacency, input_size + hidden_size,
                                       2 * hidden_size, max_diffusion_step,
                                       rng=rng)
        self.candidate_conv = DiffusionConv(adjacency, input_size + hidden_size,
                                            hidden_size, max_diffusion_step,
                                            rng=rng)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        combined = F.concat([x, h], axis=-1)
        gates = self.gate_conv(combined).sigmoid()
        reset, update = F.split(gates, 2, axis=-1)
        candidate_in = F.concat([x, reset * h], axis=-1)
        candidate = self.candidate_conv(candidate_in).tanh()
        return update * h + (1.0 - update) * candidate


@register_model("dcrnn")
class DCRNN(TrafficModel):
    """Diffusion Convolutional Recurrent Neural Network (seq2seq)."""

    def __init__(self, num_nodes: int, adjacency: np.ndarray,
                 history: int = 12, horizon: int = 12, in_features: int = 2,
                 seed: int = 0, hidden_size: int = 16, num_layers: int = 2,
                 max_diffusion_step: int = 2, tf_ratio: float = 0.5,
                 scheduled_sampling_decay: float | None = None):
        super().__init__(num_nodes, adjacency, history, horizon, in_features, seed)
        rng = np.random.default_rng(seed)
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.tf_ratio = tf_ratio
        self.scheduled_sampling_decay = scheduled_sampling_decay
        self._global_step = 0
        self._tf_rng = np.random.default_rng(seed + 7919)
        self.encoder = ModuleList(
            [DCGRUCell(adjacency, in_features if i == 0 else hidden_size,
                       hidden_size, max_diffusion_step, rng=rng)
             for i in range(num_layers)])
        self.decoder = ModuleList(
            [DCGRUCell(adjacency, 1 if i == 0 else hidden_size,
                       hidden_size, max_diffusion_step, rng=rng)
             for i in range(num_layers)])
        self.projection = Linear(hidden_size, 1, rng=rng)

    # ------------------------------------------------------------------ #
    def _encode(self, x: Tensor) -> list[Tensor]:
        batch = x.shape[0]
        hidden = [Tensor(np.zeros((batch, self.num_nodes, self.hidden_size)))
                  for _ in range(self.num_layers)]
        for step in F.unbind(x, axis=1):
            for layer, cell in enumerate(self.encoder):
                hidden[layer] = cell(step, hidden[layer])
                step = hidden[layer]
        return hidden

    def _decode(self, hidden: list[Tensor], batch: int,
                teacher: Tensor | None = None) -> Tensor:
        go = Tensor(np.zeros((batch, self.num_nodes, 1)))
        step_input = go
        outputs = []
        for t in range(self.horizon):
            step = step_input
            for layer, cell in enumerate(self.decoder):
                hidden[layer] = cell(step, hidden[layer])
                step = hidden[layer]
            prediction = self.projection(step)         # (B, N, 1)
            outputs.append(prediction.squeeze(2))
            use_teacher = (teacher is not None and self.training
                           and self._tf_rng.random()
                           < self._teacher_probability())
            if use_teacher:
                step_input = teacher[:, t].expand_dims(2)
            else:
                step_input = prediction
        return F.stack(outputs, axis=1)                # (B, T, N)

    def _teacher_probability(self) -> float:
        """Fixed ratio, or the DCRNN inverse-sigmoid curriculum."""
        if self.scheduled_sampling_decay is None:
            return self.tf_ratio
        k = self.scheduled_sampling_decay
        return k / (k + np.exp(min(self._global_step / k, 500.0)))

    def forward(self, x: Tensor) -> Tensor:
        self._validate_input(x)
        hidden = self._encode(x)
        return self._decode(hidden, x.shape[0])

    def training_loss(self, x: Tensor, y_scaled: Tensor,
                      null_mask: np.ndarray | None = None) -> Tensor:
        hidden = self._encode(x)
        prediction = self._decode(hidden, x.shape[0], teacher=y_scaled)
        self._global_step += 1
        return masked_mae(prediction, y_scaled, null_value=None)
