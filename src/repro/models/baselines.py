"""Naive baselines (extension beyond the paper's eight models).

These anchor the benchmark: any deep model should beat LastValue at short
horizons and HistoricalAverage at long horizons, and the difficult-interval
degradation of LastValue is a useful reference for how much of the models'
degradation is irreducible.
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn.layers import Linear
from ..nn.module import Parameter
from ..nn.tensor import Tensor
from .base import TrafficModel, register_model

__all__ = ["LastValue", "HistoricalAverage", "LinearRegression"]


@register_model("last-value")
class LastValue(TrafficModel):
    """Persist the most recent observation across the whole horizon."""

    def forward(self, x: Tensor) -> Tensor:
        self._validate_input(x)
        last = x[:, -1, :, 0]                     # (B, N)
        frames = [last for _ in range(self.horizon)]
        return F.stack(frames, axis=1)

    def training_loss(self, x, y_scaled, null_mask=None):
        # Nothing to learn; return a constant zero so the trainer is a no-op.
        return Tensor(np.zeros(()), requires_grad=False)


@register_model("historical-average")
class HistoricalAverage(TrafficModel):
    """Predict the mean of the input window for every horizon step."""

    def forward(self, x: Tensor) -> Tensor:
        self._validate_input(x)
        mean = x[:, :, :, 0].mean(axis=1)         # (B, N)
        frames = [mean for _ in range(self.horizon)]
        return F.stack(frames, axis=1)

    def training_loss(self, x, y_scaled, null_mask=None):
        return Tensor(np.zeros(()), requires_grad=False)


@register_model("linear")
class LinearRegression(TrafficModel):
    """Per-node-agnostic linear map from the input window to the horizon."""

    def __init__(self, num_nodes: int, adjacency: np.ndarray,
                 history: int = 12, horizon: int = 12, in_features: int = 2,
                 seed: int = 0):
        super().__init__(num_nodes, adjacency, history, horizon, in_features, seed)
        rng = np.random.default_rng(seed)
        self.fc = Linear(history * in_features, horizon, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        self._validate_input(x)
        batch = x.shape[0]
        flat = x.transpose(0, 2, 1, 3).reshape(
            batch, self.num_nodes, self.history * self.in_features)
        out = self.fc(flat)                        # (B, N, horizon)
        return out.transpose(0, 2, 1)
