"""The eight benchmark models (paper Sec. IV-A) plus naive baselines.

Importing this package registers every model; use
:func:`repro.models.create_model` to instantiate by name:

- ``stgcn`` — spectral GCN + gated temporal conv, many-to-one
- ``dcrnn`` — diffusion-convolutional GRU seq2seq
- ``astgcn`` — attention-modulated Chebyshev GCN
- ``st-metanet`` — meta-learned GRU/GAT seq2seq
- ``graph-wavenet`` — dilated TCN + adaptive-adjacency diffusion GCN
- ``stg2seq`` — gated graph-conv sequence model with attention output
- ``stsgcn`` — spatial-temporal synchronous GCN, per-step heads
- ``gman`` — graph multi-attention with transform attention
- baselines: ``last-value``, ``historical-average``, ``linear``,
  ``gru-seq2seq`` (graph-free ablation), ``fc-lstm`` (classical FC-LSTM)
"""

from .astgcn import ASTGCN
from .base import (MODEL_REGISTRY, TrafficModel, create_model, model_names,
                   register_model)
from .baselines import HistoricalAverage, LastValue, LinearRegression
from .dcrnn import DCRNN
from .fclstm import FCLSTM
from .gman import GMAN
from .graph_conv import ChebConv, DiffusionConv, cheb_supports, diffusion_supports
from .graph_wavenet import GraphWaveNet
from .gru_seq2seq import GRUSeq2Seq
from .stg2seq import STG2Seq
from .stgcn import STGCN
from .stmetanet import STMetaNet
from .stsgcn import STSGCN

PAPER_MODELS = ("stgcn", "dcrnn", "astgcn", "st-metanet", "graph-wavenet",
                "stg2seq", "stsgcn", "gman")

__all__ = [
    "TrafficModel", "create_model", "model_names", "register_model",
    "MODEL_REGISTRY", "PAPER_MODELS",
    "STGCN", "DCRNN", "ASTGCN", "STMetaNet", "GraphWaveNet", "STG2Seq",
    "STSGCN", "GMAN", "GRUSeq2Seq", "FCLSTM",
    "LastValue", "HistoricalAverage", "LinearRegression",
    "ChebConv", "DiffusionConv", "cheb_supports", "diffusion_supports",
]
