"""Hierarchical span tracing over the event bus.

:func:`span` is a context manager that times a named region and, on
exit, publishes a :class:`repro.obs.events.SpanEvent` to the bus.  Spans
nest: the open span is tracked in a :mod:`contextvars` variable, so
children record their parent's id automatically and code running in a
fresh thread (or a copied context) starts a new root rather than
attaching to an unrelated span.  Durations come from
:func:`time.perf_counter` (monotonic); the wall-clock open time travels
alongside for timeline export.

The whole stack is instrumented with a small, stable taxonomy —
``experiment/run`` > ``train/fit`` > ``train/epoch`` > ``train/batch`` >
``train/forward|backward|optim``, plus ``data/*`` for loading/gathering
and ``kernel/*`` for the convolution dispatch seam — and all of it costs
(nearly) nothing when nobody listens: when the target bus has no sinks,
:func:`span` returns a shared no-op object and does no clock reads, no
allocation, and no emission.  ``repro bench obs`` holds that overhead to
≤2% of an untraced training step.

Reading traces back, :class:`SpanTree` reconstructs the hierarchy from
any event stream (spans arrive innermost-first because children close
before parents; orphans from crashed runs are promoted to roots), and
:func:`span_report` renders a per-label self-time/total-time table —
the "where does an epoch actually go?" view.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

from .events import Event, EventBus, SpanEvent, get_bus

__all__ = [
    "Span", "span", "current_span", "spans_enabled", "disable_spans",
    "SpanNode", "SpanTree", "span_report",
]

_CURRENT: ContextVar["Span | None"] = ContextVar(
    "repro_obs_current_span", default=None)
_IDS = itertools.count(1)
_DISABLED = 0          # nesting depth of disable_spans() scopes


class _NullSpan:
    """Shared no-op stand-in handed out when tracing is off."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __repr__(self) -> str:   # pragma: no cover - debug aid
        return "<span disabled>"


_NULL = _NullSpan()


class Span:
    """One *open* span: label, parent linkage, and attached attributes.

    Created by :func:`span`; not instantiated directly.  ``set(**attrs)``
    merges attributes into the span before it closes (e.g. a cache probe
    recording whether it hit).
    """

    __slots__ = ("label", "span_id", "parent_id", "depth", "attrs")

    def __init__(self, label: str, parent: "Span | None",
                 attrs: dict[str, Any]):
        self.label = label
        self.span_id = f"{next(_IDS):x}"
        self.parent_id = parent.span_id if parent is not None else ""
        self.depth = parent.depth + 1 if parent is not None else 0
        self.attrs = attrs

    def set(self, **attrs: Any) -> "Span":
        """Attach/overwrite attributes; returns the span for chaining."""
        self.attrs.update(attrs)
        return self

    def __repr__(self) -> str:   # pragma: no cover - debug aid
        return f"<Span {self.label} id={self.span_id}>"


class span:
    """Open a nested, timed span around a ``with`` block.

    ::

        with span("train/batch", batch=3, size=32) as sp:
            ...
            sp.set(loss=float(loss.item()))

    ``bus`` defaults to the ambient bus (:func:`repro.obs.get_bus`).  When
    that bus has no sinks — or tracing is suppressed via
    :func:`disable_spans` — the block runs untraced at near-zero cost and
    ``as sp`` binds a shared no-op object whose ``set`` does nothing.

    On exit the completed span is emitted as a ``span`` event.  If the
    block raised, the span's ``status`` is ``"error"`` and ``error``
    summarises the exception; the exception always propagates, so every
    enclosing span unwinds (and marks itself ``error``) in child-first
    order.
    """

    __slots__ = ("_label", "_bus", "_attrs", "_span", "_token",
                 "_t0", "_t_wall")

    def __init__(self, label: str, *, bus: EventBus | None = None,
                 **attrs: Any):
        self._label = label
        self._bus = bus
        self._attrs = attrs
        self._span: Span | None = None

    def __enter__(self) -> Span | _NullSpan:
        bus = self._bus if self._bus is not None else get_bus()
        if _DISABLED or not bus.has_sinks:
            return _NULL
        self._bus = bus
        self._span = Span(self._label, _CURRENT.get(), dict(self._attrs))
        self._token = _CURRENT.set(self._span)
        self._t_wall = time.time()
        self._t0 = time.perf_counter()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        sp = self._span
        if sp is None:                       # no-op path
            return False
        seconds = time.perf_counter() - self._t0
        _CURRENT.reset(self._token)
        self._span = None
        if exc_type is None:
            status, error = "ok", ""
        else:
            status = "error"
            error = f"{exc_type.__name__}: {exc}"
        self._bus.emit(SpanEvent(
            label=sp.label, span_id=sp.span_id, parent_id=sp.parent_id,
            t_start=self._t_wall, seconds=seconds, status=status,
            error=error, depth=sp.depth, thread=threading.get_ident(),
            attrs=sp.attrs))
        return False                          # never swallow exceptions


def current_span() -> Span | None:
    """The innermost open (recorded) span in this context, or ``None``."""
    return _CURRENT.get()


def spans_enabled(bus: EventBus | None = None) -> bool:
    """Would :func:`span` record right now on ``bus`` (ambient default)?"""
    if _DISABLED:
        return False
    bus = bus if bus is not None else get_bus()
    return bus.has_sinks


@contextlib.contextmanager
def disable_spans():
    """Force :func:`span` onto its no-op path inside the block.

    Used by the overhead benchmark (``repro bench obs``) to measure a
    genuinely untraced training step even while sinks are attached, and
    available to callers who want a hot region excluded from a trace.
    Nests; re-enables when the outermost scope exits.
    """
    global _DISABLED
    _DISABLED += 1
    try:
        yield
    finally:
        _DISABLED -= 1


# --------------------------------------------------------------------- #
# Reconstruction: SpanTree + report
# --------------------------------------------------------------------- #
@dataclass
class SpanNode:
    """One reconstructed span plus its children (see :class:`SpanTree`)."""

    event: SpanEvent
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def label(self) -> str:
        """The span's label (e.g. ``"train/epoch"``)."""
        return self.event.label

    @property
    def seconds(self) -> float:
        """Total (inclusive) duration of the span."""
        return self.event.seconds

    @property
    def self_seconds(self) -> float:
        """Duration not accounted for by recorded children (clamped ≥0)."""
        return max(0.0, self.event.seconds
                   - sum(c.event.seconds for c in self.children))


class SpanTree:
    """The span hierarchy of a trace, rebuilt from ``span`` events.

    Accepts any iterable of events (other kinds are ignored).  Because a
    JSONL trace lists spans innermost-first — children close, and are
    written, before their parents — a crashed run's prefix is missing the
    *outer* spans; their completed children are promoted to roots, so a
    partial trace still yields a valid (forest-shaped) tree.
    """

    def __init__(self, events: Iterable[Event]):
        spans = [e for e in events if isinstance(e, SpanEvent)]
        self.nodes: dict[str, SpanNode] = {
            e.span_id: SpanNode(e) for e in spans}
        self.roots: list[SpanNode] = []
        for e in spans:
            node = self.nodes[e.span_id]
            parent = self.nodes.get(e.parent_id) if e.parent_id else None
            if parent is None:
                self.roots.append(node)
            else:
                parent.children.append(node)
        for node in self.nodes.values():
            node.children.sort(key=lambda n: n.event.t_start)
        self.roots.sort(key=lambda n: n.event.t_start)

    @classmethod
    def from_trace(cls, path: str | Path) -> "SpanTree":
        """Build a tree from a JSONL trace file (unknown kinds skipped)."""
        from .trace import read_trace     # lazy: trace imports events only
        return cls(read_trace(path))

    def __len__(self) -> int:
        return len(self.nodes)

    def walk(self) -> Iterator[tuple[SpanNode, int]]:
        """Yield ``(node, depth)`` depth-first over every root."""
        stack = [(node, 0) for node in reversed(self.roots)]
        while stack:
            node, depth = stack.pop()
            yield node, depth
            stack.extend((child, depth + 1)
                         for child in reversed(node.children))

    def aggregate(self) -> dict[str, dict[str, float]]:
        """Per-label totals: count, total/self seconds, error count."""
        table: dict[str, dict[str, float]] = {}
        for node, _ in self.walk():
            row = table.setdefault(node.label, {
                "count": 0, "total_seconds": 0.0,
                "self_seconds": 0.0, "errors": 0})
            row["count"] += 1
            row["total_seconds"] += node.seconds
            row["self_seconds"] += node.self_seconds
            row["errors"] += 1 if node.event.status != "ok" else 0
        return table


def span_report(source: str | Path | Iterable[Event] | SpanTree,
                style: str = "plain") -> str:
    """Self-time/total-time table per span label, heaviest self-time first.

    ``source`` may be a trace path, an iterable of events, or a prebuilt
    :class:`SpanTree`.  Returns ``"(no spans recorded)"`` for spanless
    input.  ``style`` is forwarded to :func:`repro.core.report.format_table`
    (``plain``, ``markdown``, or ``csv``).
    """
    from ..core.report import format_table    # lazy: avoids an import cycle

    if isinstance(source, SpanTree):
        tree = source
    elif isinstance(source, (str, Path)):
        tree = SpanTree.from_trace(source)
    else:
        tree = SpanTree(source)
    if not tree.nodes:
        return "(no spans recorded)"
    table = tree.aggregate()
    order = sorted(table.items(),
                   key=lambda kv: kv[1]["self_seconds"], reverse=True)
    rows = []
    for label, row in order:
        count = int(row["count"])
        rows.append([
            label, str(count),
            f"{row['self_seconds']:.4f}", f"{row['total_seconds']:.4f}",
            f"{row['total_seconds'] / count * 1e3:.2f}",
            str(int(row["errors"])),
        ])
    header = f"{len(tree.nodes)} spans, {len(tree.roots)} root(s)"
    return header + "\n" + format_table(
        ["span", "count", "self s", "total s", "avg ms", "errors"],
        rows, style=style)
