"""Run manifests: one ``run.json`` per experiment, enough to reproduce it.

A manifest freezes everything Table III-style bookkeeping needs and that a
trace alone does not carry: the full :class:`~repro.core.TrainingConfig`,
model and dataset identity, seed, parameter count, wall time, peak RSS,
and the library/interpreter versions the run executed under.  DL-Traff-
style benchmark reproductions live or die by exactly this bookkeeping, so
:func:`run_experiment` writes one whenever given ``manifest_path=``.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict, dataclass, field, is_dataclass
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["MANIFEST_SCHEMA_VERSION", "RunManifest", "build_manifest",
           "write_manifest", "read_manifest", "peak_rss_kb",
           "normalize_ru_maxrss"]

MANIFEST_SCHEMA_VERSION = 1

# Fields a manifest must always carry (checked by tests and readers).
REQUIRED_FIELDS = ("schema_version", "model", "dataset", "seed", "config",
                   "num_parameters", "wall_seconds", "repro_version")


def normalize_ru_maxrss(raw: float, system: str | None = None) -> int:
    """Normalise a raw ``ru_maxrss`` reading to KiB.

    POSIX leaves the unit unspecified and platforms disagree: Linux (and
    most BSDs) report KiB, macOS reports bytes.  ``system`` defaults to
    :func:`platform.system`; pass it explicitly to test either path.
    """
    system = system if system is not None else platform.system()
    raw = int(raw)
    return raw // 1024 if system == "Darwin" else raw


def peak_rss_kb() -> int | None:
    """Peak resident set size of this process in KiB (``None`` where the
    ``resource`` module is unavailable, e.g. non-unix platforms)."""
    try:
        import resource
    except ImportError:                                # pragma: no cover
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return normalize_ru_maxrss(peak)


@dataclass
class RunManifest:
    """Everything needed to identify, cost, and re-run one experiment."""

    model: str
    dataset: str
    seed: int
    config: dict
    num_parameters: int
    wall_seconds: float
    schema_version: int = MANIFEST_SCHEMA_VERSION
    peak_rss_kb: int | None = None
    repro_version: str = ""
    numpy_version: str = ""
    python_version: str = ""
    created_unix: float = 0.0
    best_epoch: int = -1
    best_val_mae: float | None = None
    test_mae_15: float | None = None
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "RunManifest":
        """Inverse of :meth:`to_dict`; unknown keys land in ``extra``."""
        known = {f for f in cls.__dataclass_fields__}
        kwargs = {k: v for k, v in payload.items() if k in known}
        unknown = {k: v for k, v in payload.items() if k not in known}
        if unknown:
            kwargs.setdefault("extra", {}).update(unknown)
        return cls(**kwargs)


def build_manifest(model: str, dataset: str, seed: int, config: Any,
                   num_parameters: int, wall_seconds: float,
                   best_epoch: int = -1,
                   best_val_mae: float | None = None,
                   test_mae_15: float | None = None,
                   extra: dict | None = None) -> RunManifest:
    """Assemble a :class:`RunManifest` with environment fields filled in.

    ``config`` may be the :class:`~repro.core.TrainingConfig` dataclass or
    an already-flattened dict.
    """
    from .. import __version__                      # lazy: avoids a cycle

    if is_dataclass(config) and not isinstance(config, type):
        config = asdict(config)
    return RunManifest(
        model=model, dataset=dataset, seed=seed, config=dict(config),
        num_parameters=num_parameters, wall_seconds=wall_seconds,
        peak_rss_kb=peak_rss_kb(),
        repro_version=__version__,
        numpy_version=np.__version__,
        python_version=platform.python_version(),
        created_unix=time.time(),
        best_epoch=best_epoch, best_val_mae=best_val_mae,
        test_mae_15=test_mae_15, extra=extra or {})


def write_manifest(path: str | Path, manifest: RunManifest) -> Path:
    """Write ``manifest`` as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest.to_dict(), indent=2, sort_keys=True)
                    + "\n", encoding="utf-8")
    return path


def read_manifest(path: str | Path) -> RunManifest:
    """Load a manifest written by :func:`write_manifest`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    missing = [key for key in REQUIRED_FIELDS if key not in payload]
    if missing:
        raise ValueError(f"manifest {path} is missing required fields: "
                         f"{missing}")
    return RunManifest.from_dict(payload)
