"""Timers, counters, and profiled regions that publish to the event bus.

These wrap the op-census profiler (:mod:`repro.nn.profiler`) and plain
wall-clock timing so any training region — an epoch, a forward pass, a
custom loop — can emit a :class:`~repro.obs.ProfileSnapshot` with per-op
node/element breakdowns, instead of printing ad-hoc numbers.
"""

from __future__ import annotations

import contextlib
import time
from collections import Counter as _Counter

from ..nn.profiler import ProfileReport, profile
from .events import EventBus, ProfileSnapshot, get_bus

__all__ = ["Timer", "Counter", "profile_region", "snapshot_from_report"]


class Timer:
    """Accumulating wall-clock timer.

    Use as a (re-entrant across laps) context manager; ``seconds`` is the
    running total and ``laps`` the per-use durations::

        timer = Timer()
        for batch in loader:
            with timer:
                step(batch)
        timer.seconds, timer.mean_lap
    """

    def __init__(self):
        self.laps: list[float] = []
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._start is not None:
            self.laps.append(time.perf_counter() - self._start)
            self._start = None

    @property
    def seconds(self) -> float:
        return float(sum(self.laps))

    @property
    def mean_lap(self) -> float:
        return self.seconds / len(self.laps) if self.laps else 0.0


class Counter:
    """Named monotonic counters (batches seen, checkpoints written, ...)."""

    def __init__(self):
        self._counts: _Counter[str] = _Counter()

    def increment(self, name: str, by: int = 1) -> int:
        """Add ``by`` to ``name``; returns the new value."""
        self._counts[name] += by
        return self._counts[name]

    def value(self, name: str) -> int:
        return self._counts[name]

    def as_dict(self) -> dict[str, int]:
        return dict(self._counts)


def snapshot_from_report(label: str, report: ProfileReport,
                         top: int = 8) -> ProfileSnapshot:
    """Convert an op-census :class:`ProfileReport` into a bus event."""
    top_ops = {name: {"count": stats.count, "elements": stats.elements}
               for name, stats in report.top(top)}
    return ProfileSnapshot(label=label, wall_seconds=report.wall_seconds,
                           total_nodes=report.total_nodes,
                           total_elements=report.total_elements,
                           top_ops=top_ops)


@contextlib.contextmanager
def profile_region(label: str, bus: EventBus | None = None, top: int = 8):
    """Op-census a region and emit the result as a :class:`ProfileSnapshot`.

    Yields the live :class:`~repro.nn.profiler.ProfileReport`; on exit the
    aggregated census is published to ``bus`` (ambient bus by default)::

        with profile_region("forward+backward"):
            loss = model.training_loss(x, y)
            loss.backward()
    """
    bus = bus or get_bus()
    with profile() as report:
        yield report
    bus.emit(snapshot_from_report(label, report, top=top))
