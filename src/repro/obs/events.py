"""Typed telemetry events and the bus that fans them out to sinks.

The experiment runner emits one event per interesting moment of a run —
:class:`RunStarted`, :class:`BatchEnd`, :class:`EpochEnd`,
:class:`EvalDone`, :class:`CheckpointSaved`, :class:`RunFinished`, and
:class:`ProfileSnapshot` for op-census regions — onto an
:class:`EventBus`.  Sinks subscribe to the bus and decide what to do with
the stream: :class:`ConsoleSink` prints human-readable lines (the old
``verbose=True`` output is exactly one console sink filtered to
``epoch_end``), :class:`JSONLSink` appends one JSON object per event to a
trace file, and :class:`MemorySink` records events for tests and
programmatic inspection.

Every event serialises to a flat JSON-safe dict via :func:`event_to_record`
(``{"event": <kind>, "t": <unix time>, ...fields}``) and parses back with
:func:`event_from_record`, so a JSONL trace round-trips losslessly.

A process-wide ambient bus (:func:`get_bus`, :func:`bus_scope`) lets
callers instrument code they do not own: ``train_model`` and friends fall
back to the ambient bus when no explicit ``bus=`` is passed, and emitting
on a bus with no sinks is a cheap no-op.
"""

from __future__ import annotations

import contextlib
import json
import sys
import time
import warnings
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Any, Callable, ClassVar, Iterable, TextIO

__all__ = [
    "Event", "RunStarted", "BatchEnd", "EpochEnd", "EvalDone",
    "CheckpointSaved", "RunFinished", "ProfileSnapshot", "KernelBench",
    "GradClip", "OptimBench", "DataBench", "ObsBench",
    "CacheHit", "CacheMiss", "DatasetBuild", "SpanEvent", "MetricsSnapshot",
    "EVENT_KINDS", "event_to_record", "event_from_record",
    "EventBus", "ConsoleSink", "JSONLSink", "MemorySink",
    "get_bus", "bus_scope",
]


# --------------------------------------------------------------------- #
# Events
# --------------------------------------------------------------------- #
@dataclass
class Event:
    """Base telemetry event; ``kind`` identifies the concrete type and
    ``t`` is the unix wall-clock creation time."""

    kind: ClassVar[str] = "event"
    t: float = field(default_factory=time.time, kw_only=True)


@dataclass
class RunStarted(Event):
    """One ``run_experiment`` cell begins: identity + frozen config."""

    kind: ClassVar[str] = "run_started"
    model: str = ""
    dataset: str = ""
    seed: int = 0
    num_parameters: int = 0
    config: dict = field(default_factory=dict)


@dataclass
class BatchEnd(Event):
    """One optimisation step finished (loss is the batch training loss)."""

    kind: ClassVar[str] = "batch_end"
    epoch: int = 0
    batch: int = 0
    loss: float = 0.0


@dataclass
class EpochEnd(Event):
    """One training epoch finished, validation already scored."""

    kind: ClassVar[str] = "epoch_end"
    epoch: int = 0
    total_epochs: int = 0
    train_loss: float = 0.0
    val_mae: float = 0.0
    seconds: float = 0.0


@dataclass
class EvalDone(Event):
    """Held-out test evaluation finished.

    ``full`` and ``difficult`` map horizon minutes (as string keys, for
    JSON stability) to ``{"mae": .., "rmse": .., "mape": ..}`` dicts.
    """

    kind: ClassVar[str] = "eval_done"
    inference_seconds: float = 0.0
    num_parameters: int = 0
    full: dict = field(default_factory=dict)
    difficult: dict = field(default_factory=dict)


@dataclass
class CheckpointSaved(Event):
    """A model/optimizer checkpoint was written to disk."""

    kind: ClassVar[str] = "checkpoint_saved"
    path: str = ""
    num_arrays: int = 0


@dataclass
class RunFinished(Event):
    """One ``run_experiment`` cell completed end to end."""

    kind: ClassVar[str] = "run_finished"
    model: str = ""
    dataset: str = ""
    seed: int = 0
    wall_seconds: float = 0.0
    best_epoch: int = -1
    best_val_mae: float = float("nan")


@dataclass
class ProfileSnapshot(Event):
    """Op census of a profiled region (see :func:`repro.obs.profile_region`).

    ``top_ops`` maps op name to ``{"count": .., "elements": ..}`` for the
    heaviest ops in the region.
    """

    kind: ClassVar[str] = "profile"
    label: str = ""
    wall_seconds: float = 0.0
    total_nodes: int = 0
    total_elements: int = 0
    top_ops: dict = field(default_factory=dict)


@dataclass
class GradClip(Event):
    """Gradient clipping actually rescaled the gradients this step.

    Emitted by the training engine only when the pre-clip global norm
    exceeded ``max_norm`` (quiet steps emit nothing), so a trace shows
    exactly where training was running hot.
    """

    kind: ClassVar[str] = "grad_clip"
    epoch: int = 0
    batch: int = 0
    norm: float = 0.0
    max_norm: float = 0.0


@dataclass
class OptimBench(Event):
    """One optimizer benchmark case: reference-loop vs fused timings.

    Emitted by :mod:`repro.nn.optim_bench` for every case; ``meta``
    carries the case's parameter-list geometry.
    """

    kind: ClassVar[str] = "optim_bench"
    name: str = ""
    mode: str = "quick"
    reference_seconds: float = 0.0
    fast_seconds: float = 0.0
    speedup: float = 0.0
    meta: dict = field(default_factory=dict)


@dataclass
class KernelBench(Event):
    """One kernel benchmark case: reference vs. optimised timings.

    Emitted by :mod:`repro.nn.kernel_bench` for every microbenchmark and
    model-step case; ``meta`` carries the case's shapes/parameters.
    """

    kind: ClassVar[str] = "kernel_bench"
    name: str = ""
    mode: str = "quick"
    reference_seconds: float = 0.0
    fast_seconds: float = 0.0
    speedup: float = 0.0
    meta: dict = field(default_factory=dict)


@dataclass
class DataBench(Event):
    """One data-pipeline benchmark case: reference vs. optimised timings.

    Emitted by :mod:`repro.datasets.data_bench` for every case (cold vs.
    cached dataset loads, eager vs. lazy window pipelines); ``meta``
    carries case-specific measurements such as batches/sec and peak
    memory under both pipelines.
    """

    kind: ClassVar[str] = "data_bench"
    name: str = ""
    mode: str = "quick"
    reference_seconds: float = 0.0
    fast_seconds: float = 0.0
    speedup: float = 0.0
    meta: dict = field(default_factory=dict)


@dataclass
class CacheHit(Event):
    """A ``load_dataset`` call was served from the dataset cache."""

    kind: ClassVar[str] = "cache_hit"
    name: str = ""
    scale: str = ""
    key: str = ""
    path: str = ""
    seconds: float = 0.0


@dataclass
class CacheMiss(Event):
    """A ``load_dataset`` call found no cache entry and must build."""

    kind: ClassVar[str] = "cache_miss"
    name: str = ""
    scale: str = ""
    key: str = ""


@dataclass
class DatasetBuild(Event):
    """A dataset world was built from scratch (simulator + windows)."""

    kind: ClassVar[str] = "dataset_build"
    name: str = ""
    scale: str = ""
    num_nodes: int = 0
    num_steps: int = 0
    seconds: float = 0.0
    cached: bool = False       # True when the build was written to the cache


@dataclass
class ObsBench(Event):
    """One observability benchmark case: untraced vs traced timings.

    Emitted by :mod:`repro.obs.obs_bench` for every case; ``meta`` carries
    the measured tracing overhead (``overhead_pct``) so the regression
    gate can hold instrumentation to its ≤2% budget.
    """

    kind: ClassVar[str] = "obs_bench"
    name: str = ""
    mode: str = "quick"
    reference_seconds: float = 0.0
    fast_seconds: float = 0.0
    speedup: float = 0.0
    meta: dict = field(default_factory=dict)


@dataclass
class SpanEvent(Event):
    """One completed span from :func:`repro.obs.spans.span`.

    Emitted when the span closes, so a trace lists children before their
    parents (innermost-first).  ``parent_id`` is empty for roots,
    ``t_start`` is the unix wall-clock open time, ``seconds`` the
    monotonic-clock duration, and ``attrs`` whatever the caller attached
    (batch size, dataset name, ...).  ``status`` is ``"ok"`` or
    ``"error"`` (with ``error`` holding the exception summary).
    """

    kind: ClassVar[str] = "span"
    label: str = ""
    span_id: str = ""
    parent_id: str = ""
    t_start: float = 0.0
    seconds: float = 0.0
    status: str = "ok"
    error: str = ""
    depth: int = 0
    thread: int = 0
    attrs: dict = field(default_factory=dict)


@dataclass
class MetricsSnapshot(Event):
    """A point-in-time dump of a :class:`repro.obs.stats.MetricsRegistry`.

    ``counters``/``gauges`` map metric name to value; ``histograms`` maps
    name to ``{"buckets": [...], "counts": [...], "count": n, "sum": s}``.
    """

    kind: ClassVar[str] = "metrics"
    label: str = ""
    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)


EVENT_KINDS: dict[str, type[Event]] = {
    cls.kind: cls
    for cls in (RunStarted, BatchEnd, EpochEnd, EvalDone, CheckpointSaved,
                RunFinished, ProfileSnapshot, KernelBench, GradClip,
                OptimBench, DataBench, ObsBench, CacheHit, CacheMiss,
                DatasetBuild, SpanEvent, MetricsSnapshot)
}


def event_to_record(event: Event) -> dict[str, Any]:
    """Serialise an event to a flat JSON-safe dict (``event`` key = kind)."""
    record: dict[str, Any] = {"event": event.kind}
    record.update(asdict(event))
    return record


def event_from_record(record: dict[str, Any]) -> Event:
    """Reconstruct the typed event serialised by :func:`event_to_record`."""
    kind = record.get("event")
    cls = EVENT_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown event kind {kind!r}; "
                         f"expected one of {sorted(EVENT_KINDS)}")
    known = {f.name for f in fields(cls)}
    kwargs = {k: v for k, v in record.items() if k in known}
    return cls(**kwargs)


# --------------------------------------------------------------------- #
# Sinks
# --------------------------------------------------------------------- #
class ConsoleSink:
    """Print human-readable lines for events.

    ``kinds`` restricts rendering to a subset of event kinds (``None`` =
    all).  The ``epoch_end`` line reproduces the historical
    ``verbose=True`` training output byte for byte.
    """

    def __init__(self, stream: TextIO | None = None,
                 kinds: Iterable[str] | None = None):
        self.stream = stream
        self.kinds = frozenset(kinds) if kinds is not None else None

    def format(self, event: Event) -> str:
        """One display line for ``event``."""
        if isinstance(event, EpochEnd):
            return (f"  epoch {event.epoch}/{event.total_epochs} "
                    f"loss={event.train_loss:.4f} val_mae={event.val_mae:.4f} "
                    f"({event.seconds:.1f}s)")
        if isinstance(event, RunStarted):
            return (f"[run] {event.model} on {event.dataset} "
                    f"seed={event.seed} params={event.num_parameters:,}")
        if isinstance(event, BatchEnd):
            return (f"    batch {event.batch} epoch {event.epoch} "
                    f"loss={event.loss:.4f}")
        if isinstance(event, EvalDone):
            mae_15 = event.full.get("15", {}).get("mae", float("nan"))
            return (f"[eval] inference={event.inference_seconds:.2f}s "
                    f"mae@15m={mae_15:.3f}")
        if isinstance(event, CheckpointSaved):
            return f"[checkpoint] {event.path} ({event.num_arrays} arrays)"
        if isinstance(event, RunFinished):
            return (f"[done] {event.model} on {event.dataset} "
                    f"seed={event.seed} best_val_mae={event.best_val_mae:.4f} "
                    f"({event.wall_seconds:.1f}s)")
        if isinstance(event, ProfileSnapshot):
            return (f"[profile] {event.label}: {event.total_nodes} nodes, "
                    f"{event.total_elements:,} elements "
                    f"({event.wall_seconds:.4f}s)")
        if isinstance(event, SpanEvent):
            mark = "" if event.status == "ok" else f" ERROR {event.error}"
            return (f"{'  ' * event.depth}[span] {event.label} "
                    f"({event.seconds * 1e3:.2f}ms){mark}")
        if isinstance(event, MetricsSnapshot):
            return (f"[metrics] {event.label or 'snapshot'}: "
                    f"{len(event.counters)} counters, "
                    f"{len(event.gauges)} gauges, "
                    f"{len(event.histograms)} histograms")
        if isinstance(event, (KernelBench, OptimBench, DataBench, ObsBench)):
            return (f"[bench] {event.name}: reference "
                    f"{event.reference_seconds * 1e3:.2f}ms -> "
                    f"{event.fast_seconds * 1e3:.2f}ms "
                    f"({event.speedup:.2f}x)")
        if isinstance(event, CacheHit):
            return (f"[cache] hit {event.name} (scale={event.scale}) "
                    f"key={event.key} ({event.seconds:.2f}s)")
        if isinstance(event, CacheMiss):
            return (f"[cache] miss {event.name} (scale={event.scale}) "
                    f"key={event.key}")
        if isinstance(event, DatasetBuild):
            return (f"[build] {event.name} (scale={event.scale}) "
                    f"{event.num_nodes} nodes x {event.num_steps} steps "
                    f"({event.seconds:.2f}s)"
                    + (" -> cached" if event.cached else ""))
        if isinstance(event, GradClip):
            return (f"    clip epoch {event.epoch} batch {event.batch} "
                    f"norm={event.norm:.3f} -> {event.max_norm:.3f}")
        return f"[{event.kind}]"

    def __call__(self, event: Event) -> None:
        if self.kinds is not None and event.kind not in self.kinds:
            return
        # Resolve the stream at call time so pytest's capsys (which swaps
        # sys.stdout) sees the output.
        stream = self.stream if self.stream is not None else sys.stdout
        print(self.format(event), file=stream)


class JSONLSink:
    """Append one JSON object per event to ``path`` (the trace file).

    The file is opened lazily on the first event and flushed per line so a
    crashed run still leaves a readable prefix.  Use as a sink directly or
    as a context manager (closes the file on exit).
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._handle: TextIO | None = None

    def __call__(self, event: Event) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(event_to_record(event),
                                      sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JSONLSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MemorySink:
    """Record events in memory (tests, notebooks, programmatic analysis)."""

    def __init__(self):
        self.events: list[Event] = []

    def __call__(self, event: Event) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> list[Event]:
        """Recorded events of one kind, in arrival order."""
        return [e for e in self.events if e.kind == kind]

    def clear(self) -> None:
        self.events.clear()


# --------------------------------------------------------------------- #
# Bus
# --------------------------------------------------------------------- #
class EventBus:
    """Fans each emitted event out to every attached sink, in order.

    A sink is any callable taking one :class:`Event`.  Emitting on a bus
    with no sinks is a no-op, so instrumented code costs nothing when
    nobody is listening.  A sink that raises does not abort the emitting
    code or starve later sinks: the exception is caught, a
    :class:`RuntimeWarning` is issued once per sink, and delivery
    continues.
    """

    def __init__(self, sinks: Iterable[Callable[[Event], None]] = ()):
        self._sinks: list[Callable[[Event], None]] = list(sinks)
        self._warned: set[int] = set()

    @property
    def sinks(self) -> tuple[Callable[[Event], None], ...]:
        return tuple(self._sinks)

    @property
    def has_sinks(self) -> bool:
        """True when at least one sink is attached (spans check this to
        skip all bookkeeping on an unobserved bus)."""
        return bool(self._sinks)

    def attach(self, sink: Callable[[Event], None]) -> Callable[[Event], None]:
        """Subscribe ``sink``; returns it for chaining."""
        self._sinks.append(sink)
        return sink

    def detach(self, sink: Callable[[Event], None]) -> None:
        """Unsubscribe ``sink`` (no error if absent)."""
        with contextlib.suppress(ValueError):
            self._sinks.remove(sink)

    def emit(self, event: Event) -> None:
        """Deliver ``event`` to every sink in attachment order.

        Sink failures are isolated: the first exception from each sink
        produces one :class:`RuntimeWarning`; later failures from the
        same sink are swallowed silently, and other sinks always still
        receive the event.
        """
        for sink in self._sinks:
            try:
                sink(event)
            except Exception as exc:
                if id(sink) not in self._warned:
                    self._warned.add(id(sink))
                    warnings.warn(
                        f"telemetry sink {sink!r} raised {exc!r} on a "
                        f"{event.kind!r} event; suppressing further errors "
                        f"from this sink", RuntimeWarning, stacklevel=2)

    @contextlib.contextmanager
    def scoped(self, *sinks: Callable[[Event], None]):
        """Attach ``sinks`` for the duration of a ``with`` block."""
        for sink in sinks:
            self.attach(sink)
        try:
            yield self
        finally:
            for sink in sinks:
                self.detach(sink)

    def close(self) -> None:
        """Close every sink that supports ``close()``."""
        for sink in self._sinks:
            closer = getattr(sink, "close", None)
            if callable(closer):
                closer()


_AMBIENT: list[EventBus] = [EventBus()]


def get_bus() -> EventBus:
    """The current ambient bus (instrumented code's default target)."""
    return _AMBIENT[-1]


@contextlib.contextmanager
def bus_scope(bus: EventBus):
    """Make ``bus`` the ambient bus inside a ``with`` block.

    Lets callers trace code that takes no ``bus=`` argument::

        with bus_scope(EventBus([JSONLSink("trace.jsonl")])):
            run_experiment("stgcn", data, config)
    """
    _AMBIENT.append(bus)
    try:
        yield bus
    finally:
        _AMBIENT.pop()
