"""A metrics registry: named counters, gauges, and fixed-bucket histograms.

Where :mod:`repro.obs.spans` answers "what happened, in order, and how
long did each piece take", the registry answers the aggregate questions
— how many batches ran, what the batch-latency distribution looks like,
what fraction of dataset loads the cache served, how often gradient
clipping fired.  Instrumented code grabs an instrument once and updates
it with plain arithmetic (no locks on the hot path beyond CPython's own
atomicity), and sinks or tests take a point-in-time :meth:`snapshot`,
optionally publishing it to the event bus as a ``metrics`` event.

The stack's built-in instruments:

- ``train/batches`` (counter) and ``train/batch_seconds`` (histogram)
  from :class:`repro.train.Engine`;
- ``train/grad_clip_steps`` / ``train/grad_clip_checks`` (counters) from
  :class:`repro.train.GradClipCallback` — their ratio is the clip rate;
- ``data/batches`` (counter) and ``data/gather_seconds`` (histogram)
  from the :class:`repro.datasets.DataLoader` gather path;
- ``data/cache_hits`` / ``data/cache_misses`` (counters) from
  :func:`repro.datasets.load_dataset` — see :meth:`MetricsRegistry.ratio`.

There is one ambient registry (:func:`get_registry`);
:func:`registry_scope` swaps in a fresh one for a ``with`` block so tests
and benchmark runs observe only their own activity.
"""

from __future__ import annotations

import bisect
import contextlib
from typing import Any, Iterable, Sequence

from .events import EventBus, MetricsSnapshot, get_bus

__all__ = [
    "StatCounter", "Gauge", "Histogram", "MetricsRegistry",
    "LATENCY_BUCKETS", "get_registry", "registry_scope",
]

#: Default histogram buckets for sub-second latencies (upper bounds, s).
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


class StatCounter:
    """A named monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be ≥ 0) to the count."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease "
                             f"(inc({amount}))")
        self.value += amount


class Gauge:
    """A named value that can move in both directions (e.g. resident MB)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = float(value)

    def add(self, delta: float) -> None:
        """Shift the gauge by ``delta`` (either sign)."""
        self.value += float(delta)


class Histogram:
    """Fixed-bucket histogram of observations (cumulative-style buckets).

    ``buckets`` are upper bounds in ascending order; an implicit
    +inf bucket catches the rest.  ``counts[i]`` is the number of
    observations ≤ ``buckets[i]`` exclusive of earlier buckets (i.e.
    per-bucket, not cumulative); ``count``/``total`` track the stream.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total", "_min", "_max")

    def __init__(self, name: str,
                 buckets: Sequence[float] = LATENCY_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name!r} needs ascending buckets, "
                             f"got {buckets!r}")
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)   # +1 = +inf bucket
        self.count = 0
        self.total = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    @property
    def mean(self) -> float:
        """Mean of all observations (NaN when empty)."""
        return self.total / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile as a bucket upper bound.

        Returns NaN when empty; observations past the last bucket report
        the recorded maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if not self.count:
            return float("nan")
        rank = q * self.count
        running = 0
        for i, c in enumerate(self.counts):
            running += c
            if running >= rank and c:
                return self.buckets[i] if i < len(self.buckets) else self._max
        return self._max


class MetricsRegistry:
    """Create-or-fetch registry of named instruments.

    ``counter``/``gauge``/``histogram`` return the existing instrument
    for a name or create it — so call sites need no global wiring, and
    two modules touching ``data/cache_hits`` share one count.
    """

    def __init__(self):
        self._counters: dict[str, StatCounter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> StatCounter:
        """The counter called ``name``, created on first use."""
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = StatCounter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str,
                  buckets: Sequence[float] = LATENCY_BUCKETS) -> Histogram:
        """The histogram called ``name``, created on first use.

        ``buckets`` only applies on creation; a later fetch with
        different buckets raises to catch silent mismatches.
        """
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name, buckets)
        elif inst.buckets != tuple(float(b) for b in buckets):
            raise ValueError(f"histogram {name!r} already exists with "
                             f"different buckets")
        return inst

    def ratio(self, numerator: str, denominator: str) -> float:
        """``numerator / (numerator + denominator)`` over two counters.

        The cache-hit-ratio / clip-rate helper:
        ``ratio("data/cache_hits", "data/cache_misses")``.  NaN when both
        counts are zero.
        """
        a = self.counter(numerator).value
        b = self.counter(denominator).value
        return a / (a + b) if (a + b) else float("nan")

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time JSON-safe dump of every instrument."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {"buckets": list(h.buckets), "counts": list(h.counts),
                    "count": h.count, "sum": h.total}
                for n, h in sorted(self._histograms.items())},
        }

    def publish(self, label: str = "",
                bus: EventBus | None = None) -> MetricsSnapshot:
        """Emit the current snapshot as a ``metrics`` event; returns it."""
        snap = self.snapshot()
        event = MetricsSnapshot(label=label, counters=snap["counters"],
                                gauges=snap["gauges"],
                                histograms=snap["histograms"])
        (bus if bus is not None else get_bus()).emit(event)
        return event

    def reset(self) -> None:
        """Drop every instrument (tests/benchmark isolation)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


_AMBIENT: list[MetricsRegistry] = [MetricsRegistry()]


def get_registry() -> MetricsRegistry:
    """The current ambient registry (instrumented code's default)."""
    return _AMBIENT[-1]


@contextlib.contextmanager
def registry_scope(registry: MetricsRegistry | None = None):
    """Swap in ``registry`` (fresh one by default) for a ``with`` block."""
    _AMBIENT.append(registry if registry is not None else MetricsRegistry())
    try:
        yield _AMBIENT[-1]
    finally:
        _AMBIENT.pop()
