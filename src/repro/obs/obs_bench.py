"""Observability benchmark suite: what does the tracing itself cost?

Instrumentation only earns its keep if it is effectively free when
nobody listens.  This suite measures that contract from three angles:

- ``traced_train_step``   a full :class:`repro.train.Engine` fit (STGCN
  on a CI-scale world) with span instrumentation live-but-unobserved
  (no sinks attached) vs. the same fit with spans force-disabled via
  :func:`repro.obs.disable_spans`.  ``meta.overhead_pct`` records the
  relative cost of tracing an unobserved run — the ≤2% budget the
  regression gate enforces.
- ``span_noop_vs_recorded``  the :func:`repro.obs.span` context manager
  in isolation: recorded spans (a :class:`MemorySink` attached) vs. the
  no-op fast path on a sinkless bus; meta carries ns-per-span both ways.
- ``metrics_registry``    hot-loop histogram updates through a fresh
  registry lookup every iteration vs. the documented hoisted-instrument
  pattern; meta carries ns-per-op both ways.

Every case emits a :class:`repro.obs.ObsBench` event; the CLI front-end
is ``python -m repro bench obs`` (``--json`` records ``BENCH_obs.json``),
and ``repro bench check`` gates the recorded baseline.
"""

from __future__ import annotations

import time

from .events import EventBus, MemorySink, ObsBench, get_bus
from .spans import disable_spans, span
from .stats import MetricsRegistry, registry_scope

__all__ = ["OBS_BENCH_MODES", "bench_obs"]

#: Per-mode workloads.  ``quick`` keeps the suite under a few seconds
#: (the tier-1 smoke test runs it); ``full`` is the recorded
#: configuration behind ``BENCH_obs.json`` and the one with the asserted
#: overhead budget.
OBS_BENCH_MODES: dict[str, dict] = {
    "quick": dict(repeats=2, epochs=1, max_batches=4, batch_size=8,
                  spans=2_000, ops=20_000),
    "full": dict(repeats=5, epochs=1, max_batches=16, batch_size=16,
                 spans=20_000, ops=200_000),
}


def _best_of(step, repeats: int, warmup: bool = True) -> float:
    """Minimum wall time of ``step`` over ``repeats`` runs."""
    if warmup:
        step()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        step()
        best = min(best, time.perf_counter() - start)
    return best


def _interleaved_best(reference_step, fast_step, repeats: int):
    """Best-of timings for two steps, alternating per round.

    Measuring all reference rounds and then all fast rounds bakes slow
    system drift (cache warmth, thermal state) into the ratio; for
    percent-level comparisons like the tracing-overhead budget the two
    sides must sample the same conditions, so alternate them.
    """
    reference_step()
    fast_step()
    reference_best = fast_best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        reference_step()
        reference_best = min(reference_best, time.perf_counter() - start)
        start = time.perf_counter()
        fast_step()
        fast_best = min(fast_best, time.perf_counter() - start)
    return reference_best, fast_best


def _case_traced_train_step(sizes: dict):
    from ..core.experiment import TrainingConfig
    from ..datasets.catalog import load_dataset
    from ..models.base import create_model
    from ..train.engine import Engine

    dataset = load_dataset("pemsd8", scale="ci")
    config = TrainingConfig(epochs=sizes["epochs"],
                            batch_size=sizes["batch_size"],
                            max_batches_per_epoch=sizes["max_batches"],
                            verbose=False)
    silent = EventBus()          # no sinks: spans take the no-op path

    def make_model():
        return create_model(
            "stgcn", dataset.num_nodes, dataset.adjacency,
            history=dataset.supervised.config.history,
            horizon=dataset.supervised.config.horizon,
            in_features=dataset.supervised.train.num_features, seed=0)

    def fit_traced():
        Engine(config).fit(make_model(), dataset, seed=0, bus=silent)

    def fit_untraced():
        with disable_spans():
            Engine(config).fit(make_model(), dataset, seed=0, bus=silent)

    with registry_scope():       # keep bench metrics out of the ambient
        reference, fast = _interleaved_best(fit_untraced, fit_traced,
                                            sizes["repeats"])
    overhead_pct = (fast / reference - 1.0) * 100.0
    meta = {"overhead_pct": round(overhead_pct, 3),
            "model": "stgcn", "dataset": "pemsd8",
            "batches": sizes["max_batches"],
            "batch_size": sizes["batch_size"]}
    return reference, fast, meta


def _case_span_noop_vs_recorded(sizes: dict):
    n = sizes["spans"]
    recording = EventBus([MemorySink()])
    silent = EventBus()

    def spin(bus: EventBus):
        def step():
            for _ in range(n):
                with span("bench/spin", bus=bus):
                    pass
        return step

    reference = _best_of(spin(recording), sizes["repeats"])
    fast = _best_of(spin(silent), sizes["repeats"])
    meta = {"spans": n,
            "recorded_ns_per_span": round(reference / n * 1e9, 1),
            "noop_ns_per_span": round(fast / n * 1e9, 1)}
    return reference, fast, meta


def _case_metrics_registry(sizes: dict):
    n = sizes["ops"]

    def fresh_lookup():
        with registry_scope() as registry:
            for i in range(n):
                registry.histogram("bench/latency").observe(i * 1e-6)

    def hoisted():
        with registry_scope() as registry:
            hist = registry.histogram("bench/latency")
            for i in range(n):
                hist.observe(i * 1e-6)

    reference = _best_of(fresh_lookup, sizes["repeats"])
    fast = _best_of(hoisted, sizes["repeats"])
    meta = {"ops": n,
            "lookup_ns_per_op": round(reference / n * 1e9, 1),
            "hoisted_ns_per_op": round(fast / n * 1e9, 1)}
    return reference, fast, meta


_CASES = [
    ("traced_train_step", _case_traced_train_step),
    ("span_noop_vs_recorded", _case_span_noop_vs_recorded),
    ("metrics_registry", _case_metrics_registry),
]


def bench_obs(mode: str = "quick", bus: EventBus | None = None,
              cases: list[str] | None = None):
    """Run the observability suite; returns per-case timings.

    ``mode`` selects the workload (:data:`OBS_BENCH_MODES`).  Reference
    timings are the *instrumentation-on* side (recorded spans, per-op
    registry lookups, untraced fit for the overhead case — see the
    module docstring), fast timings the cheap path; every case emits an
    :class:`repro.obs.ObsBench` event on ``bus`` (the ambient bus when
    None).  ``cases`` restricts the run to a subset of case names.
    """
    from ..nn.kernel_bench import KernelTiming

    if mode not in OBS_BENCH_MODES:
        raise ValueError(f"unknown bench mode {mode!r}; "
                         f"expected one of {sorted(OBS_BENCH_MODES)}")
    sizes = OBS_BENCH_MODES[mode]
    bus = bus if bus is not None else get_bus()
    selected = _CASES if cases is None else [
        (name, make) for name, make in _CASES if name in set(cases)]
    if cases is not None and len(selected) != len(set(cases)):
        known = {name for name, _ in _CASES}
        raise ValueError(f"unknown bench case(s) {sorted(set(cases) - known)}")

    results = []
    for name, make in selected:
        reference, fast, meta = make(dict(sizes))
        timing = KernelTiming(name=name, reference_seconds=reference,
                              fast_seconds=fast, meta=meta)
        bus.emit(ObsBench(name=name, mode=mode, reference_seconds=reference,
                          fast_seconds=fast, speedup=timing.speedup,
                          meta=meta))
        results.append(timing)
    return results
