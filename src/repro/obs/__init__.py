"""`repro.obs` — experiment telemetry: events, sinks, manifests, traces.

The observability layer for the whole stack (see ``docs/observability.md``):

- :mod:`repro.obs.events` — typed events (:class:`RunStarted`,
  :class:`EpochEnd`, :class:`BatchEnd`, :class:`EvalDone`,
  :class:`CheckpointSaved`, :class:`RunFinished`, :class:`ProfileSnapshot`)
  on an :class:`EventBus` with pluggable sinks (console, JSONL file,
  in-memory recorder).
- :mod:`repro.obs.manifest` — the ``run.json`` writer: config, seed,
  parameter count, wall time, peak RSS, library versions.
- :mod:`repro.obs.metrics` — timers/counters and :func:`profile_region`,
  which publishes op-census breakdowns from :mod:`repro.nn.profiler`.
- :mod:`repro.obs.trace` — JSONL trace parsing, schema validation, and
  ``repro trace summarize``-style reports.

Quickstart::

    from repro.obs import EventBus, JSONLSink
    bus = EventBus([JSONLSink("trace.jsonl")])
    run_experiment("graph-wavenet", data, config, seed=0,
                   bus=bus, manifest_path="run.json")
    bus.close()
"""

from .events import (EVENT_KINDS, BatchEnd, CacheHit, CacheMiss,
                     CheckpointSaved, ConsoleSink, DataBench, DatasetBuild,
                     EpochEnd, EvalDone, Event, EventBus, GradClip,
                     JSONLSink, KernelBench, MemorySink, OptimBench,
                     ProfileSnapshot, RunFinished, RunStarted, bus_scope,
                     event_from_record, event_to_record, get_bus)
from .manifest import (RunManifest, build_manifest, peak_rss_kb,
                       read_manifest, write_manifest)
from .metrics import Counter, Timer, profile_region, snapshot_from_report
from .trace import read_trace, summarize_trace, validate_record, validate_trace

__all__ = [
    "Event", "RunStarted", "BatchEnd", "EpochEnd", "EvalDone",
    "CheckpointSaved", "RunFinished", "ProfileSnapshot", "KernelBench",
    "GradClip", "OptimBench", "DataBench",
    "CacheHit", "CacheMiss", "DatasetBuild",
    "EVENT_KINDS",
    "event_to_record", "event_from_record",
    "EventBus", "ConsoleSink", "JSONLSink", "MemorySink",
    "get_bus", "bus_scope",
    "RunManifest", "build_manifest", "write_manifest", "read_manifest",
    "peak_rss_kb",
    "Timer", "Counter", "profile_region", "snapshot_from_report",
    "read_trace", "validate_record", "validate_trace", "summarize_trace",
]
