"""`repro.obs` — experiment telemetry: events, sinks, manifests, traces.

The observability layer for the whole stack (see ``docs/observability.md``):

- :mod:`repro.obs.events` — typed events (:class:`RunStarted`,
  :class:`EpochEnd`, :class:`BatchEnd`, :class:`EvalDone`,
  :class:`CheckpointSaved`, :class:`RunFinished`, :class:`ProfileSnapshot`)
  on an :class:`EventBus` with pluggable sinks (console, JSONL file,
  in-memory recorder).
- :mod:`repro.obs.manifest` — the ``run.json`` writer: config, seed,
  parameter count, wall time, peak RSS, library versions.
- :mod:`repro.obs.metrics` — timers/counters and :func:`profile_region`,
  which publishes op-census breakdowns from :mod:`repro.nn.profiler`.
- :mod:`repro.obs.trace` — JSONL trace parsing, schema validation, and
  ``repro trace summarize``-style reports.
- :mod:`repro.obs.spans` — nested, thread-correct span tracing
  (:func:`span`, :class:`SpanTree`, :func:`span_report`) over the bus.
- :mod:`repro.obs.stats` — the :class:`MetricsRegistry` of counters,
  gauges, and latency histograms the stack updates while it runs.
- :mod:`repro.obs.export` — Chrome-tracing/Perfetto timeline export.
- :mod:`repro.obs.gate` — the ``repro bench check`` perf-regression gate
  over the committed ``BENCH_*.json`` baselines.
- :mod:`repro.obs.obs_bench` — measures the tracing overhead itself.

Quickstart::

    from repro.obs import EventBus, JSONLSink
    bus = EventBus([JSONLSink("trace.jsonl")])
    run_experiment("graph-wavenet", data, config, seed=0,
                   bus=bus, manifest_path="run.json")
    bus.close()
"""

from .events import (EVENT_KINDS, BatchEnd, CacheHit, CacheMiss,
                     CheckpointSaved, ConsoleSink, DataBench, DatasetBuild,
                     EpochEnd, EvalDone, Event, EventBus, GradClip,
                     JSONLSink, KernelBench, MemorySink, MetricsSnapshot,
                     ObsBench, OptimBench, ProfileSnapshot, RunFinished,
                     RunStarted, SpanEvent, bus_scope, event_from_record,
                     event_to_record, get_bus)
from .export import chrome_trace, write_chrome_trace
from .gate import (GateFinding, GateReport, check_records, find_baselines,
                   load_bench_record, run_and_check)
from .manifest import (RunManifest, build_manifest, normalize_ru_maxrss,
                       peak_rss_kb, read_manifest, write_manifest)
from .metrics import Counter, Timer, profile_region, snapshot_from_report
from .spans import (Span, SpanNode, SpanTree, current_span, disable_spans,
                    span, span_report, spans_enabled)
from .stats import (Gauge, Histogram, MetricsRegistry, StatCounter,
                    get_registry, registry_scope)
from .trace import read_trace, summarize_trace, validate_record, validate_trace

__all__ = [
    "Event", "RunStarted", "BatchEnd", "EpochEnd", "EvalDone",
    "CheckpointSaved", "RunFinished", "ProfileSnapshot", "KernelBench",
    "GradClip", "OptimBench", "DataBench", "ObsBench",
    "CacheHit", "CacheMiss", "DatasetBuild", "SpanEvent", "MetricsSnapshot",
    "EVENT_KINDS",
    "event_to_record", "event_from_record",
    "EventBus", "ConsoleSink", "JSONLSink", "MemorySink",
    "get_bus", "bus_scope",
    "RunManifest", "build_manifest", "write_manifest", "read_manifest",
    "peak_rss_kb", "normalize_ru_maxrss",
    "Timer", "Counter", "profile_region", "snapshot_from_report",
    "read_trace", "validate_record", "validate_trace", "summarize_trace",
    "Span", "span", "current_span", "spans_enabled", "disable_spans",
    "SpanNode", "SpanTree", "span_report",
    "StatCounter", "Gauge", "Histogram", "MetricsRegistry",
    "get_registry", "registry_scope",
    "chrome_trace", "write_chrome_trace",
    "GateFinding", "GateReport", "load_bench_record", "find_baselines",
    "check_records", "run_and_check",
]
