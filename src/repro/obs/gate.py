"""Performance-regression gate over the committed ``BENCH_*.json`` baselines.

PR 2–4 bought real speedups (kernels, fused optimizers, the lazy data
pipeline) and recorded them as ``BENCH_<suite>.json`` files at the repo
root.  This module keeps those wins from rotting silently: it compares a
fresh suite run (or any saved record) against the committed baseline and
fails when a case's speedup has decayed past a tolerance.

Comparisons use the *speedup ratio* (reference ÷ optimised), not raw
seconds — both sides of a ratio move together with machine load and CPU
generation, so ratios transfer across hosts where absolute timings do
not.  Observability-overhead cases (the ``obs`` suite's
``overhead_pct`` meta) are instead held to an absolute budget: tracing
an unobserved training step may cost at most 2%.

Entry points: ``repro bench check`` on the CLI, the
``REPRO_BENCH_CHECK=1`` knob in ``benchmarks/conftest.py``, and
:func:`check_records` / :func:`run_and_check` from Python.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = [
    "DEFAULT_TOLERANCE", "OVERHEAD_BUDGET_PCT", "BENCH_SUITES",
    "GateFinding", "GateReport", "load_bench_record", "find_baselines",
    "check_records", "run_suite", "run_and_check",
]

#: Allowed relative decay of a case's speedup before the gate fails.
DEFAULT_TOLERANCE = 0.25

#: Absolute ceiling (percent) for tracing overhead cases.
OVERHEAD_BUDGET_PCT = 2.0

#: Suites the gate knows how to (re-)run, in canonical order.
BENCH_SUITES = ("kernels", "optim", "data", "obs")


@dataclass
class GateFinding:
    """One per-case verdict from a baseline comparison."""

    suite: str
    case: str
    status: str                    # ok|improved|regression|over_budget|
    #                                missing_case|new_case
    baseline: float | None = None  # baseline speedup (or overhead pct)
    current: float | None = None   # current speedup (or overhead pct)
    detail: str = ""

    @property
    def failed(self) -> bool:
        """True when this finding should fail the gate."""
        return self.status in ("regression", "over_budget", "missing_case")


@dataclass
class GateReport:
    """Outcome of gating one suite against its baseline."""

    suite: str
    mode: str
    tolerance: float
    findings: list[GateFinding] = field(default_factory=list)
    skipped: str = ""              # non-empty reason → nothing was compared

    @property
    def failures(self) -> list[GateFinding]:
        """Findings that fail the gate."""
        return [f for f in self.findings if f.failed]

    @property
    def passed(self) -> bool:
        """True when nothing regressed (a skipped comparison passes)."""
        return not self.failures

    def render(self) -> str:
        """Human-readable verdict table for terminal output."""
        title = f"bench check [{self.suite} @ {self.mode}]"
        if self.skipped:
            return f"{title}: SKIPPED ({self.skipped})"
        header = (f"{'case':<26} {'baseline':>10} {'current':>10} "
                  f"{'status':>12}")
        lines = [title, header, "-" * len(header)]
        for f in self.findings:
            base = "-" if f.baseline is None else f"{f.baseline:.2f}"
            cur = "-" if f.current is None else f"{f.current:.2f}"
            lines.append(f"{f.case:<26} {base:>10} {cur:>10} "
                         f"{f.status:>12}"
                         + (f"  {f.detail}" if f.detail else ""))
        verdict = "PASS" if self.passed else "FAIL"
        lines.append(f"{verdict}: {len(self.failures)} regression(s), "
                     f"tolerance {self.tolerance:.0%}")
        return "\n".join(lines)


def load_bench_record(path: str | Path) -> dict[str, Any]:
    """Load and shape-check one ``BENCH_*.json`` record."""
    path = Path(path)
    try:
        record = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot read bench record {path}: {exc}") from exc
    for key in ("suite", "mode", "timings"):
        if key not in record:
            raise ValueError(f"bench record {path} missing key {key!r}")
    if not isinstance(record["timings"], list):
        raise ValueError(f"bench record {path}: 'timings' must be a list")
    return record


def find_baselines(root: str | Path = ".") -> dict[str, Path]:
    """Map suite name → committed ``BENCH_<suite>.json`` under ``root``."""
    root = Path(root)
    return {suite: path for suite in BENCH_SUITES
            if (path := root / f"BENCH_{suite}.json").exists()}


def _case_finding(suite: str, name: str, base: dict, cur: dict,
                  tolerance: float, overhead_budget: float) -> GateFinding:
    if "overhead_pct" in cur.get("meta", {}):
        pct = float(cur["meta"]["overhead_pct"])
        base_pct = base.get("meta", {}).get("overhead_pct")
        status = "over_budget" if pct > overhead_budget else "ok"
        return GateFinding(
            suite, name, status, baseline=base_pct, current=pct,
            detail=f"overhead {pct:.2f}% vs budget {overhead_budget:.1f}%")
    base_speedup = float(base["speedup"])
    cur_speedup = float(cur["speedup"])
    floor = base_speedup * (1.0 - tolerance)
    if cur_speedup < floor:
        status, detail = "regression", (
            f"speedup {cur_speedup:.2f}x below floor {floor:.2f}x")
    elif cur_speedup > base_speedup * (1.0 + tolerance):
        status, detail = "improved", ""
    else:
        status, detail = "ok", ""
    return GateFinding(suite, name, status,
                       baseline=base_speedup, current=cur_speedup,
                       detail=detail)


def check_records(current: dict[str, Any], baseline: dict[str, Any], *,
                  tolerance: float = DEFAULT_TOLERANCE,
                  overhead_budget_pct: float = OVERHEAD_BUDGET_PCT,
                  ) -> GateReport:
    """Gate ``current`` against ``baseline`` (both bench-record dicts).

    Case speedups may decay at most ``tolerance`` (relative) below the
    baseline; cases carrying ``meta.overhead_pct`` are held to the
    absolute ``overhead_budget_pct`` instead.  A baseline case absent
    from the current run fails (coverage loss); a new current-only case
    is informational.  Records from different modes measure different
    geometries, so the comparison is skipped rather than judged.
    """
    suite = str(baseline.get("suite", "?"))
    mode = str(baseline.get("mode", "?"))
    report = GateReport(suite=suite, mode=mode, tolerance=tolerance)
    if current.get("suite") != baseline.get("suite"):
        report.skipped = (f"suite mismatch: current "
                          f"{current.get('suite')!r} vs baseline {suite!r}")
        return report
    if current.get("mode") != baseline.get("mode"):
        report.skipped = (f"mode mismatch: current {current.get('mode')!r} "
                          f"vs baseline {mode!r}")
        return report
    base_cases = {t["name"]: t for t in baseline["timings"]}
    cur_cases = {t["name"]: t for t in current["timings"]}
    for name, base in base_cases.items():
        cur = cur_cases.get(name)
        if cur is None:
            report.findings.append(GateFinding(
                suite, name, "missing_case",
                baseline=float(base["speedup"]),
                detail="case present in baseline but not in current run"))
        else:
            report.findings.append(_case_finding(
                suite, name, base, cur, tolerance, overhead_budget_pct))
    for name in cur_cases:
        if name not in base_cases:
            report.findings.append(GateFinding(
                suite, name, "new_case",
                current=float(cur_cases[name]["speedup"]),
                detail="no baseline yet"))
    return report


def run_suite(suite: str, mode: str, bus=None) -> list:
    """Run one bench suite fresh; returns its ``KernelTiming`` list.

    Imports lazily so the gate module stays importable without pulling
    the whole model stack in.
    """
    if suite == "kernels":
        from ..nn.kernel_bench import bench_kernels
        return bench_kernels(mode=mode, bus=bus)
    if suite == "optim":
        from ..nn.optim_bench import bench_optim
        return bench_optim(mode=mode, bus=bus)
    if suite == "data":
        from ..datasets.data_bench import bench_data
        return bench_data(mode=mode, bus=bus)
    if suite == "obs":
        from .obs_bench import bench_obs
        return bench_obs(mode=mode, bus=bus)
    raise ValueError(f"unknown bench suite {suite!r}; "
                     f"expected one of {BENCH_SUITES}")


def run_and_check(suite: str, baseline_path: str | Path, *,
                  mode: str | None = None,
                  tolerance: float = DEFAULT_TOLERANCE,
                  bus=None) -> GateReport:
    """Re-run ``suite`` and gate it against the baseline at ``baseline_path``.

    ``mode`` defaults to the baseline's recorded mode so the comparison
    is apples-to-apples.
    """
    from ..nn.kernel_bench import timings_to_record

    baseline = load_bench_record(baseline_path)
    mode = mode if mode is not None else str(baseline["mode"])
    timings = run_suite(suite, mode, bus=bus)
    current = timings_to_record(timings, mode, suite=suite)
    return check_records(current, baseline, tolerance=tolerance)
