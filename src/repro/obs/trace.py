"""Read, validate, and summarize JSONL traces written by :class:`JSONLSink`.

A trace is newline-delimited JSON: one object per event, each carrying an
``event`` kind tag, a unix timestamp ``t``, and the typed event's fields
(see :mod:`repro.obs.events`).  :func:`summarize_trace` renders a recorded
run back into the same table style :mod:`repro.core.report` uses for live
results — the CLI exposes it as ``python -m repro trace summarize``.
"""

from __future__ import annotations

import json
from dataclasses import fields
from pathlib import Path

from .events import (EVENT_KINDS, EpochEnd, EvalDone, Event, RunFinished,
                     RunStarted, event_from_record)

__all__ = ["read_trace", "validate_record", "validate_trace",
           "summarize_trace"]


def read_trace(path: str | Path, *, strict: bool = False,
               problems: list[str] | None = None) -> list[Event]:
    """Parse a JSONL trace into typed events (blank lines are skipped).

    Lines whose ``event`` kind this checkout does not know are *skipped*
    by default — a trace written by a newer version still reads, minus
    the foreign events — with a note appended to ``problems`` when a
    list is supplied.  ``strict=True`` restores the hard error.
    Malformed JSON is always an error: that is a broken file, not a
    version gap.
    """
    events = []
    for line_no, line in enumerate(
            Path(path).read_text(encoding="utf-8").splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}:{line_no}: not valid JSON "
                             f"({error})") from error
        if record.get("event") not in EVENT_KINDS:
            if strict:
                raise ValueError(
                    f"{path}:{line_no}: unknown event kind "
                    f"{record.get('event')!r}; expected one of "
                    f"{sorted(EVENT_KINDS)}")
            if problems is not None:
                problems.append(f"line {line_no}: skipped unknown event "
                                f"kind {record.get('event')!r}")
            continue
        events.append(event_from_record(record))
    return events


def validate_record(record: dict) -> list[str]:
    """Schema-check one trace record; returns problems ([] = valid)."""
    problems = []
    kind = record.get("event")
    cls = EVENT_KINDS.get(kind)
    if cls is None:
        return [f"unknown event kind {kind!r}"]
    for spec in fields(cls):
        if spec.name not in record:
            problems.append(f"{kind}: missing field {spec.name!r}")
    if not isinstance(record.get("t"), (int, float)):
        problems.append(f"{kind}: timestamp 't' is not a number")
    return problems


def validate_trace(path: str | Path) -> list[str]:
    """Schema-check a whole JSONL file; returns per-line problems."""
    problems = []
    for line_no, line in enumerate(
            Path(path).read_text(encoding="utf-8").splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            problems.append(f"line {line_no}: not valid JSON")
            continue
        problems += [f"line {line_no}: {p}" for p in validate_record(record)]
    return problems


# --------------------------------------------------------------------- #
def _group_runs(events: list[Event]) -> list[list[Event]]:
    """Split a trace into per-run chunks at ``run_started`` boundaries.

    Traces that never saw a ``run_started`` (e.g. a bare ``train_model``)
    form one chunk.  Events preceding the first ``run_started`` (dataset
    load spans, cache telemetry) belong to that first run, not to a
    phantom unlabelled one.
    """
    runs: list[list[Event]] = []
    current: list[Event] = []
    for event in events:
        if (isinstance(event, RunStarted)
                and any(isinstance(e, RunStarted) for e in current)):
            runs.append(current)
            current = []
        current.append(event)
    if current:
        runs.append(current)
    return runs


def _summarize_run(run: list[Event]) -> str:
    from ..core.report import format_table    # lazy: avoids an import cycle

    started = next((e for e in run if isinstance(e, RunStarted)), None)
    finished = next((e for e in run if isinstance(e, RunFinished)), None)
    epochs = [e for e in run if isinstance(e, EpochEnd)]
    evals = [e for e in run if isinstance(e, EvalDone)]

    if started is not None:
        title = (f"Trace [{started.model} @ {started.dataset}, "
                 f"seed {started.seed}]")
    else:
        title = "Trace [unlabelled run]"
    lines = [title]

    if epochs:
        rows = [[str(e.epoch), f"{e.train_loss:.4f}", f"{e.val_mae:.4f}",
                 f"{e.seconds:.2f}"] for e in epochs]
        lines.append(format_table(
            ["epoch", "train loss", "val MAE", "seconds"], rows))
    else:
        lines.append("(no epochs recorded)")

    for evaluation in evals:
        horizon_rows = []
        for minutes in sorted(evaluation.full, key=int):
            full = evaluation.full[minutes]
            hard = evaluation.difficult.get(minutes, {})
            horizon_rows.append([
                f"{minutes}m",
                f"{full.get('mae', float('nan')):.3f}",
                f"{full.get('rmse', float('nan')):.3f}",
                f"{full.get('mape', float('nan')):.1f}%",
                f"{hard.get('mae', float('nan')):.3f}",
            ])
        lines.append(format_table(
            ["horizon", "MAE", "RMSE", "MAPE", "hardMAE"], horizon_rows))
        lines.append(f"inference={evaluation.inference_seconds:.2f}s "
                     f"params={evaluation.num_parameters:,}")

    if finished is not None:
        lines.append(f"wall={finished.wall_seconds:.1f}s "
                     f"best_epoch={finished.best_epoch} "
                     f"best_val_mae={finished.best_val_mae:.4f}")
    return "\n".join(lines)


def summarize_trace(source: str | Path | list[Event]) -> str:
    """Render a trace (path or parsed events) as paper-style tables.

    One block per recorded run: the per-epoch convergence table, the
    per-horizon evaluation table, and the run's cost line — the offline
    twin of what :mod:`repro.core.report` renders from live results.
    """
    events = (source if isinstance(source, list) else read_trace(source))
    if not events:
        return "(empty trace)"
    blocks = [_summarize_run(run) for run in _group_runs(events)]
    summary = [f"{len(events)} events, {len(blocks)} run(s)"]
    return "\n\n".join(["\n".join(summary)] + blocks)
