"""Trace export to external timeline viewers.

Converts a recorded event stream into the Chrome Tracing JSON format —
loadable in Perfetto (https://ui.perfetto.dev), ``chrome://tracing``, or
anything else that speaks the Trace Event spec.  Spans become ``"X"``
(complete) events with microsecond ``ts``/``dur``; every other telemetry
event (epoch ends, cache hits, checkpoints, ...) becomes an ``"i"``
(instant) marker so the training curve and the cache behaviour line up
on the same timeline as the span hierarchy.

The CLI wrapper is ``repro trace export <trace.jsonl> --format chrome``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from .events import Event, SpanEvent, event_to_record

__all__ = ["chrome_trace", "write_chrome_trace"]

_PID = 1          # single-process tool: one constant pid


def _category(label: str) -> str:
    """Trace-viewer category = the taxonomy's top segment (``train/...``)."""
    return label.split("/", 1)[0] if "/" in label else label


def chrome_trace(events: Iterable[Event]) -> dict[str, Any]:
    """Build a Chrome-tracing JSON object from typed events.

    Spans map to complete (``"X"``) slices — ``ts`` is the wall-clock
    open time and ``dur`` the monotonic duration, both in microseconds,
    with status/attrs under ``args``.  Other events map to instant
    (``"i"``) markers at their creation time.  Thread idents are
    renumbered to small ``tid`` values with ``"M"`` metadata naming them.
    """
    trace_events: list[dict[str, Any]] = []
    tids: dict[int, int] = {}

    def tid_for(ident: int) -> int:
        tid = tids.get(ident)
        if tid is None:
            tid = tids[ident] = len(tids) + 1
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": _PID, "tid": tid,
                "args": {"name": f"thread-{tid}" if tid > 1 else "main"},
            })
        return tid

    for event in events:
        if isinstance(event, SpanEvent):
            args: dict[str, Any] = {"span_id": event.span_id,
                                    "status": event.status}
            if event.error:
                args["error"] = event.error
            args.update(event.attrs)
            trace_events.append({
                "name": event.label, "cat": _category(event.label),
                "ph": "X", "ts": event.t_start * 1e6,
                "dur": event.seconds * 1e6,
                "pid": _PID, "tid": tid_for(event.thread), "args": args,
            })
        else:
            record = event_to_record(event)
            record.pop("event", None)
            record.pop("t", None)
            trace_events.append({
                "name": event.kind, "cat": "event", "ph": "i", "s": "g",
                "ts": event.t * 1e6, "pid": _PID, "tid": tid_for(0),
                "args": record,
            })
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs.export"},
    }


def write_chrome_trace(source: str | Path | Iterable[Event],
                       path: str | Path) -> dict[str, Any]:
    """Export ``source`` (JSONL trace path or events) to ``path``.

    Unknown event kinds in a trace file are skipped (forward
    compatibility).  Returns the JSON object that was written.
    """
    if isinstance(source, (str, Path)):
        from .trace import read_trace     # lazy: keeps import graph flat
        events: Iterable[Event] = read_trace(source)
    else:
        events = source
    payload = chrome_trace(events)
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload) + "\n", encoding="utf-8")
    return payload
