"""Cross-dataset model rankings (extension).

The paper's conclusion — "Graph-WaveNet shows the best average performance
and GMAN has an advantage in long-term predictions" — is a statement about
*ranks across datasets*.  This module computes per-dataset ranks, average
ranks, and a Friedman test over the rank table, so the conclusion carries a
significance level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from .report import format_table
from .results import AggregateResult

__all__ = ["RankTable", "rank_models", "friedman_test", "leaderboard"]


@dataclass
class RankTable:
    """Ranks of models across datasets for one (horizon, metric)."""

    models: list[str]
    datasets: list[str]
    ranks: np.ndarray          # (datasets, models), 1 = best

    def average_rank(self) -> dict[str, float]:
        means = self.ranks.mean(axis=0)
        return dict(zip(self.models, means.tolist()))

    def winner(self) -> str:
        means = self.ranks.mean(axis=0)
        return self.models[int(means.argmin())]


def rank_models(results: list[AggregateResult], minutes: int = 15,
                metric: str = "mae", difficult: bool = False) -> RankTable:
    """Rank models within each dataset by mean metric (rank 1 = lowest)."""
    datasets = sorted({r.dataset_name for r in results})
    models = sorted({r.model_name for r in results})
    by_cell = {(r.model_name, r.dataset_name): r for r in results}

    rank_rows = []
    for dataset in datasets:
        values = []
        for model in models:
            cell = by_cell.get((model, dataset))
            if cell is None:
                raise ValueError(
                    f"missing cell ({model}, {dataset}); rankings need a "
                    "complete model×dataset matrix")
            values.append(cell.metric(minutes, metric, difficult).mean)
        rank_rows.append(stats.rankdata(values))
    return RankTable(models=models, datasets=datasets,
                     ranks=np.array(rank_rows))


def friedman_test(table: RankTable) -> tuple[float, float]:
    """Friedman chi-square over the rank table; returns (statistic, p).

    Small p: the models' ranks differ beyond chance across datasets.
    Needs at least 3 models and 2 datasets; degenerate inputs return
    (nan, 1.0).
    """
    if table.ranks.shape[0] < 2 or table.ranks.shape[1] < 3:
        return float("nan"), 1.0
    columns = [table.ranks[:, j] for j in range(table.ranks.shape[1])]
    statistic, p_value = stats.friedmanchisquare(*columns)
    return float(statistic), float(p_value)


def leaderboard(results: list[AggregateResult],
                horizons: tuple[int, ...] = (15, 30, 60),
                metric: str = "mae") -> str:
    """Printable leaderboard: average rank per model per horizon."""
    tables = {m: rank_models(results, minutes=m, metric=metric)
              for m in horizons}
    models = tables[horizons[0]].models
    rows = []
    for model in models:
        row = [model]
        for minutes in horizons:
            row.append(f"{tables[minutes].average_rank()[model]:.2f}")
        overall = np.mean([tables[m].average_rank()[model] for m in horizons])
        row.append(f"{overall:.2f}")
        rows.append((overall, row))
    rows.sort(key=lambda pair: pair[0])
    headers = (["model"] + [f"rank@{m}m" for m in horizons] + ["overall"])
    lines = [format_table(headers, [row for _, row in rows])]
    statistic, p_value = friedman_test(tables[horizons[0]])
    lines.append(f"Friedman test @ {horizons[0]}m: chi2="
                 f"{statistic:.2f}, p={p_value:.4f}")
    return "\n".join(lines)
