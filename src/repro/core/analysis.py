"""Error analysis (extension): quantifying the paper's Sec. VI claim.

The paper observes that "model performance is related to the (moving)
standard deviation of intervals" and leaves the investigation to future
work.  This module measures it: per (window, sensor), pair the local
moving-std of the target interval with the model's error there, and report
the correlation, a binned error-vs-volatility profile, and per-sensor
error maps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from .intervals import moving_std

__all__ = ["VolatilityProfile", "error_volatility_correlation",
           "volatility_profile", "per_sensor_errors"]


def _window_pairs(prediction: np.ndarray, target: np.ndarray,
                  series: np.ndarray, start_index: np.ndarray,
                  window: int = 6, horizon_step: int = 0,
                  null_value: float | None = 0.0
                  ) -> tuple[np.ndarray, np.ndarray]:
    """(volatility, absolute error) pairs for one forecast step."""
    if prediction.shape != target.shape:
        raise ValueError("prediction/target shape mismatch")
    volatility_series = moving_std(series, window)      # (T, N)
    positions = np.asarray(start_index) + horizon_step  # (S,)
    volatility = volatility_series[positions]           # (S, N)
    errors = np.abs(prediction[:, horizon_step] - target[:, horizon_step])
    valid = np.ones(errors.shape, dtype=bool)
    if null_value is not None:
        valid &= ~np.isclose(target[:, horizon_step], null_value)
    return volatility[valid].ravel(), errors[valid].ravel()


def error_volatility_correlation(prediction: np.ndarray, target: np.ndarray,
                                 series: np.ndarray, start_index: np.ndarray,
                                 window: int = 6, horizon_step: int = 0
                                 ) -> tuple[float, float]:
    """Pearson correlation between local volatility and absolute error.

    Returns ``(r, p)``.  A clearly positive r confirms the paper's
    observation that errors concentrate where traffic changes fast.
    """
    volatility, errors = _window_pairs(prediction, target, series,
                                       start_index, window, horizon_step)
    if len(volatility) < 3 or volatility.std() == 0 or errors.std() == 0:
        return float("nan"), 1.0
    r, p = stats.pearsonr(volatility, errors)
    return float(r), float(p)


@dataclass
class VolatilityProfile:
    """Binned error-vs-volatility curve."""

    bin_edges: np.ndarray       # (bins+1,)
    mean_error: np.ndarray      # (bins,) mean abs error per volatility bin
    counts: np.ndarray          # (bins,)

    def render(self) -> str:
        lines = [f"{'volatility bin':<22} {'count':>8} {'mean |err|':>11}"]
        for i in range(len(self.mean_error)):
            label = f"[{self.bin_edges[i]:.2f}, {self.bin_edges[i + 1]:.2f})"
            value = ("-" if self.counts[i] == 0
                     else f"{self.mean_error[i]:.3f}")
            lines.append(f"{label:<22} {self.counts[i]:>8} {value:>11}")
        return "\n".join(lines)


def volatility_profile(prediction: np.ndarray, target: np.ndarray,
                       series: np.ndarray, start_index: np.ndarray,
                       bins: int = 5, window: int = 6,
                       horizon_step: int = 0) -> VolatilityProfile:
    """Mean absolute error per volatility quantile bin."""
    if bins < 1:
        raise ValueError("bins must be >= 1")
    volatility, errors = _window_pairs(prediction, target, series,
                                       start_index, window, horizon_step)
    if volatility.size == 0:
        raise ValueError("no valid (volatility, error) pairs")
    edges = np.quantile(volatility, np.linspace(0, 1, bins + 1))
    edges[-1] += 1e-9
    mean_error = np.zeros(bins)
    counts = np.zeros(bins, dtype=int)
    indices = np.clip(np.searchsorted(edges, volatility, side="right") - 1,
                      0, bins - 1)
    for b in range(bins):
        members = indices == b
        counts[b] = int(members.sum())
        mean_error[b] = errors[members].mean() if counts[b] else float("nan")
    return VolatilityProfile(bin_edges=edges, mean_error=mean_error,
                             counts=counts)


def per_sensor_errors(prediction: np.ndarray, target: np.ndarray,
                      horizon_step: int = 0,
                      null_value: float | None = 0.0) -> np.ndarray:
    """Mean absolute error per sensor at one forecast step: ``(N,)``."""
    errors = np.abs(prediction[:, horizon_step] - target[:, horizon_step])
    if null_value is None:
        return errors.mean(axis=0)
    valid = ~np.isclose(target[:, horizon_step], null_value)
    out = np.full(errors.shape[1], np.nan)
    for node in range(errors.shape[1]):
        mask = valid[:, node]
        if mask.any():
            out[node] = errors[mask, node].mean()
    return out
