"""Experiment runner: the paper's controlled evaluation protocol.

One :func:`run_experiment` call reproduces the paper's per-cell procedure:
train a model on a dataset with a given seed, early-stop on validation MAE,
then evaluate on the held-out test set — full metrics and
difficult-interval metrics, per 15/30/60-minute horizon — while recording
training time per epoch, inference time, and parameter count (Table III).

Repeat-and-aggregate (the paper's five runs, mean ± std) lives in
:func:`repro.core.aggregate_runs` and the cached
:class:`repro.core.BenchmarkMatrix` orchestrator.

Every run is observable: the runner publishes typed telemetry events
(:class:`~repro.obs.RunStarted`, :class:`~repro.obs.BatchEnd`,
:class:`~repro.obs.EpochEnd`, :class:`~repro.obs.EvalDone`,
:class:`~repro.obs.RunFinished`) to a :class:`repro.obs.EventBus` — pass
``bus=`` explicitly or attach sinks to the ambient bus
(:func:`repro.obs.get_bus`).  ``verbose=True`` is just a console sink
subscribed to ``epoch_end``.  ``manifest_path=`` additionally writes a
``run.json`` reproducibility manifest (see :mod:`repro.obs.manifest`).
"""

from __future__ import annotations

import time
import typing
from dataclasses import asdict, dataclass, field

import numpy as np

from ..datasets.catalog import LoadedDataset
from ..datasets.loader import DataLoader
from ..datasets.windows import SupervisedSplit
from ..models.base import TrafficModel, create_model
from ..nn import no_grad
from ..nn.tensor import Tensor
from ..obs.events import (EvalDone, EventBus, RunFinished, RunStarted,
                          bus_scope, get_bus)
from ..obs.spans import span
from .intervals import difficult_mask, prediction_mask
from .metrics import HorizonMetrics, evaluate_horizons

if typing.TYPE_CHECKING:                                 # pragma: no cover
    from ..train.engine import Engine

__all__ = ["TrainingConfig", "TrainingHistory", "EvaluationResult",
           "train_model", "predict", "evaluate_model", "run_experiment",
           "RunResult"]


@dataclass
class TrainingConfig:
    """Optimisation settings shared across models (the paper's premise of a
    single consistent environment)."""

    epochs: int = 5
    batch_size: int = 32
    learning_rate: float = 0.01
    weight_decay: float = 1e-5
    grad_clip: float = 5.0
    patience: int | None = None          # early stop on val MAE; None = off
    max_batches_per_epoch: int | None = None   # subsample epochs for speed
    eval_batch_size: int = 64
    verbose: bool = False
    # Optional per-epoch LR decay: None, "step" (x0.3 every 1/3 of the
    # epochs, DCRNN-style), "exponential" (x0.9/epoch) or "cosine".
    lr_schedule: str | None = None


@dataclass
class TrainingHistory:
    """Per-epoch records from one training run."""

    train_losses: list[float] = field(default_factory=list)
    val_maes: list[float] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)
    best_epoch: int = -1

    @property
    def train_time_per_epoch(self) -> float:
        return float(np.mean(self.epoch_seconds)) if self.epoch_seconds else 0.0


@dataclass
class EvaluationResult:
    """Test metrics for one trained model on one dataset."""

    full: dict[int, HorizonMetrics]
    difficult: dict[int, HorizonMetrics]
    inference_seconds: float
    num_parameters: int

    def degradation(self, minutes: int, metric: str = "mae") -> float:
        """Relative performance decline (%) on difficult intervals
        (paper Fig. 2, second row)."""
        base = getattr(self.full[minutes], metric)
        hard = getattr(self.difficult[minutes], metric)
        if base == 0 or np.isnan(base) or np.isnan(hard):
            return float("nan")
        return (hard - base) / base * 100.0


@dataclass
class RunResult:
    """One (model, dataset, seed) cell: training history + evaluation."""

    model_name: str
    dataset_name: str
    seed: int
    history: TrainingHistory
    evaluation: EvaluationResult


# --------------------------------------------------------------------- #
def train_model(model: TrafficModel, dataset: LoadedDataset,
                config: TrainingConfig | None = None, seed: int = 0,
                bus: EventBus | None = None) -> TrainingHistory:
    """Train ``model`` in place; returns the training history.

    A thin wrapper over :class:`repro.train.Engine` with the default
    callback stack (gradient clipping, LR schedule, telemetry, early
    stopping) — the engine's loop reproduces the historical inline loop
    event for event.  Baselines with no parameters (or a constant
    ``training_loss``) are skipped.  Telemetry (``batch_end``/``epoch_end``
    events) goes to ``bus``, or the ambient :func:`repro.obs.get_bus` when
    none is given; ``verbose=True`` attaches a console sink limited to
    epoch lines for the duration.
    """
    from ..train.engine import Engine

    return Engine(config).fit(model, dataset, seed=seed, bus=bus)


def predict(model: TrafficModel, split: SupervisedSplit, scaler,
            batch_size: int = 64) -> tuple[np.ndarray, float]:
    """Run inference over a split; returns (predictions in original units,
    wall-clock seconds).

    Batches flow through the same :class:`~repro.datasets.DataLoader`
    gather path as training, so a lazy split never materialises its full
    input tensor for evaluation either.
    """
    model.eval()
    loader = DataLoader(split, batch_size=batch_size, shuffle=False)
    outputs = []
    start = time.perf_counter()
    with span("eval/predict", samples=split.num_samples,
              batch_size=batch_size), no_grad():
        for x, _, _ in loader:
            outputs.append(model(Tensor(x)).numpy())
    elapsed = time.perf_counter() - start
    scaled = np.concatenate(outputs, axis=0)
    return scaler.inverse_transform(scaled), elapsed


def evaluate_model(model: TrafficModel, dataset: LoadedDataset,
                   eval_batch_size: int = 64,
                   interval_window: int = 6,
                   interval_quantile: float = 0.75) -> EvaluationResult:
    """Full-test and difficult-interval metrics for a trained model."""
    split = dataset.supervised.test
    prediction, elapsed = predict(model, split, dataset.supervised.scaler,
                                  eval_batch_size)
    full = evaluate_horizons(prediction, split.y)

    hard_mask = difficult_mask(dataset.supervised.series,
                               window=interval_window,
                               quantile=interval_quantile)
    aligned = prediction_mask(hard_mask, split.start_index,
                              dataset.supervised.config.horizon)
    difficult = evaluate_horizons(prediction, split.y, mask=aligned)

    return EvaluationResult(full=full, difficult=difficult,
                            inference_seconds=elapsed,
                            num_parameters=model.num_parameters())


def run_experiment(model_name: str, dataset: LoadedDataset,
                   config: TrainingConfig | None = None, seed: int = 0,
                   bus: EventBus | None = None,
                   manifest_path: str | None = None,
                   engine: "Engine | None" = None,
                   **model_hparams) -> RunResult:
    """Train-and-evaluate one cell of the benchmark matrix.

    Training routes through :class:`repro.train.Engine` — pass ``engine=``
    to supply a pre-configured one (custom callbacks, optimizer factory);
    its config then governs the run.  Publishes ``run_started`` /
    ``eval_done`` / ``run_finished`` telemetry (plus the training events)
    to ``bus`` or the ambient bus; when ``manifest_path`` is given, also
    writes a ``run.json`` reproducibility manifest there (config, seed,
    parameter count, wall time, peak RSS).
    """
    if engine is None:
        from ..train.engine import Engine
        engine = Engine(config)
    config = engine.config
    bus = bus if bus is not None else get_bus()
    start = time.perf_counter()
    with bus_scope(bus), span("experiment/run", bus=bus, model=model_name,
                              dataset=dataset.spec.name, seed=seed):
        model = create_model(model_name, dataset.num_nodes,
                             dataset.adjacency,
                             history=dataset.supervised.config.history,
                             horizon=dataset.supervised.config.horizon,
                             in_features=dataset.supervised.train.num_features,
                             seed=seed, **model_hparams)
        bus.emit(RunStarted(model=model_name, dataset=dataset.spec.name,
                            seed=seed, num_parameters=model.num_parameters(),
                            config=asdict(config)))
        history = engine.fit(model, dataset, seed=seed, bus=bus)
        with span("experiment/evaluate", bus=bus):
            evaluation = evaluate_model(
                model, dataset, eval_batch_size=config.eval_batch_size)
        bus.emit(EvalDone(
            inference_seconds=evaluation.inference_seconds,
            num_parameters=evaluation.num_parameters,
            full={str(m): h.as_dict() for m, h in evaluation.full.items()},
            difficult={str(m): h.as_dict()
                       for m, h in evaluation.difficult.items()}))
        wall_seconds = time.perf_counter() - start
        best_val = (history.val_maes[history.best_epoch]
                    if history.val_maes else float("nan"))
        bus.emit(RunFinished(model=model_name, dataset=dataset.spec.name,
                             seed=seed, wall_seconds=wall_seconds,
                             best_epoch=history.best_epoch,
                             best_val_mae=best_val))
        if manifest_path is not None:
            from ..obs.manifest import build_manifest, write_manifest
            manifest = build_manifest(
                model=model_name, dataset=dataset.spec.name, seed=seed,
                config=config, num_parameters=evaluation.num_parameters,
                wall_seconds=wall_seconds, best_epoch=history.best_epoch,
                best_val_mae=None if np.isnan(best_val) else float(best_val),
                test_mae_15=float(evaluation.full[15].mae)
                if 15 in evaluation.full else None)
            write_manifest(manifest_path, manifest)
    return RunResult(model_name=model_name, dataset_name=dataset.spec.name,
                     seed=seed, history=history, evaluation=evaluation)
