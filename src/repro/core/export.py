"""Prediction export (extension): persist forecasts for external analysis.

Writes a model's test-set predictions with their ground truth, window
start positions, and alignment metadata so notebooks/BI tools can analyse
them without re-running inference.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..datasets.catalog import LoadedDataset
from ..models.base import TrafficModel
from .experiment import predict

__all__ = ["export_predictions", "load_predictions", "predictions_to_csv"]


def export_predictions(model: TrafficModel, dataset: LoadedDataset,
                       path: str | Path, batch_size: int = 64) -> None:
    """Run test-set inference and save a self-describing ``.npz``."""
    split = dataset.supervised.test
    prediction, elapsed = predict(model, split, dataset.supervised.scaler,
                                  batch_size)
    meta = {
        "model": model.name,
        "dataset": dataset.spec.name,
        "scale": dataset.scale,
        "horizon": dataset.supervised.config.horizon,
        "history": dataset.supervised.config.history,
        "inference_seconds": elapsed,
    }
    np.savez_compressed(
        Path(path),
        prediction=prediction,
        target=split.y,
        start_index=split.start_index,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8))


def load_predictions(path: str | Path
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray, dict]:
    """Load (prediction, target, start_index, metadata)."""
    with np.load(Path(path)) as archive:
        meta = json.loads(bytes(archive["meta"]).decode())
        return (archive["prediction"], archive["target"],
                archive["start_index"], meta)


def predictions_to_csv(path_npz: str | Path, path_csv: str | Path,
                       horizon_step: int = 0) -> None:
    """Flatten one forecast step to CSV: window,sensor,prediction,target."""
    prediction, target, start_index, meta = load_predictions(path_npz)
    horizon = prediction.shape[1]
    if not 0 <= horizon_step < horizon:
        raise ValueError(
            f"horizon_step {horizon_step} outside [0, {horizon})")
    lines = ["series_position,sensor,prediction,target"]
    num_samples, _, nodes = prediction.shape
    for sample in range(num_samples):
        position = start_index[sample] + horizon_step
        for node in range(nodes):
            lines.append(f"{position},{node},"
                         f"{prediction[sample, horizon_step, node]:.6f},"
                         f"{target[sample, horizon_step, node]:.6f}")
    Path(path_csv).write_text("\n".join(lines) + "\n")
