"""Terminal visualisation helpers: sparklines and simple line charts.

The paper's figures are matplotlib plots; in a headless benchmark the same
information renders as unicode sparklines (for dashboards/logs) and block
charts, keeping the repository free of plotting dependencies.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sparkline", "ascii_chart", "horizon_bars"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"
_BAR = "█"


def sparkline(values, width: int | None = None) -> str:
    """Render a series as a unicode sparkline.

    ``width`` optionally downsamples (by averaging buckets) to a fixed
    number of characters.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise ValueError("sparkline expects a 1-D series")
    if values.size == 0:
        return ""
    if not np.isfinite(values).any():
        return " " * (width if width is not None and values.size > width
                      else values.size)
    if width is not None and values.size > width:
        buckets = np.array_split(values, width)
        values = np.array([np.nanmean(b) for b in buckets])
    finite = values[np.isfinite(values)]
    low, high = finite.min(), finite.max()
    span = high - low
    if span == 0:
        return _SPARK_LEVELS[0] * values.size
    chars = []
    for value in values:
        if not np.isfinite(value):
            chars.append(" ")
            continue
        level = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def ascii_chart(series: dict[str, np.ndarray], width: int = 60) -> str:
    """One labelled sparkline per named series, with min/max annotations."""
    if not series:
        return ""
    label_width = max(len(name) for name in series)
    lines = []
    for name, values in series.items():
        values = np.asarray(values, dtype=float)
        spark = sparkline(values, width)
        finite = values[np.isfinite(values)]
        low = finite.min() if finite.size else float("nan")
        high = finite.max() if finite.size else float("nan")
        lines.append(f"{name.ljust(label_width)}  {spark}  "
                     f"[{low:.2f}, {high:.2f}]")
    return "\n".join(lines)


def horizon_bars(metrics: dict[str, dict[int, float]], width: int = 40) -> str:
    """Horizontal bar chart: one bar per (model, horizon) metric value.

    ``metrics`` maps model name -> {horizon minutes -> value}.
    """
    if not metrics:
        return ""
    peak = max(value for row in metrics.values() for value in row.values())
    if peak <= 0 or not np.isfinite(peak):
        peak = 1.0
    label_width = max(len(name) for name in metrics)
    lines = []
    for name, row in metrics.items():
        for minutes in sorted(row):
            value = row[minutes]
            filled = int(round(value / peak * width)) if np.isfinite(value) else 0
            lines.append(f"{name.ljust(label_width)} {minutes:>3}m "
                         f"{_BAR * filled}{' ' * (width - filled)} "
                         f"{value:.3f}")
    return "\n".join(lines)
