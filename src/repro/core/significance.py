"""Statistical comparison of repeated runs (extension beyond the paper).

The paper reports mean ± std over five seeds but never tests whether model
differences are significant.  This module adds Welch's t-test and a
pairwise win-matrix so "Graph-WaveNet is more accurate than X" becomes a
quantified statement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from .experiment import RunResult

__all__ = ["Comparison", "welch_test", "compare_models", "win_matrix"]


@dataclass
class Comparison:
    """Outcome of comparing model A vs model B on one metric."""

    model_a: str
    model_b: str
    mean_a: float
    mean_b: float
    t_statistic: float
    p_value: float

    @property
    def better(self) -> str:
        """Name of the model with the lower (better) mean error."""
        return self.model_a if self.mean_a <= self.mean_b else self.model_b

    def significant(self, alpha: float = 0.05) -> bool:
        return bool(self.p_value < alpha)


def _horizon_maes(runs: list[RunResult], minutes: int) -> np.ndarray:
    return np.array([r.evaluation.full[minutes].mae for r in runs])


def welch_test(values_a: np.ndarray, values_b: np.ndarray) -> tuple[float, float]:
    """Welch's unequal-variance t-test; returns (t, p).

    Degenerate inputs (fewer than two samples, or both samples constant)
    return (nan, 1.0) rather than raising.
    """
    values_a = np.asarray(values_a, dtype=float)
    values_b = np.asarray(values_b, dtype=float)
    if len(values_a) < 2 or len(values_b) < 2:
        return float("nan"), 1.0
    if values_a.std() == 0 and values_b.std() == 0:
        return float("nan"), 1.0 if values_a.mean() == values_b.mean() else 0.0
    t_stat, p_value = stats.ttest_ind(values_a, values_b, equal_var=False)
    return float(t_stat), float(p_value)


def compare_models(runs_a: list[RunResult], runs_b: list[RunResult],
                   minutes: int = 15) -> Comparison:
    """Compare two models' repeated runs at one horizon (MAE)."""
    if not runs_a or not runs_b:
        raise ValueError("both run lists must be non-empty")
    values_a = _horizon_maes(runs_a, minutes)
    values_b = _horizon_maes(runs_b, minutes)
    t_stat, p_value = welch_test(values_a, values_b)
    return Comparison(model_a=runs_a[0].model_name,
                      model_b=runs_b[0].model_name,
                      mean_a=float(values_a.mean()),
                      mean_b=float(values_b.mean()),
                      t_statistic=t_stat, p_value=p_value)


def win_matrix(all_runs: dict[str, list[RunResult]],
               minutes: int = 15) -> dict[tuple[str, str], Comparison]:
    """All pairwise comparisons among models (keyed (a, b), a < b)."""
    names = sorted(all_runs)
    matrix: dict[tuple[str, str], Comparison] = {}
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            matrix[(a, b)] = compare_models(all_runs[a], all_runs[b], minutes)
    return matrix
