"""Render paper-style tables from aggregated results.

Each function prints the rows/series of one of the paper's artefacts:

- :func:`fig1_table` — model × horizon accuracy for one dataset (Fig. 1)
- :func:`table3` — computation time & parameters (Table III)
- :func:`fig2_table` — difficult-interval MAE + degradation % (Fig. 2)
- :func:`fig3_series` — per-road prediction traces (Fig. 3)
"""

from __future__ import annotations

import numpy as np

from .results import AggregateResult

__all__ = ["fig1_table", "table3", "fig2_table", "fig3_series",
           "format_table"]


def format_table(headers: list[str], rows: list[list[str]],
                 style: str = "plain") -> str:
    """Render a table as aligned ``plain`` text, ``markdown``, or ``csv``."""
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
    if style == "csv":
        def escape(cell: str) -> str:
            return f'"{cell}"' if ("," in cell or '"' in cell) else cell
        lines = [",".join(escape(h) for h in headers)]
        lines += [",".join(escape(c) for c in row) for row in rows]
        return "\n".join(lines)

    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    if style == "markdown":
        lines = ["| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths))
                 + " |"]
        lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
        for row in rows:
            lines.append("| " + " | ".join(
                c.ljust(w) for c, w in zip(row, widths)) + " |")
        return "\n".join(lines)

    if style != "plain":
        raise ValueError(f"unknown style {style!r}; "
                         "choose plain, markdown, or csv")
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def fig1_table(results: list[AggregateResult], dataset: str,
               metrics: tuple[str, ...] = ("mae", "rmse", "mape")) -> str:
    """Fig. 1 rows for one dataset: model × (horizon, metric), mean±std."""
    rows = []
    subset = [r for r in results if r.dataset_name == dataset]
    if not subset:
        raise ValueError(f"no results for dataset {dataset!r}")
    horizons = sorted(subset[0].full)
    headers = ["model"] + [f"{metric.upper()}@{minutes}m"
                           for minutes in horizons for metric in metrics]
    for result in subset:
        row = [result.model_name]
        for minutes in horizons:
            for metric in metrics:
                row.append(str(result.metric(minutes, metric)))
        rows.append(row)
    return f"Fig.1 [{dataset}]\n" + format_table(headers, rows)


def table3(results: list[AggregateResult], dataset: str = "metr-la") -> str:
    """Table III: training time/epoch, inference time, parameter count."""
    subset = [r for r in results if r.dataset_name == dataset]
    if not subset:
        raise ValueError(f"no results for dataset {dataset!r}")
    headers = ["model", "train s/epoch", "inference s", "# params"]
    rows = []
    for result in subset:
        rows.append([
            result.model_name,
            f"{result.train_time_per_epoch.mean:.2f}",
            f"{result.inference_seconds.mean:.2f}",
            f"{result.num_parameters / 1000.0:.1f}k",
        ])
    return f"Table III [{dataset}]\n" + format_table(headers, rows)


def fig2_table(results: list[AggregateResult], dataset: str = "metr-la") -> str:
    """Fig. 2: MAE on difficult intervals and relative degradation (%)."""
    subset = [r for r in results if r.dataset_name == dataset]
    if not subset:
        raise ValueError(f"no results for dataset {dataset!r}")
    horizons = sorted(subset[0].full)
    headers = (["model"]
               + [f"hardMAE@{m}m" for m in horizons]
               + [f"degr%@{m}m" for m in horizons])
    rows = []
    for result in subset:
        row = [result.model_name]
        for minutes in horizons:
            row.append(str(result.metric(minutes, "mae", difficult=True)))
        for minutes in horizons:
            row.append(f"{result.degradation[minutes].mean:+.1f}%")
        rows.append(row)
    return f"Fig.2 [{dataset}] difficult intervals\n" + format_table(headers, rows)


def fig3_series(truth: np.ndarray, prediction: np.ndarray,
                segments: list[tuple[int, int]], road: int,
                max_points: int = 48) -> str:
    """Fig. 3 per-road trace: truth vs prediction with interval markers.

    Prints one line per time step (up to ``max_points``): value columns and
    a ``*`` marker for steps inside a difficult interval.
    """
    truth = np.asarray(truth, dtype=float)
    prediction = np.asarray(prediction, dtype=float)
    if truth.shape != prediction.shape:
        raise ValueError("truth/prediction length mismatch")
    flags = np.zeros(len(truth), dtype=bool)
    for start, stop in segments:
        flags[start:stop] = True
    lines = [f"Fig.3 road {road}: truth vs prediction "
             f"(MAE={np.abs(truth - prediction).mean():.2f})"]
    lines.append(f"{'t':>4} {'truth':>8} {'pred':>8} hard")
    step = max(1, len(truth) // max_points)
    for t in range(0, len(truth), step):
        marker = "*" if flags[t] else ""
        lines.append(f"{t:>4} {truth[t]:>8.2f} {prediction[t]:>8.2f} {marker:>4}")
    return "\n".join(lines)
