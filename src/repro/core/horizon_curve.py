"""Per-step error curves (extension of the paper's three-point horizons).

Fig. 1 samples three horizons (15/30/60 min); the full 12-step error curve
shows *where* error accumulates — the RNN seq2seq models' curves steepen
with depth (error accumulation, Sec. VI) while one-shot decoders stay
flatter.
"""

from __future__ import annotations

import numpy as np

from .metrics import mae, mape, rmse
from .visualization import sparkline

__all__ = ["horizon_curve", "curve_steepness", "render_curves"]

_METRIC_FUNCS = {"mae": mae, "rmse": rmse, "mape": mape}


def horizon_curve(prediction: np.ndarray, target: np.ndarray,
                  metric: str = "mae", null_value: float | None = 0.0,
                  mask: np.ndarray | None = None) -> np.ndarray:
    """Metric value at every forecast step: ``(T,)`` for (S, T, N) inputs."""
    if metric not in _METRIC_FUNCS:
        raise ValueError(f"unknown metric {metric!r}; "
                         f"choose from {sorted(_METRIC_FUNCS)}")
    if prediction.shape != target.shape:
        raise ValueError("prediction/target shape mismatch")
    func = _METRIC_FUNCS[metric]
    steps = prediction.shape[1]
    return np.array([
        func(prediction[:, t], target[:, t], null_value,
             None if mask is None else mask[:, t])
        for t in range(steps)])


def curve_steepness(curve: np.ndarray) -> float:
    """Relative growth of the error curve: last / first.

    > 2 indicates strong error accumulation (typical for autoregressive
    decoders); near 1 indicates a flat curve.
    """
    curve = np.asarray(curve, dtype=float)
    if curve.size < 2:
        raise ValueError("need at least two steps")
    if curve[0] == 0 or not np.isfinite(curve[0]):
        return float("nan")
    return float(curve[-1] / curve[0])


def render_curves(curves: dict[str, np.ndarray], width: int = 24) -> str:
    """Sparkline per model with first/last values and steepness."""
    if not curves:
        return ""
    label_width = max(len(name) for name in curves)
    lines = [f"{'model'.ljust(label_width)}  {'curve'.ljust(width)}  "
             f"{'first':>7} {'last':>7} {'ratio':>6}"]
    for name, curve in curves.items():
        curve = np.asarray(curve, dtype=float)
        lines.append(
            f"{name.ljust(label_width)}  "
            f"{sparkline(curve, width).ljust(width)}  "
            f"{curve[0]:>7.3f} {curve[-1]:>7.3f} "
            f"{curve_steepness(curve):>5.2f}x")
    return "\n".join(lines)
