"""Result aggregation across repeated runs (mean ± std, as the paper).

Also provides a JSON round-trip so benchmark outputs can be persisted and
re-rendered without re-training.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .experiment import RunResult
from .metrics import HorizonMetrics

__all__ = ["MetricSummary", "AggregateResult", "aggregate_runs",
           "save_results", "load_results"]

_METRICS = ("mae", "rmse", "mape")


@dataclass
class MetricSummary:
    """Mean and standard deviation over repeats."""

    mean: float
    std: float

    def __str__(self) -> str:
        return f"{self.mean:.3f}±{self.std:.3f}"


@dataclass
class AggregateResult:
    """Aggregated (model, dataset) cell over ``n`` repeated seeds."""

    model_name: str
    dataset_name: str
    num_repeats: int
    # horizon minutes -> metric name -> summary
    full: dict[int, dict[str, MetricSummary]]
    difficult: dict[int, dict[str, MetricSummary]]
    degradation: dict[int, MetricSummary]       # MAE degradation %, Fig. 2
    train_time_per_epoch: MetricSummary
    inference_seconds: MetricSummary
    num_parameters: int

    def metric(self, minutes: int, name: str,
               difficult: bool = False) -> MetricSummary:
        table = self.difficult if difficult else self.full
        return table[minutes][name]


def _summarize(values: list[float]) -> MetricSummary:
    array = np.asarray(values, dtype=float)
    finite = array[np.isfinite(array)]
    if finite.size == 0:
        return MetricSummary(float("nan"), float("nan"))
    return MetricSummary(float(finite.mean()), float(finite.std()))


def _collect(tables: list[dict[int, HorizonMetrics]]
             ) -> dict[int, dict[str, MetricSummary]]:
    horizons = tables[0].keys()
    out: dict[int, dict[str, MetricSummary]] = {}
    for minutes in horizons:
        out[minutes] = {
            name: _summarize([getattr(t[minutes], name) for t in tables])
            for name in _METRICS}
    return out


def aggregate_runs(runs: list[RunResult]) -> AggregateResult:
    """Aggregate repeated runs of one (model, dataset) cell."""
    if not runs:
        raise ValueError("no runs to aggregate")
    names = {(r.model_name, r.dataset_name) for r in runs}
    if len(names) != 1:
        raise ValueError(f"runs mix cells: {sorted(names)}")
    full = _collect([r.evaluation.full for r in runs])
    difficult = _collect([r.evaluation.difficult for r in runs])
    degradation = {
        minutes: _summarize([r.evaluation.degradation(minutes) for r in runs])
        for minutes in runs[0].evaluation.full}
    return AggregateResult(
        model_name=runs[0].model_name,
        dataset_name=runs[0].dataset_name,
        num_repeats=len(runs),
        full=full, difficult=difficult, degradation=degradation,
        train_time_per_epoch=_summarize(
            [r.history.train_time_per_epoch for r in runs]),
        inference_seconds=_summarize(
            [r.evaluation.inference_seconds for r in runs]),
        num_parameters=runs[0].evaluation.num_parameters)


# --------------------------------------------------------------------- #
# JSON round-trip
# --------------------------------------------------------------------- #
def _summary_to_json(summary: MetricSummary) -> dict:
    return {"mean": summary.mean, "std": summary.std}


def _summary_from_json(payload: dict) -> MetricSummary:
    return MetricSummary(mean=payload["mean"], std=payload["std"])


def save_results(results: list[AggregateResult], path: str | Path) -> None:
    """Persist aggregated results as JSON."""
    payload = []
    for r in results:
        payload.append({
            "model": r.model_name,
            "dataset": r.dataset_name,
            "num_repeats": r.num_repeats,
            "full": {str(m): {k: _summary_to_json(v) for k, v in row.items()}
                     for m, row in r.full.items()},
            "difficult": {str(m): {k: _summary_to_json(v) for k, v in row.items()}
                          for m, row in r.difficult.items()},
            "degradation": {str(m): _summary_to_json(v)
                            for m, v in r.degradation.items()},
            "train_time_per_epoch": _summary_to_json(r.train_time_per_epoch),
            "inference_seconds": _summary_to_json(r.inference_seconds),
            "num_parameters": r.num_parameters,
        })
    Path(path).write_text(json.dumps(payload, indent=2))


def load_results(path: str | Path) -> list[AggregateResult]:
    """Load aggregated results saved by :func:`save_results`."""
    payload = json.loads(Path(path).read_text())
    results = []
    for item in payload:
        results.append(AggregateResult(
            model_name=item["model"],
            dataset_name=item["dataset"],
            num_repeats=item["num_repeats"],
            full={int(m): {k: _summary_from_json(v) for k, v in row.items()}
                  for m, row in item["full"].items()},
            difficult={int(m): {k: _summary_from_json(v) for k, v in row.items()}
                       for m, row in item["difficult"].items()},
            degradation={int(m): _summary_from_json(v)
                         for m, v in item["degradation"].items()},
            train_time_per_epoch=_summary_from_json(item["train_time_per_epoch"]),
            inference_seconds=_summary_from_json(item["inference_seconds"]),
            num_parameters=item["num_parameters"]))
    return results
