"""Eval-time robustness probes (extension).

Real deployments face degraded inputs: dead detectors (zeros), noisy
readings, and stale feeds.  These probes corrupt *test inputs only* —
models stay fixed — and measure how much each architecture's accuracy
depends on clean input, complementing the paper's difficult-interval
analysis (which varies the *target* difficulty instead).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.catalog import LoadedDataset
from ..datasets.loader import DataLoader
from ..datasets.windows import SupervisedSplit
from ..models.base import TrafficModel
from ..nn import no_grad
from ..nn.tensor import Tensor
from .metrics import HorizonMetrics, evaluate_horizons

__all__ = ["Corruption", "drop_sensors", "add_noise", "stale_feed",
           "robustness_probe"]


@dataclass
class Corruption:
    """A named input corruption: f(x_batch, rng) -> corrupted x_batch."""

    name: str
    apply: callable


def drop_sensors(fraction: float) -> Corruption:
    """Zero out a random subset of sensors' traffic feature per window.

    Mimics detector failure: the time feature stays (clocks don't fail).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")

    def apply(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        corrupted = x.copy()
        nodes = x.shape[2]
        num_dead = int(round(fraction * nodes))
        if num_dead == 0:
            return corrupted
        for sample in range(x.shape[0]):
            dead = rng.choice(nodes, size=num_dead, replace=False)
            corrupted[sample, :, dead, 0] = 0.0
        return corrupted

    return Corruption(name=f"drop{int(fraction * 100)}%", apply=apply)


def add_noise(std: float) -> Corruption:
    """Gaussian noise on the scaled traffic feature."""
    if std < 0:
        raise ValueError("std must be non-negative")

    def apply(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        corrupted = x.copy()
        corrupted[:, :, :, 0] += rng.normal(0.0, std, size=x.shape[:3])
        return corrupted

    return Corruption(name=f"noise{std:g}", apply=apply)


def stale_feed(steps: int) -> Corruption:
    """Freeze the last ``steps`` readings at the value before the gap
    (a feed that stopped updating)."""
    if steps < 1:
        raise ValueError("steps must be >= 1")

    def apply(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        corrupted = x.copy()
        history = x.shape[1]
        cut = max(0, history - steps)
        frozen = corrupted[:, cut - 1 if cut > 0 else 0, :, 0]   # (S, N)
        corrupted[:, cut:, :, 0] = frozen[:, None, :]
        return corrupted

    return Corruption(name=f"stale{steps}", apply=apply)


def robustness_probe(model: TrafficModel, dataset: LoadedDataset,
                     corruptions: list[Corruption], seed: int = 0,
                     batch_size: int = 64
                     ) -> dict[str, dict[int, HorizonMetrics]]:
    """Evaluate a trained model under each corruption (plus "clean").

    Returns ``{corruption name: {minutes: HorizonMetrics}}``.
    """
    split: SupervisedSplit = dataset.supervised.test
    scaler = dataset.supervised.scaler
    results: dict[str, dict[int, HorizonMetrics]] = {}
    model.eval()
    # Batches come from the same DataLoader gather path as evaluation, so
    # a lazy split stays lazy — each corrupted batch is built on demand.
    loader = DataLoader(split, batch_size=batch_size, shuffle=False)
    for corruption in [Corruption("clean", lambda x, rng: x)] + corruptions:
        rng = np.random.default_rng(seed)
        outputs = []
        with no_grad():
            for x, _, _ in loader:
                outputs.append(model(Tensor(corruption.apply(x, rng))).numpy())
        prediction = scaler.inverse_transform(np.concatenate(outputs, axis=0))
        results[corruption.name] = evaluate_horizons(prediction, split.y)
    return results
