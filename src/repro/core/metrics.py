"""Evaluation metrics (paper Sec. V): masked MAE, RMSE, MAPE.

All metrics ignore entries where the ground truth equals ``null_value``
(0 by PeMS convention — missing detector readings), and accept an optional
boolean ``mask`` restricting evaluation to chosen entries (used by the
difficult-interval experiment).  Horizon aggregation follows the paper:
15-, 30- and 60-minute predictions are steps 3, 6 and 12 of the forecast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["mae", "rmse", "mape", "HorizonMetrics", "evaluate_horizons",
           "HORIZON_STEPS"]

# minutes -> 1-based forecast step at 5-minute resolution
HORIZON_STEPS = {15: 3, 30: 6, 60: 12}


def _valid_mask(target: np.ndarray, null_value: float | None,
                mask: np.ndarray | None) -> np.ndarray:
    valid = np.ones(target.shape, dtype=bool)
    if null_value is not None:
        valid &= ~np.isclose(target, null_value)
    if mask is not None:
        valid &= np.asarray(mask, dtype=bool)
    return valid


def mae(prediction: np.ndarray, target: np.ndarray,
        null_value: float | None = 0.0, mask: np.ndarray | None = None) -> float:
    """Mean absolute error over valid entries (NaN if none are valid)."""
    valid = _valid_mask(target, null_value, mask)
    if not valid.any():
        return float("nan")
    return float(np.abs(prediction[valid] - target[valid]).mean())


def rmse(prediction: np.ndarray, target: np.ndarray,
         null_value: float | None = 0.0, mask: np.ndarray | None = None) -> float:
    """Root mean squared error over valid entries."""
    valid = _valid_mask(target, null_value, mask)
    if not valid.any():
        return float("nan")
    return float(np.sqrt(np.square(prediction[valid] - target[valid]).mean()))


def mape(prediction: np.ndarray, target: np.ndarray,
         null_value: float | None = 0.0, mask: np.ndarray | None = None) -> float:
    """Mean absolute percentage error (in %), excluding zero targets."""
    valid = _valid_mask(target, null_value, mask)
    valid &= ~np.isclose(target, 0.0)
    if not valid.any():
        return float("nan")
    ratio = np.abs((prediction[valid] - target[valid]) / target[valid])
    return float(ratio.mean() * 100.0)


@dataclass
class HorizonMetrics:
    """MAE/RMSE/MAPE for one prediction horizon."""

    mae: float
    rmse: float
    mape: float

    def as_dict(self) -> dict[str, float]:
        return {"mae": self.mae, "rmse": self.rmse, "mape": self.mape}


def evaluate_horizons(prediction: np.ndarray, target: np.ndarray,
                      null_value: float | None = 0.0,
                      mask: np.ndarray | None = None,
                      horizons: dict[int, int] | None = None
                      ) -> dict[int, HorizonMetrics]:
    """Per-horizon metrics for ``(S, T, N)`` predictions vs. targets.

    Parameters
    ----------
    horizons:
        Mapping of label (minutes) to 1-based forecast step; defaults to the
        paper's 15/30/60-minute protocol.
    mask:
        Optional ``(S, T, N)`` boolean mask (difficult intervals).
    """
    if prediction.shape != target.shape:
        raise ValueError(
            f"shape mismatch: prediction {prediction.shape} vs target {target.shape}")
    horizons = horizons or HORIZON_STEPS
    results: dict[int, HorizonMetrics] = {}
    for minutes, step in horizons.items():
        if step > prediction.shape[1]:
            raise ValueError(
                f"horizon step {step} exceeds forecast length {prediction.shape[1]}")
        index = step - 1
        step_mask = None if mask is None else mask[:, index]
        results[minutes] = HorizonMetrics(
            mae=mae(prediction[:, index], target[:, index], null_value, step_mask),
            rmse=rmse(prediction[:, index], target[:, index], null_value, step_mask),
            mape=mape(prediction[:, index], target[:, index], null_value, step_mask))
    return results
