"""Hyper-parameter sweep utility (extension).

The paper reuses each model's published hyper-parameters; this helper makes
it easy to check how sensitive the benchmark rankings are to that choice —
one of the threats to validity for any cross-model comparison.  Every
configuration trains on the same :class:`LoadedDataset` (one cached world,
lazy windows), so sweep cost is pure training cost.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..datasets.catalog import LoadedDataset
from .experiment import RunResult, TrainingConfig, run_experiment

__all__ = ["SweepResult", "grid_sweep"]


@dataclass
class SweepResult:
    """One sweep point: the hyper-parameters tried and the resulting run."""

    hparams: dict
    run: RunResult

    @property
    def val_mae(self) -> float:
        maes = self.run.history.val_maes
        return min(maes) if maes else float("inf")

    @property
    def test_mae_15(self) -> float:
        return self.run.evaluation.full[15].mae


def grid_sweep(model_name: str, dataset: LoadedDataset,
               grid: dict[str, list], config: TrainingConfig | None = None,
               seed: int = 0, verbose: bool = False,
               engine=None) -> list[SweepResult]:
    """Train one run per point of the Cartesian hyper-parameter grid.

    Every point trains through the same :class:`repro.train.Engine`
    (``engine=`` forwards a pre-configured one to every
    :func:`run_experiment` call).  Returns sweep points sorted by
    validation MAE (best first), so ``results[0].hparams`` is the selected
    configuration — model selection never touches the test split.
    """
    if not grid:
        raise ValueError("empty grid")
    keys = sorted(grid)
    results: list[SweepResult] = []
    for values in itertools.product(*(grid[k] for k in keys)):
        hparams = dict(zip(keys, values))
        if verbose:
            print(f"[sweep] {model_name} {hparams}")
        run = run_experiment(model_name, dataset, config, seed=seed,
                             engine=engine, **hparams)
        results.append(SweepResult(hparams=hparams, run=run))
    results.sort(key=lambda r: r.val_mae)
    return results
