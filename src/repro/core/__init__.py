"""The paper's contribution: a controlled benchmark harness for traffic models."""

from .analysis import (VolatilityProfile, error_volatility_correlation,
                       per_sensor_errors, volatility_profile)
from .crossval import RollingFold, rolling_origin_evaluate, rolling_origin_folds
from .export import export_predictions, load_predictions, predictions_to_csv
from .experiment import (EvaluationResult, RunResult, TrainingConfig,
                         TrainingHistory, evaluate_model, predict,
                         run_experiment, train_model)
from .intervals import (difficult_mask, interval_segments, moving_std,
                        prediction_mask)
from .matrix import BenchmarkMatrix
from .metrics import (HORIZON_STEPS, HorizonMetrics, evaluate_horizons, mae,
                      mape, rmse)
from .rankings import RankTable, friedman_test, leaderboard, rank_models
from .report import fig1_table, fig2_table, fig3_series, format_table, table3
from .results import (AggregateResult, MetricSummary, aggregate_runs,
                      load_results, save_results)
from .horizon_curve import curve_steepness, horizon_curve, render_curves
from .patterns import PatternMasks, classify_intervals, evaluate_patterns
from .robustness import (Corruption, add_noise, drop_sensors,
                         robustness_probe, stale_feed)
from .significance import Comparison, compare_models, welch_test, win_matrix
from .sweep import SweepResult, grid_sweep
from .visualization import ascii_chart, horizon_bars, sparkline

__all__ = [
    "mae", "rmse", "mape", "HorizonMetrics", "evaluate_horizons",
    "HORIZON_STEPS",
    "moving_std", "difficult_mask", "prediction_mask", "interval_segments",
    "TrainingConfig", "TrainingHistory", "EvaluationResult", "RunResult",
    "train_model", "predict", "evaluate_model", "run_experiment",
    "MetricSummary", "AggregateResult", "aggregate_runs",
    "save_results", "load_results",
    "fig1_table", "table3", "fig2_table", "fig3_series", "format_table",
    "Comparison", "welch_test", "compare_models", "win_matrix",
    "SweepResult", "grid_sweep",
    "sparkline", "ascii_chart", "horizon_bars",
    "horizon_curve", "curve_steepness", "render_curves",
    "PatternMasks", "classify_intervals", "evaluate_patterns",
    "RankTable", "rank_models", "friedman_test", "leaderboard",
    "RollingFold", "rolling_origin_folds", "rolling_origin_evaluate",
    "Corruption", "drop_sensors", "add_noise", "stale_feed",
    "robustness_probe",
    "error_volatility_correlation", "volatility_profile",
    "VolatilityProfile", "per_sensor_errors", "BenchmarkMatrix",
    "export_predictions", "load_predictions", "predictions_to_csv",
]
