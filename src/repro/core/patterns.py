"""Recurring vs. non-recurring pattern analysis (extension).

The paper's introduction distinguishes *recurring* congestion (daily rush
hours) from *non-recurring* events (incidents) and notes that difficult
intervals mix both; its conclusion calls for research into why model
performance differs by traffic pattern.  This module makes that analysis
runnable: difficult intervals are classified as recurring when the same
sensor is also volatile at the same time of day on most other days, and
non-recurring otherwise, and models can be scored separately on each class.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .intervals import difficult_mask
from .metrics import HorizonMetrics, evaluate_horizons

__all__ = ["PatternMasks", "classify_intervals", "evaluate_patterns"]

STEPS_PER_DAY = 288


@dataclass
class PatternMasks:
    """Per-(step, sensor) boolean masks splitting difficult intervals."""

    difficult: np.ndarray      # all difficult intervals
    recurring: np.ndarray      # difficult & typical for that time of day
    non_recurring: np.ndarray  # difficult & atypical (incident-like)

    @property
    def recurring_fraction(self) -> float:
        total = self.difficult.sum()
        return float(self.recurring.sum() / total) if total else 0.0


def classify_intervals(series: np.ndarray, window: int = 6,
                       quantile: float = 0.75,
                       recurrence_threshold: float = 0.5,
                       steps_per_day: int = STEPS_PER_DAY) -> PatternMasks:
    """Split difficult intervals into recurring and non-recurring.

    A difficult (step, sensor) cell is *recurring* when at least
    ``recurrence_threshold`` of the other days are also difficult for that
    sensor at the same time of day — rush hours recur daily; incidents do
    not.

    Parameters
    ----------
    series:
        ``(T, N)`` raw measurements.
    steps_per_day:
        Slots per day (288 at 5-minute resolution).
    """
    hard = difficult_mask(series, window=window, quantile=quantile)
    total, nodes = hard.shape
    num_days = int(np.ceil(total / steps_per_day))
    if num_days < 2:
        # With a single day there is no notion of recurrence.
        return PatternMasks(difficult=hard,
                            recurring=np.zeros_like(hard),
                            non_recurring=hard.copy())

    # Fraction of days on which each (slot, sensor) is difficult.
    padded = np.zeros((num_days * steps_per_day, nodes), dtype=bool)
    padded[:total] = hard
    by_day = padded.reshape(num_days, steps_per_day, nodes)
    counts = by_day.sum(axis=0).astype(float)           # (slot, N)
    days_covering = np.zeros((steps_per_day, nodes))
    for day in range(num_days):
        start = day * steps_per_day
        cover = min(steps_per_day, max(0, total - start))
        days_covering[:cover] += 1
    with np.errstate(invalid="ignore", divide="ignore"):
        frequency = np.where(days_covering > 0, counts / days_covering, 0.0)

    slot_index = np.arange(total) % steps_per_day
    # For each difficult cell, how often the *other* days share it.
    own = hard.astype(float)
    others = np.where(days_covering[slot_index] > 1,
                      (counts[slot_index] - own)
                      / np.maximum(days_covering[slot_index] - 1, 1),
                      0.0)
    recurring = hard & (others >= recurrence_threshold)
    return PatternMasks(difficult=hard, recurring=recurring,
                        non_recurring=hard & ~recurring)


def evaluate_patterns(prediction: np.ndarray, target: np.ndarray,
                      masks: PatternMasks, start_index: np.ndarray
                      ) -> dict[str, dict[int, HorizonMetrics]]:
    """Per-pattern-class horizon metrics for windowed predictions.

    Returns metrics keyed ``"difficult"``, ``"recurring"``,
    ``"non_recurring"`` — classes with no valid cells yield NaN metrics.
    """
    from .intervals import prediction_mask

    horizon = prediction.shape[1]
    out: dict[str, dict[int, HorizonMetrics]] = {}
    for label, mask in (("difficult", masks.difficult),
                        ("recurring", masks.recurring),
                        ("non_recurring", masks.non_recurring)):
        aligned = prediction_mask(mask, start_index, horizon)
        out[label] = evaluate_horizons(prediction, target, mask=aligned)
    return out
