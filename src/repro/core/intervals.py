"""Difficult-interval extraction (paper Sec. V-B).

The paper measures each model on "difficult intervals": per-node temporal
regions whose *moving standard deviation* (30-minute window = 6 steps at
5-minute resolution) falls in the upper 25%.  These are the abruptly
changing conditions — rush-hour onsets and incidents — where average-metric
evaluation hides model weaknesses.
"""

from __future__ import annotations

import numpy as np

__all__ = ["moving_std", "difficult_mask", "prediction_mask",
           "interval_segments"]


def moving_std(series: np.ndarray, window: int = 6) -> np.ndarray:
    """Trailing moving standard deviation per node.

    ``series`` is ``(T, N)``; output is ``(T, N)`` where entry ``t`` is the
    std of steps ``[t-window+1 .. t]``.  The first ``window-1`` entries use
    the partial prefix.
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 2:
        raise ValueError(f"series must be (T, N), got {series.shape}")
    if window < 2:
        raise ValueError(f"window must be >= 2, got {window}")
    total, nodes = series.shape
    # Cumulative-sum formulation: E[x^2] - E[x]^2 over the trailing window.
    # Centering each node first keeps the subtraction well-conditioned
    # (variance is shift-invariant; without this, constant series produce
    # sqrt(cancellation noise) instead of exactly zero).
    series = series - series.mean(axis=0, keepdims=True)
    cumsum = np.vstack([np.zeros((1, nodes)), np.cumsum(series, axis=0)])
    cumsq = np.vstack([np.zeros((1, nodes)), np.cumsum(series ** 2, axis=0)])
    out = np.empty_like(series)
    for t in range(total):
        lo = max(0, t - window + 1)
        count = t + 1 - lo
        mean = (cumsum[t + 1] - cumsum[lo]) / count
        mean_sq = (cumsq[t + 1] - cumsq[lo]) / count
        out[t] = np.sqrt(np.maximum(mean_sq - mean ** 2, 0.0))
    return out


def difficult_mask(series: np.ndarray, window: int = 6,
                   quantile: float = 0.75) -> np.ndarray:
    """Boolean ``(T, N)`` mask of upper-quantile moving-std intervals.

    The threshold is computed per node, so every sensor contributes its own
    most volatile quarter — a flat suburban detector does not get drowned
    out by a volatile downtown one.
    """
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {quantile}")
    volatility = moving_std(series, window)
    thresholds = np.quantile(volatility, quantile, axis=0, keepdims=True)
    return volatility >= thresholds


def prediction_mask(mask: np.ndarray, start_index: np.ndarray,
                    horizon: int) -> np.ndarray:
    """Align a ``(T, N)`` interval mask with windowed predictions.

    Returns ``(S, horizon, N)`` booleans: sample ``s``, step ``k`` is kept
    when the series position ``start_index[s] + k`` is inside a difficult
    interval.  Windows whose targets run past the series end are an error
    (they should not exist).
    """
    mask = np.asarray(mask, dtype=bool)
    start_index = np.asarray(start_index, dtype=int)
    total = mask.shape[0]
    if (start_index + horizon > total).any():
        raise ValueError("a window's target range runs past the series end")
    offsets = start_index[:, None] + np.arange(horizon)[None, :]   # (S, T)
    return mask[offsets]            # (S, horizon, N)


def interval_segments(mask_column: np.ndarray) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` runs of True in a 1-D boolean mask.

    Useful for plotting the blue shaded regions of the paper's Fig. 3.
    """
    mask_column = np.asarray(mask_column, dtype=bool)
    if mask_column.ndim != 1:
        raise ValueError("expected a 1-D mask column")
    edges = np.flatnonzero(np.diff(mask_column.astype(np.int8)))
    starts = list(edges[mask_column[edges + 1]] + 1)
    stops = list(edges[~mask_column[edges + 1]] + 1)
    if mask_column[0]:
        starts.insert(0, 0)
    if mask_column[-1]:
        stops.append(len(mask_column))
    return list(zip(starts, stops))
