"""Benchmark matrix orchestration with caching.

One object owns the model×dataset grid the paper evaluates: datasets are
built once, each (model, dataset) cell is trained once per seed set, and
aggregated cells are memoised — in memory always, and optionally on disk
(JSON keyed by a config fingerprint) so repeated benchmark invocations skip
finished cells.  Dataset builds themselves go through ``load_dataset``'s
content-addressed world cache (:mod:`repro.datasets.cache`), so even a
fresh process reuses previously simulated worlds.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path

from ..datasets.catalog import LoadedDataset, load_dataset
from ..obs.events import EventBus, JSONLSink
from .experiment import RunResult, TrainingConfig, run_experiment
from .results import (AggregateResult, aggregate_runs, load_results,
                      save_results)

__all__ = ["BenchmarkMatrix"]


class BenchmarkMatrix:
    """Lazily trains and caches (model, dataset) cells.

    Every cell trains through one shared :class:`repro.train.Engine`
    (``self.engine``) built from the matrix's training config, so the
    whole grid runs under a single consistent training loop.

    Parameters
    ----------
    scale:
        Dataset scale preset used for every dataset.
    config:
        Shared training settings (the paper's single-environment premise).
    repeats:
        Seeds per cell (the paper uses five).
    cache_dir:
        Optional directory for a persistent cell cache.  Cells are keyed by
        (model, dataset, scale, repeats, training-config fingerprint), so
        changing any setting invalidates them.
    trace_dir:
        Optional directory for per-run telemetry: every trained seed writes
        a ``<model>_<dataset>_seed<k>.jsonl`` event trace plus a matching
        ``.run.json`` manifest (see :mod:`repro.obs`).  Cells restored from
        the disk cache emit no traces (nothing is re-run).
    """

    def __init__(self, scale: str = "ci",
                 config: TrainingConfig | None = None, repeats: int = 2,
                 cache_dir: str | Path | None = None,
                 trace_dir: str | Path | None = None):
        self.scale = scale
        self.config = config or TrainingConfig()
        self.repeats = repeats
        self.cache_dir = Path(cache_dir) if cache_dir else None
        if self.cache_dir:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.trace_dir = Path(trace_dir) if trace_dir else None
        if self.trace_dir:
            self.trace_dir.mkdir(parents=True, exist_ok=True)
        from ..train.engine import Engine
        self.engine = Engine(self.config)
        self._datasets: dict[str, LoadedDataset] = {}
        self._cells: dict[tuple[str, str], AggregateResult] = {}
        self._runs: dict[tuple[str, str], list[RunResult]] = {}

    # ------------------------------------------------------------------ #
    def dataset(self, name: str) -> LoadedDataset:
        if name not in self._datasets:
            self._datasets[name] = load_dataset(name, scale=self.scale)
        return self._datasets[name]

    def _fingerprint(self, model: str, dataset: str) -> str:
        payload = json.dumps({"model": model, "dataset": dataset,
                              "scale": self.scale, "repeats": self.repeats,
                              "config": asdict(self.config)},
                             sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def _cache_path(self, model: str, dataset: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{model}_{dataset}_{self._fingerprint(model, dataset)}.json"

    def _train_cell(self, model: str, dataset: str) -> list[RunResult]:
        """Train every seed of one cell, tracing each run if configured."""
        data = self.dataset(dataset)
        runs = []
        for seed in range(self.repeats):
            bus = None
            manifest_path = None
            if self.trace_dir is not None:
                stem = f"{model}_{dataset}_seed{seed}"
                bus = EventBus([JSONLSink(self.trace_dir / f"{stem}.jsonl")])
                manifest_path = str(self.trace_dir / f"{stem}.run.json")
            try:
                runs.append(run_experiment(model, data, self.config,
                                           seed=seed, bus=bus,
                                           manifest_path=manifest_path,
                                           engine=self.engine))
            finally:
                if bus is not None:
                    bus.close()
        return runs

    # ------------------------------------------------------------------ #
    def cell(self, model: str, dataset: str) -> AggregateResult:
        key = (model, dataset)
        if key in self._cells:
            return self._cells[key]

        path = self._cache_path(model, dataset)
        if path is not None and path.exists():
            self._cells[key] = load_results(path)[0]
            return self._cells[key]

        runs = self._train_cell(model, dataset)
        self._runs[key] = runs
        aggregated = aggregate_runs(runs)
        self._cells[key] = aggregated
        if path is not None:
            save_results([aggregated], path)
        return aggregated

    def cells(self, models, dataset: str) -> list[AggregateResult]:
        return [self.cell(model, dataset) for model in models]

    def runs(self, model: str, dataset: str) -> list[RunResult]:
        """Raw per-seed runs for a cell (trains the cell if needed).

        Unavailable for cells restored from the disk cache (only aggregates
        are persisted); those retrain on demand.
        """
        key = (model, dataset)
        if key not in self._runs:
            runs = self._train_cell(model, dataset)
            self._runs[key] = runs
            self._cells.setdefault(key, aggregate_runs(runs))
        return self._runs[key]

    def all_cells(self) -> list[AggregateResult]:
        """Every cell computed so far."""
        return list(self._cells.values())
