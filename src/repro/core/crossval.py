"""Rolling-origin cross-validation (extension).

The paper evaluates on one chronological 7:1:2 split; a single test window
can be lucky or unlucky (e.g. all its incidents at easy sensors).
Rolling-origin evaluation — train on an expanding prefix, test on the next
block, roll forward — gives a variance estimate over *time* instead of
over seeds only.  Folds re-window the same simulated series, which the
world cache (:mod:`repro.datasets.cache`) serves without re-simulating,
and the per-fold windows stay lazy — each fold holds views, not stacked
tensors.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..datasets.catalog import LoadedDataset
from ..datasets.windows import SupervisedDataset, WindowConfig, make_windows
from .experiment import RunResult, TrainingConfig, run_experiment

__all__ = ["RollingFold", "rolling_origin_folds", "rolling_origin_evaluate"]


@dataclass
class RollingFold:
    """One fold: a LoadedDataset view with fold-specific splits."""

    index: int
    dataset: LoadedDataset
    train_steps: int
    test_steps: int


def rolling_origin_folds(dataset: LoadedDataset, n_folds: int = 3,
                         min_train_fraction: float = 0.4) -> list[RollingFold]:
    """Split the series into ``n_folds`` expanding-window folds.

    Fold k trains on the first ``min_train + k * block`` steps and tests on
    the following block, where blocks partition the region after the
    minimum training prefix.  Validation takes the trailing 1/8 of each
    fold's training region (mirroring the paper's 7:1 train:val ratio).
    """
    if n_folds < 1:
        raise ValueError("need at least one fold")
    if not 0.0 < min_train_fraction < 1.0:
        raise ValueError("min_train_fraction must be in (0, 1)")
    series = dataset.supervised.series
    total = len(series)
    window = (dataset.supervised.config.history
              + dataset.supervised.config.horizon)
    min_train = int(total * min_train_fraction)
    block = (total - min_train) // n_folds
    if block < window + 2:
        raise ValueError(
            f"series too short for {n_folds} folds (block={block}, "
            f"window={window})")

    time_of_day = dataset.simulation.time_of_day
    day_of_week = dataset.simulation.day_of_week
    folds = []
    for k in range(n_folds):
        end_train = min_train + k * block
        end_test = end_train + block
        fold_total = end_test
        train_ratio = (end_train / fold_total) * (7.0 / 8.0)
        val_ratio = (end_train / fold_total) * (1.0 / 8.0)
        config = WindowConfig(
            history=dataset.supervised.config.history,
            horizon=dataset.supervised.config.horizon,
            train_ratio=train_ratio, val_ratio=val_ratio,
            include_day_of_week=dataset.supervised.config.include_day_of_week)
        supervised = make_windows(series[:fold_total],
                                  time_of_day[:fold_total], config,
                                  day_of_week=day_of_week[:fold_total])
        fold_dataset = replace(dataset, supervised=supervised)
        folds.append(RollingFold(index=k, dataset=fold_dataset,
                                 train_steps=end_train,
                                 test_steps=block))
    return folds


def rolling_origin_evaluate(model_name: str, dataset: LoadedDataset,
                            config: TrainingConfig | None = None,
                            n_folds: int = 3, seed: int = 0,
                            engine=None,
                            **model_hparams) -> list[RunResult]:
    """Train & evaluate one model on every rolling-origin fold.

    Every fold trains through the same :class:`repro.train.Engine`
    (``engine=`` passes a pre-configured one to every
    :func:`run_experiment` call).
    """
    results = []
    for fold in rolling_origin_folds(dataset, n_folds):
        results.append(run_experiment(model_name, fold.dataset, config,
                                      seed=seed, engine=engine,
                                      **model_hparams))
    return results
