"""Command-line interface: ``python -m repro <command>``.

Commands
--------
- ``datasets`` — list the Table I catalog with per-scale sizes
- ``models``   — list registered models and their parameter counts
- ``run``      — train & evaluate one (model, dataset) cell
- ``benchmark``— run a model×dataset matrix and print the paper tables
- ``simulate`` — generate a dataset and save it as ``.npz``
- ``report``   — render tables from a saved results JSON
- ``profile``  — op census of one model's forward+backward pass
- ``trace``    — inspect a JSONL telemetry trace: ``trace summarize``
  renders paper-style tables, ``trace spans`` the per-label
  self-time/total-time span table, and ``trace export --format chrome``
  a Chrome-tracing/Perfetto-loadable timeline
- ``bench``    — engine benchmarks (``bench kernels`` times the hot
  kernels against the reference ``np.add.at`` paths; ``bench optim``
  times the fused arena optimizer updates against the per-parameter
  reference loop; ``bench data`` times the lazy window pipeline and the
  dataset cache against eager builds and cold loads; ``bench obs``
  times the tracing layer itself; ``--json`` records the matching
  ``BENCH_<suite>.json``; ``bench check`` re-runs suites and exits
  non-zero when a committed baseline's speedup regressed)
- ``cache``    — inspect the content-addressed dataset cache
  (``cache ls`` / ``cache info <key>`` / ``cache clear``; see
  docs/data.md)

``run`` and ``benchmark`` accept ``--trace PATH`` to record every telemetry
event as JSONL (plus a ``run.json`` manifest; see docs/observability.md);
``run --quiet`` suppresses the per-epoch console lines.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from . import __version__
from .core import (TrainingConfig, aggregate_runs, fig1_table, fig2_table,
                   run_experiment, save_results, table3)
from .datasets import DATASETS, dataset_names, load_dataset
from .datasets.io import save_dataset
from .models import PAPER_MODELS, create_model, model_names

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Benchmark deep traffic-prediction models (ICDE 2021 "
                    "reproduction).")
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the dataset catalog")
    sub.add_parser("models", help="list registered models")

    run = sub.add_parser("run", help="train & evaluate one model")
    run.add_argument("model", choices=model_names())
    run.add_argument("dataset", choices=dataset_names())
    run.add_argument("--scale", default="ci", choices=("ci", "bench", "paper"))
    run.add_argument("--epochs", type=int, default=3)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--batch-size", type=int, default=32)
    run.add_argument("--lr", type=float, default=0.01)
    run.add_argument("--trace", metavar="PATH",
                     help="record telemetry events as JSONL at PATH "
                          "(a run.json manifest is written next to it)")
    run.add_argument("--quiet", action="store_true",
                     help="suppress per-epoch progress lines")

    bench = sub.add_parser("benchmark", help="run a model×dataset matrix")
    bench.add_argument("--models", nargs="+", default=list(PAPER_MODELS),
                       choices=model_names())
    bench.add_argument("--datasets", nargs="+", default=["metr-la"],
                       choices=dataset_names())
    bench.add_argument("--scale", default="ci")
    bench.add_argument("--epochs", type=int, default=3)
    bench.add_argument("--repeats", type=int, default=2)
    bench.add_argument("--max-batches", type=int, default=12)
    bench.add_argument("--save", help="JSON output path")
    bench.add_argument("--trace", metavar="DIR",
                       help="write per-run JSONL traces + run manifests "
                            "into DIR")

    simulate = sub.add_parser("simulate", help="generate & save a dataset")
    simulate.add_argument("dataset", choices=dataset_names())
    simulate.add_argument("output", help=".npz output path")
    simulate.add_argument("--scale", default="ci")

    report = sub.add_parser(
        "report", help="render tables from a saved results JSON")
    report.add_argument("results", help="JSON written by 'benchmark --save'")
    report.add_argument("--table", default="fig1",
                        choices=("fig1", "table3", "fig2", "leaderboard"))
    report.add_argument("--dataset",
                        help="dataset filter (defaults to each present)")

    prof = sub.add_parser(
        "profile", help="op census of one model's forward+backward pass")
    prof.add_argument("model", choices=model_names())
    prof.add_argument("--dataset", default="metr-la", choices=dataset_names())
    prof.add_argument("--batch-size", type=int, default=8)
    prof.add_argument("--top", type=int, default=12)

    trace = sub.add_parser(
        "trace", help="inspect JSONL telemetry traces")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_summarize = trace_sub.add_parser(
        "summarize", help="render a trace as paper-style tables")
    trace_summarize.add_argument("path", help="JSONL trace file")
    trace_export = trace_sub.add_parser(
        "export", help="export a trace as a viewer-loadable timeline")
    trace_export.add_argument("path", help="JSONL trace file")
    trace_export.add_argument("--format", default="chrome",
                              choices=("chrome",),
                              help="timeline format (chrome = Chrome "
                                   "tracing JSON, loads in Perfetto)")
    trace_export.add_argument("--output", metavar="PATH",
                              help="output file (default: "
                                   "<trace>.chrome.json)")
    trace_spans = trace_sub.add_parser(
        "spans", help="per-label self-time/total-time span table")
    trace_spans.add_argument("path", help="JSONL trace file")

    bench = sub.add_parser(
        "bench", help="engine benchmarks (reference vs fast kernels)")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_kernels = bench_sub.add_parser(
        "kernels", help="time the hot kernels against the reference paths")
    bench_kernels.add_argument("--mode", default="full",
                               choices=("quick", "full"),
                               help="workload preset (quick for smoke runs)")
    bench_kernels.add_argument("--case", nargs="+", metavar="NAME",
                               help="restrict to specific benchmark cases")
    bench_kernels.add_argument("--json", metavar="PATH",
                               help="write results JSON (BENCH_kernels.json)")
    bench_kernels.add_argument("--trace", metavar="PATH",
                               help="record kernel_bench events as JSONL")
    bench_optim = bench_sub.add_parser(
        "optim", help="time fused arena optimizer updates against the "
                      "per-parameter reference loop")
    bench_optim.add_argument("--mode", default="full",
                             choices=("quick", "full"),
                             help="workload preset (quick for smoke runs)")
    bench_optim.add_argument("--case", nargs="+", metavar="NAME",
                             help="restrict to specific benchmark cases")
    bench_optim.add_argument("--json", metavar="PATH",
                             help="write results JSON (BENCH_optim.json)")
    bench_optim.add_argument("--trace", metavar="PATH",
                             help="record optim_bench events as JSONL")
    bench_data = bench_sub.add_parser(
        "data", help="time the lazy window pipeline and the dataset cache "
                     "against eager builds and cold loads")
    bench_data.add_argument("--mode", default="full",
                            choices=("quick", "full"),
                            help="workload preset (quick for smoke runs)")
    bench_data.add_argument("--case", nargs="+", metavar="NAME",
                            help="restrict to specific benchmark cases")
    bench_data.add_argument("--json", metavar="PATH",
                            help="write results JSON (BENCH_data.json)")
    bench_data.add_argument("--trace", metavar="PATH",
                            help="record data_bench events as JSONL")
    bench_obs = bench_sub.add_parser(
        "obs", help="time the observability layer itself (span overhead, "
                    "metrics registry)")
    bench_obs.add_argument("--mode", default="full",
                           choices=("quick", "full"),
                           help="workload preset (quick for smoke runs)")
    bench_obs.add_argument("--case", nargs="+", metavar="NAME",
                           help="restrict to specific benchmark cases")
    bench_obs.add_argument("--json", metavar="PATH",
                           help="write results JSON (BENCH_obs.json)")
    bench_obs.add_argument("--trace", metavar="PATH",
                           help="record obs_bench events as JSONL")
    bench_check = bench_sub.add_parser(
        "check", help="gate bench results against the committed "
                      "BENCH_*.json baselines (exit 1 on regression)")
    bench_check.add_argument("--suite", nargs="+", metavar="NAME",
                             choices=("kernels", "optim", "data", "obs"),
                             help="suites to check (default: every suite "
                                  "with a baseline under --root)")
    bench_check.add_argument("--root", default=".",
                             help="directory holding the BENCH_*.json "
                                  "baselines (default: current directory)")
    bench_check.add_argument("--tolerance", type=float, default=None,
                             help="allowed relative speedup decay "
                                  "(default: 0.25)")
    bench_check.add_argument("--current", metavar="PATH",
                             help="compare this saved record instead of "
                                  "re-running the suite")
    bench_check.add_argument("--baseline", metavar="PATH",
                             help="baseline record to compare --current "
                                  "against")

    cache = sub.add_parser(
        "cache", help="inspect the content-addressed dataset cache")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_sub.add_parser("ls", help="list cached worlds (newest first)")
    cache_info = cache_sub.add_parser(
        "info", help="show one entry's spec, window, and array shapes")
    cache_info.add_argument("key", help="cache key (or unique prefix)")
    cache_sub.add_parser("clear", help="delete every cached world")
    return parser


def _cmd_datasets() -> int:
    print(f"{'name':<10} {'task':<6} {'region':<15} {'topology':<9} "
          f"{'paper nodes':>11} {'paper days':>10}")
    for name, spec in DATASETS.items():
        print(f"{name:<10} {spec.task:<6} {spec.region:<15} "
              f"{spec.topology:<9} {spec.paper_nodes:>11} "
              f"{spec.paper_days:>10}")
    return 0


def _cmd_models() -> int:
    # Parameter counts depend on graph size; report for a 10-node world.
    rng = np.random.default_rng(0)
    adjacency = np.eye(10) + (rng.random((10, 10)) > 0.7)
    print(f"{'name':<20} {'params@10nodes':>14}  paper model")
    for name in model_names():
        model = create_model(name, 10, adjacency, seed=0)
        tag = "yes" if name in PAPER_MODELS else "-"
        print(f"{name:<20} {model.num_parameters():>14,}  {tag}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .obs import EventBus, JSONLSink

    config = TrainingConfig(epochs=args.epochs, batch_size=args.batch_size,
                            learning_rate=args.lr, verbose=not args.quiet)
    bus = None
    manifest_path = None
    if args.trace:
        trace_path = Path(args.trace)
        bus = EventBus([JSONLSink(trace_path)])
        manifest_path = str(trace_path.parent / "run.json")
    data = load_dataset(args.dataset, scale=args.scale, bus=bus)
    print(f"Training {args.model} on {args.dataset} "
          f"({data.num_nodes} nodes, scale={args.scale}) ...")
    try:
        result = run_experiment(args.model, data, config, seed=args.seed,
                                bus=bus, manifest_path=manifest_path)
    finally:
        if bus is not None:
            bus.close()
    if args.trace:
        print(f"Trace written to {args.trace} "
              f"(manifest: {manifest_path})")
    evaluation = result.evaluation
    print(f"\n{'horizon':>8} {'MAE':>8} {'RMSE':>8} {'MAPE':>8} "
          f"{'hardMAE':>8} {'degr':>7}")
    for minutes in sorted(evaluation.full):
        full = evaluation.full[minutes]
        print(f"{minutes:>6}m  {full.mae:>8.3f} {full.rmse:>8.3f} "
              f"{full.mape:>7.1f}% "
              f"{evaluation.difficult[minutes].mae:>8.3f} "
              f"{evaluation.degradation(minutes):>+6.1f}%")
    print(f"\nparams={evaluation.num_parameters:,} "
          f"train/epoch={result.history.train_time_per_epoch:.2f}s "
          f"inference={evaluation.inference_seconds:.2f}s")
    return 0


def _cmd_benchmark(args: argparse.Namespace) -> int:
    from .obs import EventBus, JSONLSink

    config = TrainingConfig(epochs=args.epochs,
                            max_batches_per_epoch=args.max_batches)
    trace_dir = Path(args.trace) if args.trace else None

    def traced_run(model_name, data, seed):
        if trace_dir is None:
            return run_experiment(model_name, data, config, seed=seed)
        stem = f"{model_name}_{data.spec.name}_seed{seed}"
        bus = EventBus([JSONLSink(trace_dir / f"{stem}.jsonl")])
        try:
            return run_experiment(
                model_name, data, config, seed=seed, bus=bus,
                manifest_path=str(trace_dir / f"{stem}.run.json"))
        finally:
            bus.close()

    all_results = []
    for dataset_name in args.datasets:
        data = load_dataset(dataset_name, scale=args.scale)
        results = []
        for model_name in args.models:
            print(f"[{dataset_name}] {model_name}: "
                  f"{args.repeats} repeats ...", flush=True)
            runs = [traced_run(model_name, data, seed)
                    for seed in range(args.repeats)]
            results.append(aggregate_runs(runs))
        all_results.extend(results)
        print()
        print(fig1_table(results, dataset_name))
        print()
        print(table3(results, dataset_name))
        print()
        print(fig2_table(results, dataset_name))
        print()
    if args.save:
        save_results(all_results, args.save)
        print(f"Saved {len(all_results)} cells to {args.save}")
    if trace_dir is not None:
        print(f"Per-run traces + manifests in {trace_dir}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    data = load_dataset(args.dataset, scale=args.scale)
    save_dataset(data, args.output)
    print(f"Saved {args.dataset} (scale={args.scale}, "
          f"{data.num_nodes} nodes, {len(data.supervised.series)} steps) "
          f"to {args.output}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .core import load_results
    from .core.rankings import leaderboard

    results = load_results(args.results)
    if not results:
        print("no results in file")
        return 1
    if args.table == "leaderboard":
        print(leaderboard(results))
        return 0
    datasets = ([args.dataset] if args.dataset
                else sorted({r.dataset_name for r in results}))
    renderers = {"fig1": fig1_table, "table3": table3, "fig2": fig2_table}
    for dataset in datasets:
        print(renderers[args.table](results, dataset))
        print()
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .nn.profiler import profile
    from .nn.summary import summarize
    from .nn.tensor import Tensor

    data = load_dataset(args.dataset, scale="ci")
    train = data.supervised.train
    model = create_model(args.model, data.num_nodes, data.adjacency,
                         in_features=train.num_features, seed=0)
    batch = min(args.batch_size, train.num_samples)
    x_batch, y_batch, _ = train.batch(np.arange(batch),
                                      target_scaler=data.supervised.scaler)
    x, y = Tensor(x_batch), Tensor(y_batch)
    print(f"{args.model} on {args.dataset} "
          f"(batch {args.batch_size}, {data.num_nodes} nodes)\n")
    print(summarize(model, max_depth=1))
    print()
    with profile() as report:
        loss = model.training_loss(x, y)
        if loss.requires_grad:
            loss.backward()
    print("forward + backward op census:")
    print(report.render(args.top))
    return 0


def _cmd_bench_check(args: argparse.Namespace) -> int:
    from .obs.gate import (DEFAULT_TOLERANCE, check_records, find_baselines,
                           load_bench_record, run_and_check)

    tolerance = (args.tolerance if args.tolerance is not None
                 else DEFAULT_TOLERANCE)
    if (args.current is None) != (args.baseline is None):
        print("bench check: --current and --baseline go together",
              file=sys.stderr)
        return 2
    try:
        if args.current is not None:
            report = check_records(load_bench_record(args.current),
                                   load_bench_record(args.baseline),
                                   tolerance=tolerance)
            print(report.render())
            return 0 if report.passed else 1
        baselines = find_baselines(args.root)
        if args.suite:
            missing = sorted(set(args.suite) - set(baselines))
            if missing:
                print(f"bench check: no baseline for suite(s) {missing} "
                      f"under {args.root}", file=sys.stderr)
                return 2
            baselines = {s: baselines[s] for s in args.suite}
        if not baselines:
            print(f"bench check: no BENCH_*.json baselines under "
                  f"{args.root}", file=sys.stderr)
            return 2
        passed = True
        for suite, path in baselines.items():
            report = run_and_check(suite, path, tolerance=tolerance)
            print(report.render())
            print()
            passed = passed and report.passed
        return 0 if passed else 1
    except ValueError as exc:
        print(f"bench check: {exc}", file=sys.stderr)
        return 2


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.bench_command == "check":
        return _cmd_bench_check(args)

    from .datasets.data_bench import bench_data
    from .nn.kernel_bench import (bench_kernels, render_timings,
                                  write_bench_json)
    from .nn.optim_bench import bench_optim
    from .obs import ConsoleSink, EventBus, JSONLSink
    from .obs.obs_bench import bench_obs

    if args.bench_command == "kernels":
        suite, event_kind, run = "kernels", "kernel_bench", bench_kernels
        banner = (f"Kernel benchmark suite (mode={args.mode}) — "
                  f"reference np.add.at engine vs fast kernels")
    elif args.bench_command == "optim":
        suite, event_kind, run = "optim", "optim_bench", bench_optim
        banner = (f"Optimizer benchmark suite (mode={args.mode}) — "
                  f"per-parameter reference loop vs fused arena updates")
    elif args.bench_command == "data":
        suite, event_kind, run = "data", "data_bench", bench_data
        banner = (f"Data pipeline benchmark suite (mode={args.mode}) — "
                  f"eager windows / cold loads vs lazy gathers / cache hits")
    elif args.bench_command == "obs":
        suite, event_kind, run = "obs", "obs_bench", bench_obs
        banner = (f"Observability benchmark suite (mode={args.mode}) — "
                  f"untraced vs traced-but-unobserved instrumentation")
    else:
        return 1
    sinks = [ConsoleSink(kinds=(event_kind,))]
    if args.trace:
        sinks.append(JSONLSink(args.trace))
    bus = EventBus(sinks)
    print(banner + "\n")
    try:
        timings = run(mode=args.mode, bus=bus, cases=args.case)
    except ValueError as error:           # unknown mode/case
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        bus.close()
    print()
    print(render_timings(timings))
    if args.json:
        write_bench_json(timings, args.json, mode=args.mode, suite=suite)
        print(f"\nResults written to {args.json}")
    if args.trace:
        print(f"Events written to {args.trace}")
    return 0


def _format_bytes(size: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024
    return f"{size:.1f} GiB"


def _cmd_cache(args: argparse.Namespace) -> int:
    import json

    from .datasets.cache import DatasetCache

    store = DatasetCache()
    if args.cache_command == "ls":
        entries = store.entries()
        if not entries:
            print(f"cache empty ({store.directory})")
            return 0
        print(f"{'dataset':<10} {'scale':<6} {'key':<16} {'size':>10}")
        for entry in entries:
            print(f"{entry.name:<10} {entry.scale:<6} {entry.key:<16} "
                  f"{_format_bytes(entry.size_bytes):>10}")
        total = sum(e.size_bytes for e in entries)
        print(f"\n{len(entries)} entr{'y' if len(entries) == 1 else 'ies'}, "
              f"{_format_bytes(total)} in {store.directory}")
        return 0
    if args.cache_command == "info":
        try:
            info = store.info(args.key)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 1
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0
    if args.cache_command == "clear":
        removed, freed = store.clear()
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'}, "
              f"freed {_format_bytes(freed)} ({store.directory})")
        return 0
    return 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import summarize_trace, validate_trace

    try:
        problems = validate_trace(args.path)
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 1
    # Unknown kinds degrade gracefully (the reader skips those lines, so
    # a newer trace still renders here); anything else is a broken file.
    hard = [p for p in problems if "unknown event kind" not in p]
    if hard:
        for problem in hard:
            print(f"invalid trace: {problem}", file=sys.stderr)
        return 1
    for problem in problems:
        print(f"trace warning: {problem} (line skipped)", file=sys.stderr)

    if args.trace_command == "summarize":
        print(summarize_trace(args.path))
        return 0
    if args.trace_command == "spans":
        from .obs import span_report
        print(span_report(args.path))
        return 0
    if args.trace_command == "export":
        from .obs import write_chrome_trace
        output = args.output or f"{args.path}.chrome.json"
        payload = write_chrome_trace(args.path, output)
        print(f"Chrome trace written to {output} "
              f"({len(payload['traceEvents'])} events; load at "
              f"https://ui.perfetto.dev)")
        return 0
    return 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        return _cmd_datasets()
    if args.command == "models":
        return _cmd_models()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "benchmark":
        return _cmd_benchmark(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "cache":
        return _cmd_cache(args)
    return 1


if __name__ == "__main__":
    sys.exit(main())
