"""Setup shim.

``pip install -e .`` requires the ``wheel`` package to build PEP 660
editable wheels; this environment is offline and has no wheel, so
``python setup.py develop`` provides the equivalent editable install.
Metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
